//! The [`Strategy`] trait and its built-in implementations.

use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking — a
/// strategy simply draws one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights changed mid-generation")
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value, mixing in boundary cases.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for an [`Arbitrary`] type, from [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: full-range values with boundary
/// cases (zero, max, ±∞, …) mixed in.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // 1-in-8 boundary value keeps edge coverage without
                // shrinking support.
                if rng.gen_range(0u32..8) == 0 {
                    *[0 as $t, 1 as $t, <$t>::MAX, <$t>::MAX - 1, <$t>::MAX / 2]
                        .get(rng.gen_range(0usize..5))
                        .unwrap()
                } else {
                    rng.gen::<$t>()
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

macro_rules! signed_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                if rng.gen_range(0u32..8) == 0 {
                    *[0 as $t, 1 as $t, -1 as $t, <$t>::MAX, <$t>::MIN]
                        .get(rng.gen_range(0usize..5))
                        .unwrap()
                } else {
                    rng.gen::<$t>()
                }
            }
        }
    )*};
}

signed_arbitrary!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        const SPECIAL: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1e300,
            -1e-300,
        ];
        if rng.gen_range(0u32..8) == 0 {
            SPECIAL[rng.gen_range(0usize..SPECIAL.len())]
        } else {
            // Random bit patterns cover subnormals and extreme
            // exponents; NaN is excluded like upstream's default.
            loop {
                let x = f64::from_bits(rng.gen::<u64>());
                if !x.is_nan() {
                    return x;
                }
            }
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Occasionally pin to an endpoint for boundary coverage.
                match rng.gen_range(0u32..32) {
                    0 => self.start,
                    1 => self.end - 1 as $t,
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                match rng.gen_range(0u32..32) {
                    0 => *self.start(),
                    1 => *self.end(),
                    _ => rng.gen_range(self.clone()),
                }
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// String literals act as string strategies. Upstream interprets them
/// as regexes; this stand-in generates arbitrary short strings (the
/// workspace only ever uses the pattern `".*"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let n = rng.gen_range(0usize..12);
        (0..n)
            .map(|_| match rng.gen_range(0u32..8) {
                // Mostly printable ASCII, some multi-byte code points.
                0 => char::from_u32(rng.gen_range(0x00A1u32..0x0250)).unwrap_or('¿'),
                1 => char::from_u32(rng.gen_range(0x4E00u32..0x4E80)).unwrap_or('中'),
                _ => char::from(rng.gen_range(0x20u8..0x7F)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_arrays_tuples_compose() {
        let mut r = rng();
        let s = ([0u64..16, 0u64..16, 0u64..16], 5u32..=9);
        for _ in 0..500 {
            let (k, v) = s.generate(&mut r);
            assert!(k.iter().all(|&x| x < 16));
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let s = (0u32..64).prop_map(|b| 1u64 << b);
        for _ in 0..200 {
            assert!(s.generate(&mut r).is_power_of_two());
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut r = rng();
        let u = Union::new(vec![(0, (0u32..1).boxed()), (3, (5u32..6).boxed())]);
        for _ in 0..100 {
            assert_eq!(u.generate(&mut r), 5);
        }
    }

    #[test]
    fn any_f64_never_nan() {
        let mut r = rng();
        for _ in 0..5000 {
            assert!(!any::<f64>().generate(&mut r).is_nan());
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let v = crate::collection::vec(any::<u64>(), 1..30).generate(&mut r);
            assert!((1..30).contains(&v.len()));
            let s = crate::collection::btree_set(0u64..1000, 2..20).generate(&mut r);
            assert!(s.len() >= 2);
            let m = crate::collection::btree_map(0u64..1000, any::<u32>(), 2..20).generate(&mut r);
            assert!(m.len() >= 2);
        }
    }
}
