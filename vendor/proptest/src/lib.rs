//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate reimplements the slice of proptest this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments and `#[test]` attributes, and `name in strategy` args),
//! * [`Strategy`] with `prop_map`/`boxed`, implemented for integer and
//!   float ranges, arrays, tuples, `any::<T>()` and `&str` (treated as
//!   an arbitrary-string generator),
//! * [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::btree_map`],
//! * [`prop_oneof!`] (weighted and unweighted) and the
//!   `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` generated cases
//! from a deterministic per-test seed. There is **no shrinking** — a
//! failing case reports its full `Debug` inputs instead. Edge values
//! (zero, max, ±0.0, infinities, …) are mixed into `any` generation to
//! keep boundary coverage comparable to upstream.

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Strategy, Union};

/// RNG driving test-case generation.
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (only the field this workspace touches).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases a test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case, produced by the `prop_assert*` /
/// `prop_assume!` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The inputs do not satisfy a `prop_assume!` precondition; the
    /// case is discarded without counting towards the total.
    Reject(String),
}

/// Test-loop driver used by the expansion of [`proptest!`]. Not part of
/// the public API.
#[doc(hidden)]
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    pub fn run<C>(
        config: &ProptestConfig,
        name: &str,
        mut mk_case: impl FnMut(&mut TestRng) -> (String, C),
    ) where
        C: FnOnce() -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut seed = fnv1a(name.as_bytes());
        while passed < config.cases {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            let (inputs, case) = mk_case(&mut rng);
            match catch_unwind(AssertUnwindSafe(case)) {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(why))) => {
                    rejected += 1;
                    if rejected > config.cases.saturating_mul(32).max(4096) {
                        panic!("{name}: too many rejected cases (last: {why})");
                    }
                }
                Ok(Err(TestCaseError::Fail(why))) => {
                    panic!(
                        "{name}: property failed on case {passed}: {why}\n\
                         minimal failing input not computed (no shrinking); inputs were:\n{inputs}"
                    );
                }
                Err(payload) => {
                    eprintln!("{name}: case {passed} panicked; inputs were:\n{inputs}");
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `elem` with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates sets of values from `elem` with sizes in `size` (the
    /// target size is capped when the value universe is too small).
    pub fn btree_set<S: Strategy>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 50 + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeMap<KS::Value, VS::Value>`.
    pub struct BTreeMapStrategy<KS, VS> {
        key: KS,
        value: VS,
        size: Range<usize>,
    }

    /// Generates maps with keys from `key`, values from `value` and
    /// sizes in `size` (capped when the key universe is too small).
    pub fn btree_map<KS: Strategy, VS: Strategy>(
        key: KS,
        value: VS,
        size: Range<usize>,
    ) -> BTreeMapStrategy<KS, VS>
    where
        KS::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeMapStrategy { key, value, size }
    }

    impl<KS: Strategy, VS: Strategy> Strategy for BTreeMapStrategy<KS, VS>
    where
        KS::Value: Ord,
    {
        type Value = BTreeMap<KS::Value, VS::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 50 + 100 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run(
                &($cfg),
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = ::std::format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                        $(&$arg),+
                    );
                    (__inputs, move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })
                },
            );
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Chooses among strategies, optionally weighted: `prop_oneof![a, b]`
/// or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+), __l, __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Discards the current case when its inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).into(),
            ));
        }
    };
}
