//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the benchmark-harness API the workspace uses
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], `Bencher::iter`)
//! with a simple wall-clock measurement loop: warm up once, then run
//! timed batches until a per-benchmark time budget is spent, and print
//! the median batch's ns/iteration. There is no statistical analysis,
//! HTML report or baseline comparison — the numbers are honest but
//! plain.
//!
//! Each benchmark is also capped to a small time budget so that the
//! binaries stay quick when executed outside `cargo bench` (e.g. by
//! `cargo test` building/running bench targets).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: a name plus an optional
/// parameter, printed as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for benchmark `name` at parameter `param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id carrying only a parameter (upstream: `from_parameter`).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units processed per iteration, for derived throughput output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this batch's iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Runs one benchmark: warmup, then timed batches within `budget`;
/// returns (median ns/iter, total iters).
fn measure(budget: Duration, f: &mut dyn FnMut(&mut Bencher)) -> (f64, u64) {
    // Warmup batch of one iteration; also sizes the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch_iters = (budget.as_nanos() / 10 / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples = Vec::new();
    let mut total_iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget && samples.len() < 64 {
        let mut b = Bencher {
            iters: batch_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / batch_iters as f64);
        total_iters += batch_iters;
    }
    samples.sort_by(f64::total_cmp);
    (samples[samples.len() / 2], total_iters)
}

fn report(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    budget: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let (ns, iters) = measure(budget, f);
    let name = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(", {:.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!(", {:.3} Melem/s", n as f64 / ns * 1e9 / 1e6),
        None => String::new(),
    };
    println!("bench {name:<48} {ns:>14.1} ns/iter ({iters} iters{extra})");
}

/// Top-level benchmark driver (plain stand-in: no CLI, no reports).
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep bench binaries quick; this is a smoke-measure harness,
        // not a statistics engine.
        let ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            budget: self.budget,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        report(None, &id.into(), None, self.budget, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by
    /// time budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d.min(Duration::from_secs(2));
        self
    }

    /// Reports derived throughput alongside ns/iter.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        report(
            Some(&self.name),
            &id.into(),
            self.throughput,
            self.budget,
            &mut f,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        report(
            Some(&self.name),
            &id.into(),
            self.throughput,
            self.budget,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimiser from discarding a value (re-export of the
/// std implementation).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
        };
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::new("spin", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.finish();
        assert!(ran > 0);
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
