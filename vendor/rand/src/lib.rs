//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic, fast and of
//! ample quality for dataset generation and tests. It is **not** the
//! upstream `StdRng` stream: seeds produce different (but still
//! deterministic) sequences than rand 0.8 would.

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform draw from `[0, n)` without modulo bias worth worrying about
/// at these magnitudes (rejection sampling on the top bits).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Lemire-style widening multiply; one retry loop handles the bias.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * n as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_below_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
