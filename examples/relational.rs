//! The PH-tree as a compact, fully indexed relational table — the
//! paper's closing outlook (Sect. 5): "this would also allow the
//! PH-tree to be effectively used as a compact and fully indexed table
//! of a relational database."
//!
//! Each row of an `orders` table becomes one k-dimensional key: every
//! column is a dimension, so *every* column is indexed at once and any
//! combination of per-column range predicates becomes a single window
//! query. The column count is runtime data, so this uses
//! [`phtree::PhTreeDyn`].
//!
//! Run with: `cargo run --release -p ph-bench --example relational`

use phtree::key::{f64_to_key, i64_to_key, key_to_f64};
use phtree::PhTreeDyn;
use std::time::Instant;

/// Column schema: name + encoder into sortable u64 space.
enum Col {
    /// Unsigned integers stored as-is.
    U64(&'static str),
    /// Signed integers via sign-bit flip.
    I64(&'static str),
    /// Floats via the paper's IEEE-754 conversion.
    F64(&'static str),
}

impl Col {
    fn name(&self) -> &'static str {
        match self {
            Col::U64(n) | Col::I64(n) | Col::F64(n) => n,
        }
    }
}

fn main() {
    // orders(order_id, customer, day, quantity, balance_delta, price)
    let schema = [
        Col::U64("order_id"),
        Col::U64("customer"),
        Col::U64("day"),
        Col::U64("quantity"),
        Col::I64("balance_delta"),
        Col::F64("price"),
    ];
    let k = schema.len();
    println!(
        "schema: orders({}) — {k} columns, all indexed",
        schema.iter().map(Col::name).collect::<Vec<_>>().join(", ")
    );

    // Generate and load 300k rows. The row *is* the key; no payload.
    let n_rows = 300_000u64;
    let mut table: PhTreeDyn<()> = PhTreeDyn::new(k);
    let mut x = 42u64;
    let mut rng = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x
    };
    let t0 = Instant::now();
    for order_id in 0..n_rows {
        let customer = rng() % 10_000;
        let day = rng() % 365;
        let quantity = 1 + rng() % 50;
        let balance_delta = (rng() % 20_000) as i64 - 10_000;
        let price = (rng() % 100_000) as f64 / 100.0;
        let row = vec![
            order_id,
            customer,
            day,
            quantity,
            i64_to_key(balance_delta),
            f64_to_key(price),
        ];
        table.insert(&row, ());
    }
    println!(
        "loaded {} rows in {:.0} ms",
        table.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    let s = table.stats();
    println!(
        "table storage: {:.1} bytes/row ({} nodes) — raw row data is {} bytes/row",
        s.bytes_per_entry(),
        s.nodes,
        k * 8
    );

    // SELECT count(*) FROM orders
    // WHERE customer BETWEEN 100 AND 199
    //   AND day BETWEEN 50 AND 99
    //   AND price BETWEEN 100.00 AND 500.00
    // — one window query, no per-column secondary indexes needed.
    let mut lo = vec![0u64; k];
    let mut hi = vec![u64::MAX; k];
    (lo[1], hi[1]) = (100, 199);
    (lo[2], hi[2]) = (50, 99);
    (lo[5], hi[5]) = (f64_to_key(100.0), f64_to_key(500.0));
    let t0 = Instant::now();
    let mut revenue = 0.0;
    let hits = table.query_visit(&lo, &hi, &mut |row, _| {
        revenue += key_to_f64(row[5]) * row[3] as f64;
    });
    let q_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("3-predicate query: {hits} rows, revenue {revenue:.2}, in {q_ms:.2} ms");

    // Verify against a full scan.
    let t0 = Instant::now();
    let mut scan_hits = 0usize;
    table.for_each(&mut |row, _| {
        if (0..k).all(|d| lo[d] <= row[d] && row[d] <= hi[d]) {
            scan_hits += 1;
        }
    });
    let scan_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(hits, scan_hits);
    println!(
        "full scan agrees ({scan_hits} rows) and took {scan_ms:.2} ms — {:.0}× slower",
        scan_ms / q_ms.max(1e-9)
    );

    // Point lookup by full row; deletes work too (an OLTP-ish update).
    let probe = {
        let mut p = None;
        table.query_visit(&lo, &hi, &mut |row, _| {
            if p.is_none() {
                p = Some(row.to_vec());
            }
        });
        p.unwrap()
    };
    assert!(table.contains(&probe));
    assert_eq!(table.remove(&probe), Some(()));
    assert!(!table.contains(&probe));
    println!("row delete + lookup verified ✓");
}
