//! High-dimensional indexing: the regime where hypercube addressing
//! shines (paper Sect. 4.3.7).
//!
//! Indexes 10-dimensional records (e.g. feature descriptors: 2 spatial
//! dimensions + 8 attribute dimensions, like the paper's "geo data plus
//! node identifier" motivation), then compares PH-tree point-query
//! throughput with a binary PATRICIA trie over the same interleaved
//! keys — the structural comparison behind the paper's Fig. 13.
//!
//! Run with: `cargo run --release -p ph-bench --example high_dim`

use critbit::CritBit1;
use phtree::key::point_to_key;
use phtree::PhTreeF64;
use std::time::Instant;

const K: usize = 10;

fn main() {
    let n = 200_000;
    println!("generating {n} {K}-dimensional records…");
    let data = datasets::cluster::<K>(n, 0.4, 7);

    let mut ph: PhTreeF64<u32, K> = PhTreeF64::new();
    let mut cb: CritBit1<u32, K> = CritBit1::new();
    for (i, p) in data.iter().enumerate() {
        ph.insert(*p, i as u32);
        cb.insert(point_to_key(p), i as u32);
    }

    let queries = datasets::point_query_mix(&data, 200_000, &[0.0; K], &[1.0; K], 3);

    let t0 = Instant::now();
    let mut hits_ph = 0usize;
    for q in &queries {
        hits_ph += ph.get(q).is_some() as usize;
    }
    let ph_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

    let t0 = Instant::now();
    let mut hits_cb = 0usize;
    for q in &queries {
        hits_cb += cb.get(&point_to_key(q)).is_some() as usize;
    }
    let cb_us = t0.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

    assert_eq!(hits_ph, hits_cb);
    println!("point queries, k = {K}:");
    println!("  PH-tree hypercube navigation: {ph_us:.3} µs/query");
    println!("  binary PATRICIA (interleaved): {cb_us:.3} µs/query");
    println!(
        "  ratio: {:.1}× — a binary trie pays up to k node hops per bit level,\n\
         \x20 the hypercube resolves all {K} dimensions per node in one step",
        cb_us / ph_us.max(1e-12)
    );

    let s = ph.stats();
    println!(
        "PH-tree: {} nodes for {} entries ({:.2} entries/node), depth {} ≤ w = 64",
        s.nodes,
        s.entries,
        s.entries_per_node(),
        s.max_depth
    );

    // Attribute-constrained window query: pin 8 of 10 dimensions wide
    // open, restrict 2 — the "skewed query" case of Sect. 3.5.
    let mut lo = [0.0; K];
    let mut hi = [1.0; K];
    lo[0] = 0.02;
    hi[0] = 0.03;
    let t0 = Instant::now();
    let found = ph.query(&lo, &hi).count();
    println!(
        "window on x ∈ [0.02, 0.03], other dims unconstrained: {} hits in {:.2} ms",
        found,
        t0.elapsed().as_secs_f64() * 1e3
    );
}
