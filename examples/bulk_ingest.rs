//! Bulk ingest: loading a CUBE dataset through the sharded bottom-up
//! bulk loader.
//!
//! Generates a 3-D CUBE dataset, partitions it once by the shard
//! router's Z-prefix and bulk-loads every shard in parallel on the
//! worker pool (each shard runs the O(n) bottom-up builder since it
//! starts empty). Prints the per-shard partition sizes and standalone
//! build times, the parallel wall-clock of the real sharded load, and
//! the sequential-insert time for comparison.
//!
//! Run: `cargo run --release -p ph-bench --example bulk_ingest`

use phshard::ShardedTree;
use phtree::PhTree;

/// Scales a unit-cube point onto the full integer key domain. The
/// router shards on *leading* Z-order bits, so keys must span the whole
/// u64 range to spread — the order-preserving f64 encoding would park
/// every point of [0, 1) under one top-bit prefix (one shard).
fn grid_key(p: &[f64; 3]) -> [u64; 3] {
    p.map(|c| (c * u64::MAX as f64) as u64)
}

fn main() {
    const SHARDS: usize = 8;
    const N: usize = 200_000;

    let items: Vec<([u64; 3], u64)> = datasets::cube::<3>(N, 42)
        .iter()
        .enumerate()
        .map(|(i, p)| (grid_key(p), i as u64))
        .collect();
    println!("dataset: {N} CUBE points, {SHARDS} shards\n");

    // Per-shard view: how the router splits the batch, and what each
    // shard's bottom-up build costs on its own.
    let index: ShardedTree<u64, 3> = ShardedTree::new(SHARDS);
    let mut parts: Vec<Vec<([u64; 3], u64)>> = (0..SHARDS).map(|_| Vec::new()).collect();
    for &(k, v) in &items {
        parts[index.router().route(&k)].push((k, v));
    }
    println!("shard  entries  bulk build (standalone)");
    for (s, part) in parts.iter().enumerate() {
        let (tree, us) = measure::time_us(|| PhTree::bulk_load(part.clone()));
        println!(
            "  {s}    {:>6}  {:>8.1} µs  ({:.3} µs/entry)",
            part.len(),
            us,
            us / tree.len().max(1) as f64
        );
    }

    // The real thing: one call, partitions once, loads shards in
    // parallel on the worker pool.
    let (new, us) = measure::time_us(|| index.bulk_load(items.clone()));
    println!(
        "\nsharded bulk_load: {new} new keys in {:.1} µs ({:.3} µs/entry, parallel)",
        us,
        us / new.max(1) as f64
    );

    // Sequential yardstick on a single unsharded tree.
    let (seq, seq_us) = measure::time_us(|| {
        let mut t: PhTree<u64, 3> = PhTree::new();
        for &(k, v) in &items {
            t.insert(k, v);
        }
        t
    });
    println!(
        "sequential inserts: {} keys in {:.1} µs ({:.3} µs/entry, single tree)",
        seq.len(),
        seq_us,
        seq_us / seq.len().max(1) as f64
    );
    println!("speedup: {:.2}x", seq_us / us);

    // The loaded index answers queries like any other.
    let lo = grid_key(&[0.45, 0.45, 0.45]);
    let hi = grid_key(&[0.55, 0.55, 0.55]);
    println!("\ncentre-box query: {} hits", index.query_count(&lo, &hi));
    assert_eq!(index.len(), seq.len());
}
