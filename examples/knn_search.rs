//! Nearest-neighbour search (the paper's Sect. 5 outlook feature).
//!
//! Scenario: a charging-station finder. Stations are indexed by
//! position; the app answers "5 nearest stations to the user" queries.
//! Cross-checks the PH-tree's best-first kNN against both kD-tree
//! baselines and a brute-force scan.
//!
//! Run with: `cargo run --release -p ph-bench --example knn_search`

use kdtree::{KdTree1, KdTree2};
use phtree::PhTreeF64;
use std::time::Instant;

fn main() {
    let n = 300_000;
    println!("placing {n} charging stations…");
    let stations = datasets::dedup(datasets::tiger_like(n, 11));

    let mut ph: PhTreeF64<usize, 2> = PhTreeF64::new();
    let mut kd1: KdTree1<usize, 2> = KdTree1::new();
    let mut kd2: KdTree2<usize, 2> = KdTree2::new();
    for (i, p) in stations.iter().enumerate() {
        ph.insert(*p, i);
        kd1.insert(*p, i);
        kd2.insert(*p, i);
    }

    // 1000 user positions.
    let users = datasets::point_query_mix(
        &[],
        1000,
        &[datasets::TIGER_X.0, datasets::TIGER_Y.0],
        &[datasets::TIGER_X.1, datasets::TIGER_Y.1],
        5,
    );

    let mut check = 0.0f64;
    let t0 = Instant::now();
    for u in &users {
        for (_, _, d) in ph.knn(u, 5) {
            check += d;
        }
    }
    let ph_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut check1 = 0.0f64;
    let t0 = Instant::now();
    for u in &users {
        for (_, _, d) in kd1.knn(u, 5) {
            check1 += d;
        }
    }
    let kd1_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut check2 = 0.0f64;
    let t0 = Instant::now();
    for u in &users {
        for (_, _, d) in kd2.knn(u, 5) {
            check2 += d;
        }
    }
    let kd2_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Brute force on a sample of users to verify exactness.
    for u in users.iter().take(20) {
        let mut dists: Vec<f64> = stations
            .iter()
            .map(|p| ((p[0] - u[0]).powi(2) + (p[1] - u[1]).powi(2)).sqrt())
            .collect();
        dists.sort_by(f64::total_cmp);
        let got = ph.knn(u, 5);
        for (g, w) in got.iter().zip(&dists) {
            assert!((g.2 - w).abs() < 1e-9, "kNN mismatch: {} vs {}", g.2, w);
        }
    }

    assert!((check - check1).abs() < 1e-6 * check.abs());
    assert!((check - check2).abs() < 1e-6 * check.abs());
    println!(
        "5-NN × {} users (all results verified identical):",
        users.len()
    );
    println!("  PH-tree best-first: {ph_ms:.1} ms");
    println!("  KD1 recursive:      {kd1_ms:.1} ms");
    println!("  KD2 arena:          {kd2_ms:.1} ms");

    // A user next to a known station gets it at distance 0.
    let s0 = stations[0];
    let nn = ph.knn(&s0, 1);
    assert_eq!(nn[0].2, 0.0);
    println!("sanity: station at {s0:?} is its own nearest neighbour ✓");
}
