//! Geo-indexing scenario: a TIGER/Line-style map-point workload.
//!
//! Loads a synthetic US-road-network-like point cloud (the paper's
//! motivating geo-information-system use case), runs viewport range
//! queries like a slippy map would, and shows why an index beats a
//! scan — plus the space accounting the paper is about.
//!
//! Run with: `cargo run --release -p ph-bench --example geo_index`

use phtree::PhTreeF64;
use std::time::Instant;

fn main() {
    let n = 500_000;
    println!("generating {n} TIGER-like map points…");
    let points = datasets::dedup(datasets::tiger_like(n, 42));

    // Load the spatial index; the value is a synthetic feature id.
    let t0 = Instant::now();
    let mut index: PhTreeF64<u32, 2> = PhTreeF64::new();
    for (i, p) in points.iter().enumerate() {
        index.insert(*p, i as u32);
    }
    index.shrink_to_fit();
    println!(
        "loaded {} unique points in {:.0} ms",
        index.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let s = index.stats();
    println!(
        "index size: {:.1} MiB ({:.1} bytes/entry, {} nodes, {:.2} entries/node)",
        s.total_bytes as f64 / (1024.0 * 1024.0),
        s.bytes_per_entry(),
        s.nodes,
        s.entries_per_node(),
    );

    // Viewport queries: 1°×1° map tiles over the densest region.
    let viewports: Vec<([f64; 2], [f64; 2])> = (0..100)
        .map(|i| {
            let x = -100.0 + (i % 10) as f64 * 2.0;
            let y = 30.0 + (i / 10) as f64 * 1.5;
            ([x, y], [x + 1.0, y + 1.0])
        })
        .collect();

    let t0 = Instant::now();
    let mut total = 0usize;
    for (lo, hi) in &viewports {
        total += index.query(lo, hi).count();
    }
    let indexed = t0.elapsed().as_secs_f64() * 1e3;
    println!("100 viewport queries via PH-tree: {total} points in {indexed:.1} ms");

    // The same via a full scan (what no index costs).
    let t0 = Instant::now();
    let mut total_scan = 0usize;
    for (lo, hi) in &viewports {
        total_scan += points
            .iter()
            .filter(|p| p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1])
            .count();
    }
    let scanned = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(total, total_scan);
    println!("100 viewport queries via full scan: {total_scan} points in {scanned:.1} ms");
    println!("speed-up: {:.0}×", scanned / indexed.max(1e-9));

    // Feature lookup around a click: nearest map features to a cursor.
    let cursor = [-98.35, 39.5];
    for (p, id, d) in index.knn(&cursor, 3) {
        println!("near click {cursor:?}: feature {id} at {p:?} ({d:.3}°)");
    }
}
