//! Persistence: snapshot a PH-tree to paged storage and load it back
//! (the paper's disk-page outlook, Sect. 1/5).
//!
//! Run with: `cargo run --release -p ph-bench --example persistence`

use phtree::key::point_to_key;
use phtree::PhTree;
use std::time::Instant;

fn main() {
    let n = 200_000;
    println!("building a {n}-point 3-D index…");
    let points = datasets::cube::<3>(n, 42);
    let mut tree: PhTree<u32, 3> = PhTree::new();
    for (i, p) in points.iter().enumerate() {
        tree.insert(point_to_key(p), i as u32);
    }
    // Sequential growth leaves capacity slack; loading rebuilds every
    // node at its exact size. Shrink so the node-for-node stats
    // comparison below is byte-exact.
    tree.shrink_to_fit();
    let mem = tree.stats();
    println!(
        "in memory: {} nodes, {:.1} MiB",
        mem.nodes,
        mem.total_bytes as f64 / (1024.0 * 1024.0)
    );

    let path = std::env::temp_dir().join("phtree-example.pht");
    let t0 = Instant::now();
    let stats = phstore::save(&tree, &path).expect("save");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let file_mib = (stats.pages * 4096) as f64 / (1024.0 * 1024.0);
    println!(
        "saved: {} node records in {} pages ({:.1} MiB file, {:.0}% record fill) in {save_ms:.0} ms",
        stats.nodes,
        stats.pages,
        file_mib,
        100.0 * stats.payload_bytes as f64 / (stats.pages * 4096) as f64,
    );

    let t0 = Instant::now();
    let loaded: PhTree<u32, 3> = phstore::load(&path).expect("load");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("loaded and re-validated in {load_ms:.0} ms");

    // The PH-tree is canonical, so the loaded tree is *identical* — not
    // just equivalent.
    assert_eq!(loaded.len(), tree.len());
    assert_eq!(loaded.stats(), tree.stats());
    let probe = point_to_key(&points[1234]);
    assert_eq!(loaded.get(&probe), Some(&1234));
    println!("loaded tree is node-for-node identical ✓");

    // Queries work straight off the loaded tree.
    let hits = loaded
        .query(&point_to_key(&[0.2; 3]), &point_to_key(&[0.4; 3]))
        .count();
    println!("window query on the loaded tree: {hits} hits");

    std::fs::remove_file(&path).ok();
}
