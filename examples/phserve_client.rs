//! Serving the PH-tree over TCP: every protocol op, end to end.
//!
//! Spawns a real `phserve` server on an ephemeral loopback port (the
//! same code path the `phserve` binary runs — accept loop, bounded
//! admission queue, batching workers, Prometheus sidecar) and drives
//! it with the pipelining client:
//!
//! * insert / get / remove — point ops,
//! * bulk_load — batch ingest through the bulk-admission seam,
//! * query — window queries with Z-order shard pruning,
//! * knn — k nearest neighbours with the k-way merge,
//! * stats / ping — introspection and liveness,
//! * pipelining — a run of inserts sent without waiting, which the
//!   server coalesces into one `bulk_load`,
//! * the shed path — a tiny admission queue refusing work with a typed
//!   `Overloaded` reply instead of stalling or dying.
//!
//! Run: `cargo run --release -p ph-bench --example phserve_client`

use phmetrics::Registry;
use phserve::{spawn, Client, ErrorCode, Request, Response, ServerConfig};
use phshard::ShardedTree;
use std::sync::Arc;
use std::time::Duration;

const K: usize = 3;

fn main() {
    // A server exactly like the `phserve` binary's: in-memory sharded
    // backend, metrics registry, Prometheus sidecar.
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(8, 2, &registry));
    let server = spawn(
        Arc::clone(&backend),
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
        registry,
        ServerConfig::default(),
    )
    .expect("spawn server");
    println!(
        "server on {}, metrics on {:?}",
        server.addr(),
        server.metrics_addr()
    );

    let mut c: Client<K> = Client::connect(server.addr()).expect("connect");

    // --- Point ops ----------------------------------------------------
    c.ping().expect("ping");
    assert!(matches!(
        c.insert([101, 102, 103], 100).unwrap(),
        Response::Ack
    ));
    assert!(matches!(
        c.insert([104, 105, 106], 200).unwrap(),
        Response::Ack
    ));
    assert_eq!(c.get([101, 102, 103]).unwrap(), Some(100));
    assert_eq!(c.get([999, 999, 999]).unwrap(), None);
    println!("point ops: insert/get round-trip ok");

    // --- Batch ingest -------------------------------------------------
    let grid: Vec<([u64; K], u64)> = (0..1000u64)
        .map(|i| ([i % 10, (i / 10) % 10, i / 100], i))
        .collect();
    match c.bulk_load(grid).unwrap() {
        Response::Loaded { new } => println!("bulk_load: {new} new keys"),
        other => panic!("unexpected bulk_load reply {other:?}"),
    }

    // --- Window query and kNN ----------------------------------------
    let hits = c.query([2, 2, 2], [4, 4, 4]).unwrap();
    println!("query [2,2,2]..[4,4,4]: {} hits", hits.len());
    assert!(!hits.is_empty());
    let near = c.knn([5, 5, 5], 3).unwrap();
    assert_eq!(near.len(), 3);
    println!(
        "knn around [5,5,5]: nearest {:?} at distance {:.2}",
        near[0].0, near[0].2
    );

    // --- Remove -------------------------------------------------------
    match c.remove([101, 102, 103]).unwrap() {
        Response::Value(Some(100)) => println!("remove: returned the stored value"),
        other => panic!("unexpected remove reply {other:?}"),
    }
    assert_eq!(c.get([101, 102, 103]).unwrap(), None);

    // --- Stats --------------------------------------------------------
    let stats = c.stats().unwrap();
    println!(
        "stats: {} entries over {} shards (epoch {}, skew {:.2})",
        stats.entries, stats.shards, stats.epoch, stats.skew
    );

    // --- Pipelining ---------------------------------------------------
    // Send 256 inserts without waiting for any reply; the server pops
    // them in batches and coalesces the runs into bulk loads.
    let ids: Vec<u64> = (0..256u64)
        .map(|i| {
            c.send(&Request::Insert {
                key: [1000 + i, i, i],
                value: i,
            })
            .expect("send")
        })
        .collect();
    for id in ids {
        assert!(matches!(c.recv(id).expect("recv"), Response::Ack));
    }
    let coalesced = server
        .registry()
        .snapshot()
        .counters
        .iter()
        .find(|c| c.name == "phserve_coalesced_inserts_total")
        .map(|c| c.value)
        .unwrap_or(0);
    println!("pipelining: 256 inserts acked, {coalesced} rode coalesced bulk loads");
    server.stop();

    // --- The shed path ------------------------------------------------
    // A deliberately tiny queue with a slow backend: past high water
    // the server answers `Overloaded` — typed, bounded, retryable —
    // rather than queueing without limit.
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(4, 1, &registry));
    let server = spawn(
        backend,
        "127.0.0.1:0",
        None,
        registry,
        ServerConfig {
            queue_cap: 8,
            batch_max: 4,
            workers: 1,
            shed_wait: Duration::from_micros(100),
            op_delay: Some(Duration::from_millis(2)),
        },
    )
    .expect("spawn small server");
    let mut c: Client<K> = Client::connect(server.addr()).expect("connect");
    let ids: Vec<u64> = (0..512u64)
        .map(|i| {
            c.send(&Request::Insert {
                key: [i, i, i],
                value: i,
            })
            .unwrap()
        })
        .collect();
    let mut acked = 0u32;
    let mut shed = 0u32;
    for id in ids {
        match c.recv(id).unwrap() {
            Response::Ack => acked += 1,
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            } => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    println!("overload: {acked} acked, {shed} shed with typed Overloaded replies");
    assert!(shed > 0, "the tiny queue should have shed");
    server.stop();
}
