//! A live metrics dashboard over the whole PH-tree stack.
//!
//! Runs a mixed workload — concurrent point ops, window queries and
//! kNN on a metered `ShardedTree`, plus journaled writes and
//! checkpoints on a metered `phstore::Durable` — while three layers
//! report into one `phmetrics::Registry`:
//!
//! * `phtree_*` — per-op probe telemetry (nodes visited per
//!   get/insert/query, HC↔LHC representation switches) via the
//!   `phtree::telemetry` sink (cargo feature `metrics`),
//! * `phshard_*` — per-op latency histograms, per-shard routing
//!   counters, fan-out widths, pool queue depth / busy time,
//! * `phstore_*` — WAL append volume, fsync latency, checkpoints,
//!   recovery telemetry.
//!
//! A `MetricsReporter` thread prints a one-line rate summary every
//! second; the full Prometheus exposition is dumped at shutdown.
//!
//! Run: `cargo run --release -p ph-bench --features metrics --example metrics_dashboard [seconds]`
//! (default 3; CI smoke passes 1).

use phmetrics::{Counter, Histogram, MetricsReporter, Registry};
use phshard::ShardedTree;
use phstore::{Durable, DurableConfig, StoreMetrics};
use phtree::telemetry::{self, TreeOp, TreeSink};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bridges the tree's telemetry sink to registry instruments.
struct RegistrySink {
    ops: [Counter; 4],
    nodes: [Histogram; 4],
    to_hc: Counter,
    to_lhc: Counter,
}

impl RegistrySink {
    fn new(reg: &Registry) -> Self {
        let mk = |op: TreeOp| {
            (
                reg.counter(&format!("phtree_ops_total{{op=\"{}\"}}", op.name())),
                reg.histogram(&format!("phtree_nodes_visited{{op=\"{}\"}}", op.name())),
            )
        };
        let (get_c, get_h) = mk(TreeOp::Get);
        let (ins_c, ins_h) = mk(TreeOp::Insert);
        let (rem_c, rem_h) = mk(TreeOp::Remove);
        let (qry_c, qry_h) = mk(TreeOp::Query);
        RegistrySink {
            ops: [get_c, ins_c, rem_c, qry_c],
            nodes: [get_h, ins_h, rem_h, qry_h],
            to_hc: reg.counter("phtree_repr_switches_total{to=\"hc\"}"),
            to_lhc: reg.counter("phtree_repr_switches_total{to=\"lhc\"}"),
        }
    }
}

fn op_idx(op: TreeOp) -> usize {
    match op {
        TreeOp::Get => 0,
        TreeOp::Insert => 1,
        TreeOp::Remove => 2,
        TreeOp::Query => 3,
    }
}

impl TreeSink for RegistrySink {
    fn op(&self, op: TreeOp, nodes_visited: u32) {
        let i = op_idx(op);
        self.ops[i].inc();
        self.nodes[i].record(nodes_visited as u64);
    }

    fn repr_switch(&self, to_hc: bool) {
        if to_hc {
            self.to_hc.inc()
        } else {
            self.to_lhc.inc()
        }
    }
}

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let registry = Registry::new();

    // Tree-level probe telemetry: process-global sink, installed once.
    telemetry::set_sink(Box::leak(Box::new(RegistrySink::new(&registry))));

    const SHARDS: usize = 8;
    let index: Arc<ShardedTree<u64, 2>> = Arc::new(ShardedTree::with_metrics(SHARDS, 2, &registry));

    // Durable store in a temp dir, observed by the same registry.
    let dir = std::env::temp_dir().join(format!("phmetrics-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store: Durable<u64, 2> = Durable::open_observed(
        Arc::new(phstore::vfs::StdVfs),
        &dir,
        DurableConfig {
            checkpoint_bytes: 64 * 1024,
            sync_writes: true,
            retry: None,
        },
        StoreMetrics::from_registry(&registry),
    )
    .expect("open durable store");

    // One summary line per second, off the serving threads.
    let reporter = MetricsReporter::spawn(registry.clone(), Duration::from_secs(1), |reg| {
        let s = reg.snapshot();
        let rate = |name: &str| {
            s.counters
                .iter()
                .find(|c| c.name == name)
                .and_then(|c| c.rate)
                .unwrap_or(0.0)
        };
        println!(
            "[{:>5.1}s] insert {:>8.0}/s  get {:>8.0}/s  query {:>6.0}/s  wal {:>7.0} B/s",
            s.uptime.as_secs_f64(),
            rate("phshard_ops_total{op=\"insert\"}"),
            rate("phshard_ops_total{op=\"get\"}"),
            rate("phshard_ops_total{op=\"query\"}"),
            rate("phstore_wal_append_bytes_total"),
        );
    });

    // Mixed workload until the deadline.
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(secs);
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = w;
                while !stop.load(Ordering::Relaxed) {
                    let key = [i.wrapping_mul(0x9E3779B97F4A7C15), i];
                    index.insert(key, i);
                    if i.is_multiple_of(16) {
                        index.remove(&[i.wrapping_sub(8).wrapping_mul(0x9E3779B97F4A7C15), i - 8]);
                    }
                    i += 2;
                }
            });
        }
        for r in 0..2u64 {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    index.get(&[i.wrapping_mul(0x9E3779B97F4A7C15), i]);
                    if i.is_multiple_of(64) {
                        index.query(&[0, 0], &[u64::MAX / 4, u64::MAX]);
                        index.knn(&[i, i], 3);
                    }
                    i += 1;
                }
            });
        }
        // The durable store journals on the main thread.
        let mut j = 0u64;
        while Instant::now() < deadline {
            store.insert([j, j * 3], j).expect("journaled insert");
            j += 1;
            if j.is_multiple_of(4096) {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    store.checkpoint().expect("final checkpoint");
    reporter.stop();

    println!("\n==== final Prometheus exposition ====");
    print!("{}", registry.render_prometheus());

    let snap = registry.snapshot();
    let p99 = |name: &str| snap.histogram(name).map_or(0, |h| h.p99());
    println!("==== summary ====");
    println!(
        "entries {}  skew {:.2}  insert p99 <= {} ns  get p99 <= {} ns  fsync p99 <= {} ns",
        index.len(),
        index.stats().skew(),
        p99("phshard_op_latency_ns{op=\"insert\"}"),
        p99("phshard_op_latency_ns{op=\"get\"}"),
        p99("phstore_wal_fsync_ns"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
