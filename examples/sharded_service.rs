//! A miniature concurrent serving layer on the sharded PH-tree.
//!
//! Demonstrates the `phshard` subsystem end to end:
//! * writers and readers sharing one `ShardedTree` through `&self`,
//! * window queries pruning whole shards via the router's prefix masks,
//! * kNN fan-out with the bounded k-way merge,
//! * `DurableSharded`: per-shard write-ahead logs, parallel recovery,
//!   and
//! * runtime metrics: the tree records into a `phmetrics::Registry`,
//!   dumped as an ops/p99/skew summary at shutdown.
//!
//! Run: `cargo run --release -p ph-bench --example sharded_service`

use phmetrics::Registry;
use phshard::{DurableSharded, ShardedTree};
use phtree::key::point_to_key;
use std::sync::Arc;

fn main() {
    // ---- In-memory serving -------------------------------------------
    const SHARDS: usize = 8;
    let registry = Registry::new();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get() - 1)
        .unwrap_or(0)
        .min(SHARDS);
    let index: Arc<ShardedTree<u64, 3>> =
        Arc::new(ShardedTree::with_metrics(SHARDS, threads, &registry));

    // 4 writers load 3-D points concurrently; 2 readers query while
    // they do. All through &self — no external locking.
    let pts = datasets::cube::<3>(40_000, 7);
    std::thread::scope(|s| {
        for w in 0..4usize {
            let index = Arc::clone(&index);
            let chunk: Vec<[f64; 3]> = pts
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 4 == w)
                .map(|(_, p)| *p)
                .collect();
            s.spawn(move || {
                for (i, p) in chunk.iter().enumerate() {
                    index.insert(point_to_key(p), (w * 1_000_000 + i) as u64);
                }
            });
        }
        for _ in 0..2 {
            let index = Arc::clone(&index);
            s.spawn(move || {
                let lo = point_to_key(&[0.25; 3]);
                let hi = point_to_key(&[0.75; 3]);
                let mut seen = 0usize;
                for _ in 0..20 {
                    seen = seen.max(index.query_count(&lo, &hi));
                }
                seen
            });
        }
    });
    println!("loaded {} points into {SHARDS} shards", index.len());

    // Window query over one octant: the router proves 7 of 8 top-level
    // shards cannot intersect and never locks them.
    let lo = point_to_key(&[0.5, 0.5, 0.5]);
    let hi = point_to_key(&[0.99, 0.99, 0.99]);
    let hits = index.query(&lo, &hi);
    let stats = index.stats();
    println!(
        "octant query: {} hits; lifetime shards scanned {} / pruned {}",
        hits.len(),
        stats.shards_scanned,
        stats.shards_pruned
    );

    // kNN across shards, merged nearest-first.
    let center = point_to_key(&[0.5; 3]);
    for (i, (_key, value, dist)) in index.knn(&center, 3).into_iter().enumerate() {
        println!("nn #{i}: value {value} at key-space distance {dist:.3e}");
    }

    // ---- Durable mode ------------------------------------------------
    let dir = std::env::temp_dir().join(format!("phshard-demo-{}", std::process::id()));
    {
        let store: DurableSharded<u64, 3> = DurableSharded::open(&dir, 4).expect("open store");
        for p in pts.iter().take(5_000) {
            store.insert(point_to_key(p), 1).expect("journaled insert");
        }
        store.checkpoint_all().expect("checkpoint");
        println!(
            "durable store: {} entries across 4 WALs in {}",
            store.len(),
            dir.display()
        );
    } // dropped without fsync-on-close: recovery handles it

    let store: DurableSharded<u64, 3> = DurableSharded::open(&dir, 4).expect("recover store");
    println!(
        "recovered {} entries; per-shard replayed ops: {:?}",
        store.len(),
        store
            .recovery_stats()
            .iter()
            .map(|r| r.replayed_ops)
            .collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Shutdown metrics summary ------------------------------------
    let snap = registry.snapshot();
    println!(
        "\n-- metrics at shutdown ({:.1}s uptime) --",
        snap.uptime.as_secs_f64()
    );
    for op in ["insert", "get", "query", "query_count", "knn"] {
        let total = snap
            .counter(&format!("phshard_ops_total{{op=\"{op}\"}}"))
            .unwrap_or(0);
        if total == 0 {
            continue;
        }
        let p99 = snap
            .histogram(&format!("phshard_op_latency_ns{{op=\"{op}\"}}"))
            .map_or(0, |h| h.p99());
        println!("{op:>12}: {total:>7} ops, p99 <= {p99} ns");
    }
    let stats = index.stats();
    println!(
        "{:>12}: {:.2} (max/mean over {} shards; 1.0 = balanced)",
        "skew",
        stats.skew(),
        stats.shards
    );
    println!(
        "{:>12}: depth peak {}, tasks {}, panics {}",
        "pool",
        snap.gauge("phshard_pool_queue_depth")
            .map_or(0, |g| g.high_water),
        snap.counter("phshard_pool_tasks_total").unwrap_or(0),
        snap.counter("phshard_pool_task_panics_total").unwrap_or(0),
    );
}
