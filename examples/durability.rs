//! Crash-safe durability: kill the process mid-write, reopen, recover.
//!
//! Demonstrates [`phstore::Durable`] — a write-ahead-logged,
//! checkpointed PH-tree directory that survives being killed at any
//! point (see `DESIGN.md` §9 and `crates/phstore/tests/crash.rs` for
//! the exhaustive byte-level sweep; this example does it for real, at
//! process granularity).
//!
//! Run with: `cargo run --release -p ph-bench --example durability`
//!
//! With no arguments it re-executes itself as a child that aborts
//! mid-workload, then recovers the directory and verifies the result.
//! Subcommands for driving it by hand:
//!
//! ```text
//! durability fill <dir> <n> [abort_after]   insert n keys, optionally abort
//! durability check <dir> <n>                recover and verify a clean prefix
//! ```

use phstore::durable::{Durable, DurableConfig};
use phstore::vfs::StdVfs;
use std::path::Path;
use std::sync::Arc;

/// i-th key: distinct per op, scattered across the 2-D space so the
/// state after n ops is exactly keys 0..n — which makes "recovered a
/// prefix" checkable without replaying a model.
fn key(i: u64) -> [u64; 2] {
    [i, i.wrapping_mul(0x9E3779B97F4A7C15)]
}

fn config() -> DurableConfig {
    DurableConfig {
        // Small threshold so a big fill rotates generations many times.
        checkpoint_bytes: 64 * 1024,
        sync_writes: false,
        retry: None,
    }
}

fn open(dir: &Path) -> Durable<u32, 2> {
    Durable::open_with(Arc::new(StdVfs), dir, config()).expect("open durable store")
}

fn fill(dir: &Path, n: u64, abort_after: Option<u64>) {
    let mut d = open(dir);
    let start = d.len() as u64;
    println!("fill: resuming at {start} entries, target {n}");
    for i in start..n {
        d.insert(key(i), i as u32).expect("insert");
        if abort_after == Some(i) {
            println!("fill: aborting after op {i} (simulated crash)");
            std::process::abort();
        }
    }
    d.sync().expect("sync");
    println!("fill: done, {} entries", d.len());
}

fn check(dir: &Path, n: u64) {
    let d = open(dir);
    let r = d.recovery_stats();
    println!(
        "check: generation {}, replayed {} WAL ops, truncated {} torn bytes{}",
        r.generation,
        r.replayed_ops,
        r.truncated_bytes,
        if r.reset_stale_wal {
            ", discarded stale WAL"
        } else {
            ""
        },
    );
    d.tree().check_invariants();
    let len = d.len() as u64;
    assert!(len <= n, "recovered more entries than were ever written");
    for i in 0..len {
        assert_eq!(d.get(&key(i)).copied(), Some(i as u32), "key {i} wrong");
    }
    println!("check: recovered exactly ops 0..{len} — a clean prefix ✓");

    // The store stays live after recovery: write, checkpoint, reopen.
    let mut d = d;
    d.insert([u64::MAX, 0], 0xDEAD)
        .expect("post-recovery insert");
    let g = d.checkpoint().expect("checkpoint");
    drop(d);
    let mut d = open(dir);
    assert_eq!(d.get(&[u64::MAX, 0]), Some(&0xDEAD));
    assert_eq!(d.generation(), g);
    d.remove(&[u64::MAX, 0]).expect("remove marker");
    d.sync().expect("sync");
    println!("check: post-recovery write + checkpoint (generation {g}) survive reopen ✓");
}

fn demo() {
    let dir = std::env::temp_dir().join("phtree-durability-demo");
    std::fs::remove_dir_all(&dir).ok();
    let n = 120_000u64;
    let crash_at = 77_777u64;
    let exe = std::env::current_exe().expect("current_exe");

    println!("spawning a child that will crash mid-workload…");
    let status = std::process::Command::new(&exe)
        .args([
            "fill",
            dir.to_str().unwrap(),
            &n.to_string(),
            &crash_at.to_string(),
        ])
        .status()
        .expect("spawn child");
    assert!(!status.success(), "child was supposed to crash");
    println!("child died ({status}); recovering…");
    check(&dir, n);

    // Resume the interrupted workload to completion and re-verify.
    fill(&dir, n, None);
    check(&dir, n);

    std::fs::remove_dir_all(&dir).ok();
    println!("demo complete ✓");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        None => demo(),
        Some("fill") => fill(
            Path::new(&args[2]),
            args[3].parse().unwrap(),
            args.get(4).map(|s| s.parse().unwrap()),
        ),
        Some("check") => check(Path::new(&args[2]), args[3].parse().unwrap()),
        Some(cmd) => {
            eprintln!("unknown subcommand {cmd:?}; usage: durability [fill|check] …");
            std::process::exit(2);
        }
    }
}
