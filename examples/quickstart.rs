//! Quickstart: the PH-tree as a multi-dimensional map.
//!
//! Run with: `cargo run --release -p ph-bench --example quickstart`

use phtree::{PhTree, PhTreeF64};

fn main() {
    // ---------------------------------------------------------------
    // 1. Floating-point points (the common case): PhTreeF64.
    // ---------------------------------------------------------------
    let mut cities: PhTreeF64<&str, 2> = PhTreeF64::new();
    cities.insert([8.54, 47.38], "Zurich");
    cities.insert([8.96, 46.00], "Lugano");
    cities.insert([7.45, 46.95], "Bern");
    cities.insert([6.14, 46.20], "Geneva");
    cities.insert([-0.12, 51.51], "London");

    println!("{} cities indexed", cities.len());

    // Exact-match (point) query.
    assert_eq!(cities.get(&[7.45, 46.95]), Some(&"Bern"));
    println!("point query [7.45, 46.95] -> Bern ✓");

    // Window query: everything in a lon/lat rectangle around Switzerland.
    print!("cities in the Swiss bounding box:");
    for (_, name) in cities.query(&[5.9, 45.8], &[10.5, 47.9]) {
        print!(" {name}");
    }
    println!();

    // Nearest neighbours (Euclidean on the original coordinates).
    let nn = cities.knn(&[8.0, 47.0], 2);
    println!(
        "two nearest to (8.0, 47.0): {} ({:.2}°) and {} ({:.2}°)",
        nn[0].1, nn[0].2, nn[1].1, nn[1].2
    );

    // Update & remove.
    cities.insert([8.54, 47.38], "Zürich"); // replaces the value
    assert_eq!(cities.remove(&[-0.12, 51.51]), Some("London"));
    assert_eq!(cities.len(), 4);

    // ---------------------------------------------------------------
    // 2. Integer keys: PhTree stores any data expressible as u64s,
    //    e.g. (timestamp, sensor-id, reading-bucket) triples — the
    //    PH-tree has no notion of distance and handles non-metric,
    //    discrete dimensions natively (paper Sect. 3).
    // ---------------------------------------------------------------
    let mut readings: PhTree<f32, 3> = PhTree::new();
    for t in 0..1000u64 {
        let sensor = t % 7;
        let bucket = (t * t) % 100;
        readings.insert([1_700_000_000 + t, sensor, bucket], t as f32 * 0.1);
    }
    // All readings of sensor 3 in a time slice, any bucket:
    let hits = readings
        .query(&[1_700_000_100, 3, 0], &[1_700_000_500, 3, u64::MAX])
        .count();
    println!("sensor-3 readings in window: {hits}");

    // ---------------------------------------------------------------
    // 3. Introspection: the node statistics behind the paper's space
    //    numbers.
    // ---------------------------------------------------------------
    let s = readings.stats();
    println!(
        "readings tree: {} entries in {} nodes ({} HC / {} LHC), depth {}, {:.1} bytes/entry",
        s.entries,
        s.nodes,
        s.hc_nodes,
        s.lhc_nodes,
        s.max_depth,
        s.bytes_per_entry()
    );
}
