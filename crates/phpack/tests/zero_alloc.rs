//! Zero-allocation guarantee for the packed read path, enforced with a
//! counting global allocator: after warm-up, `get`, window `query` and
//! `knn_into` perform **zero** heap allocations per operation, on both
//! cache backends.
//!
//! Everything lives in ONE `#[test]`: the allocator counters are
//! process-global and libtest runs separate tests on separate threads.

use measure::alloc_track::{snapshot, CountingAlloc};
use phpack::{pack_tree_in, CacheMode, KnnScratch, PackedNeighbor, PackedTree};
use phstore::vfs::MemVfs;
use phtree::{IntEuclidean, PhTree};
use std::hint::black_box;
use std::path::Path;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const K: usize = 3;
const N: u64 = 3000;

fn dataset() -> Vec<([u64; K], u64)> {
    let mut x = 7u64;
    (0..N)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ([x % 4096, (x >> 20) % 4096, (x >> 40) % 4096], i)
        })
        .collect()
}

/// Runs `ops` twice — once to warm caches and capacity high-water
/// marks, once under measurement — and asserts the measured pass
/// allocated nothing.
fn assert_zero_allocs(label: &str, mut ops: impl FnMut()) {
    ops();
    let before = snapshot();
    ops();
    let after = snapshot();
    assert_eq!(
        after.allocs_since(&before),
        0,
        "{label}: allocations per warmed op batch"
    );
}

#[test]
fn warmed_read_ops_allocate_nothing() {
    let items = dataset();
    let live: PhTree<u64, K> = PhTree::bulk_load(items.clone());
    let vfs = MemVfs::new();
    let path = Path::new("/m/za.phk");
    pack_tree_in(&live, &vfs, path).unwrap();

    let probes: Vec<[u64; K]> = items.iter().map(|(k, _)| *k).take(400).collect();
    let misses: Vec<[u64; K]> = probes.iter().map(|k| [k[0] ^ 1, k[1], k[2] ^ 3]).collect();
    let windows: &[([u64; K], [u64; K])] = &[
        ([0; K], [u64::MAX; K]),
        ([100, 100, 100], [1100, 1100, 1100]),
        ([0, 0, 0], [63, 63, 63]),
    ];

    let resident: PackedTree<u64, K> =
        PackedTree::open_in(&vfs, path, CacheMode::Resident).unwrap();
    let big = resident.data_pages() as usize + 8;
    let lru: PackedTree<u64, K> =
        PackedTree::open_in(&vfs, path, CacheMode::Lru { pages: big }).unwrap();

    for (name, tree) in [("resident", &resident), ("lru-warm", &lru)] {
        assert_zero_allocs(&format!("{name}/get"), || {
            let mut hits = 0usize;
            for k in probes.iter().chain(misses.iter()) {
                if black_box(tree.get(k).unwrap()).is_some() {
                    hits += 1;
                }
            }
            assert_eq!(black_box(hits), probes.len());
        });

        assert_zero_allocs(&format!("{name}/query"), || {
            let mut total = 0usize;
            for (lo, hi) in windows {
                for item in tree.query(lo, hi) {
                    black_box(item.unwrap());
                    total += 1;
                }
            }
            assert!(black_box(total) >= items.len());
        });

        // kNN scratch + output vectors are warmed by the first pass and
        // reused; the measured pass reallocates nothing.
        let mut scratch = KnnScratch::new();
        let mut out: Vec<PackedNeighbor<u64, K>> = Vec::new();
        assert_zero_allocs(&format!("{name}/knn"), || {
            for c in probes.iter().take(50) {
                tree.knn_into(c, 10, &IntEuclidean, &mut scratch, &mut out)
                    .unwrap();
                assert_eq!(black_box(out.len()), 10);
            }
        });
    }
}
