//! Corruption fuzz: every byte of a packed artifact is pinned by
//! exactly one checksum (superblock CRC, per-page sums, table CRC), so
//! flipping ANY single bit anywhere in the file must surface as a typed
//! [`StoreError::Corrupt`] — never a panic, never silently wrong
//! results.
//!
//! * [`CacheMode::Resident`] verifies everything at open, so the flip
//!   must fail `open_in` itself.
//! * [`CacheMode::Lru`] verifies the superblock and checksum table at
//!   open and data pages on first touch; a data flip must surface on
//!   the full-scan walk (which fetches every data page).
//!
//! The default run strides through the file (~192 sampled offsets, PR
//! CI budget); set `PACK_SWEEP_FULL=1` for the exhaustive every-byte
//! sweep (nightly).

use phpack::{pack_tree_in, CacheMode, PackedTree};
use phstore::vfs::MemVfs;
use phstore::StoreError;
use phtree::PhTree;
use std::path::Path;

const K: usize = 3;
type V = String;

fn build(vfs: &MemVfs, path: &Path) -> u64 {
    let mut live: PhTree<V, K> = PhTree::new();
    let mut x = 9u64;
    for i in 0..300u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        live.insert(
            [x % 512, (x >> 20) % 512, (x >> 40) % 512],
            "v".repeat((i % 7) as usize),
        );
    }
    pack_tree_in(&live, vfs, path).expect("pack").file_bytes
}

/// Walks the whole read surface; returns `true` on the first typed
/// corruption error, panics on any other error kind.
fn scan_detects(p: &PackedTree<V, K>, off: u64) -> bool {
    for item in p.query(&[0; K], &[u64::MAX; K]) {
        match item {
            Ok(_) => {}
            Err(StoreError::Corrupt(_)) => return true,
            Err(e) => panic!("flip at {off}: full scan returned non-corruption error: {e:?}"),
        }
    }
    match p.knn(&[5; K], 4) {
        Ok(_) => {}
        Err(StoreError::Corrupt(_)) => return true,
        Err(e) => panic!("flip at {off}: knn returned non-corruption error: {e:?}"),
    }
    false
}

fn flip_must_surface(vfs: &MemVfs, path: &Path, off: u64, mask: u8) {
    assert!(vfs.corrupt(path, off, mask), "corrupt at {off}");

    // Resident verifies the whole file at open: the flip must fail it.
    match PackedTree::<V, K>::open_in(vfs, path, CacheMode::Resident) {
        Err(StoreError::Corrupt(_)) => {}
        Err(e) => panic!("flip at {off}: resident open returned non-corruption error: {e:?}"),
        Ok(_) => panic!("flip at {off} (mask {mask:#04x}): resident open succeeded"),
    }

    // LRU defers data pages to first touch; open or the scan must
    // surface the flip — silently correct-looking output is a failure.
    let detected = match PackedTree::<V, K>::open_in(vfs, path, CacheMode::Lru { pages: 2 }) {
        Err(StoreError::Corrupt(_)) => true,
        Err(e) => panic!("flip at {off}: lru open returned non-corruption error: {e:?}"),
        Ok(p) => scan_detects(&p, off),
    };
    assert!(
        detected,
        "flip at {off} (mask {mask:#04x}): lru path never surfaced corruption"
    );

    // Un-flip (XOR mask) so the next iteration starts from a clean file.
    assert!(vfs.corrupt(path, off, mask), "restore at {off}");
}

#[test]
fn every_flipped_byte_surfaces_as_corruption() {
    let vfs = MemVfs::new();
    let path = Path::new("/m/fuzz.phk");
    let total = build(&vfs, path);

    // Sanity: the pristine artifact opens and scans clean on both paths.
    let p = PackedTree::<V, K>::open_in(&vfs, path, CacheMode::Resident).unwrap();
    assert!(!scan_detects(&p, u64::MAX));
    let p = PackedTree::<V, K>::open_in(&vfs, path, CacheMode::Lru { pages: 2 }).unwrap();
    assert!(!scan_detects(&p, u64::MAX));

    let full = std::env::var("PACK_SWEEP_FULL").is_ok_and(|v| v == "1");
    let stride = if full { 1 } else { (total / 192).max(1) };
    let mut flips = 0u64;
    let mut off = 0u64;
    while off < total {
        // Single-bit flips (the hardest to detect), bit varying with
        // the offset so the sweep covers all positions over the file.
        flip_must_surface(&vfs, path, off, 1u8 << (off % 8));
        flips += 1;
        off += stride;
    }
    assert!(flips >= if full { total } else { 150 });
}

/// Corruption errors carry locating context: a flipped data page is
/// reported with its page id.
#[test]
fn corruption_reports_page_context() {
    use phpack::format::PAGE_SIZE;
    let vfs = MemVfs::new();
    let path = Path::new("/m/ctx.phk");
    build(&vfs, path);
    // Flip a byte in the middle of data page 2.
    let off = 2 * PAGE_SIZE as u64 + 123;
    assert!(vfs.corrupt(path, off, 0x40));
    match PackedTree::<V, K>::open_in(&vfs, path, CacheMode::Resident) {
        Err(StoreError::Corrupt(c)) => {
            assert_eq!(c.page, Some(2), "page context: {c:?}");
        }
        Err(e) => panic!("expected corruption, got {e:?}"),
        Ok(_) => panic!("expected corruption, open succeeded"),
    }
}
