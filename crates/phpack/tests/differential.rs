//! Differential tests: a packed artifact must answer every query
//! byte-identically to the live tree it was packed from (and both must
//! agree with a `BTreeMap` / brute-force oracle), on both page-cache
//! backends.
//!
//! "Identically" includes *order*: window queries are compared as
//! sequences and kNN as exact (key, distance) sequences, which pins the
//! packed walkers to the live traversal — including heap tie-breaking —
//! not merely to the same result set.

use phpack::{pack_tree_in, CacheMode, PackedTree};
use phstore::vfs::MemVfs;
use phtree::PhTree;
use proptest::prelude::*;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
use std::collections::BTreeMap;
use std::path::Path;

fn key_strategy<const K: usize>() -> impl Strategy<Value = [u64; K]> {
    prop_oneof![
        // Dense small coordinates: collisions, deep splits.
        std::array::from_fn::<_, K, _>(|_| 0u64..8),
        // High-bit patterns.
        std::array::from_fn::<_, K, _>(|_| 0u64..4).prop_map(|k: [u64; K]| k.map(|v| v << 62)),
        // Arbitrary values (includes boundary cases).
        std::array::from_fn::<_, K, _>(|_| any::<u64>()),
    ]
}

/// Packs `live`, reopens it under `mode`, and checks the full read
/// surface against `live` and the `model` oracle.
fn check_against<const K: usize>(
    live: &PhTree<u64, K>,
    model: &BTreeMap<[u64; K], u64>,
    windows: &[([u64; K], [u64; K])],
    centers: &[[u64; K]],
    mode: CacheMode,
) -> Result<(), TestCaseError> {
    let vfs = MemVfs::new();
    let path = Path::new("/m/t.phk");
    let stats = pack_tree_in(live, &vfs, path).expect("pack");
    prop_assert_eq!(stats.entries as usize, live.len());

    let packed: PackedTree<u64, K> =
        PackedTree::open_in(&vfs, path, mode).expect("open packed artifact");
    prop_assert_eq!(packed.len(), live.len());
    prop_assert_eq!(packed.is_empty(), live.is_empty());

    // Point lookups: every stored key, plus near-miss probes.
    for (k, v) in model {
        prop_assert_eq!(packed.get(k).expect("get"), Some(*v), "get {:?}", k);
        prop_assert!(packed.contains(k).expect("contains"));
        let mut miss = *k;
        miss[0] ^= 1;
        prop_assert_eq!(
            packed.get(&miss).expect("get miss"),
            model.get(&miss).copied(),
            "probe {:?}",
            miss
        );
    }
    prop_assert_eq!(
        packed.get(&[0u64; K]).expect("get zero"),
        model.get(&[0u64; K]).copied()
    );
    prop_assert_eq!(
        packed.get(&[u64::MAX; K]).expect("get max"),
        model.get(&[u64::MAX; K]).copied()
    );

    // Full scan: exact sequence equality with the live iterator.
    let lo = [0u64; K];
    let hi = [u64::MAX; K];
    let got: Vec<([u64; K], u64)> = packed
        .query(&lo, &hi)
        .collect::<Result<_, _>>()
        .expect("full scan");
    let want: Vec<([u64; K], u64)> = live.query(&lo, &hi).map(|(k, &v)| (k, v)).collect();
    prop_assert_eq!(&got, &want, "full-scan order");
    prop_assert_eq!(packed.query_count(&lo, &hi).expect("count"), model.len());

    // Windows: sequence equality with live, count vs brute force.
    for (a, b) in windows {
        let mut min = [0u64; K];
        let mut max = [0u64; K];
        for d in 0..K {
            min[d] = a[d].min(b[d]);
            max[d] = a[d].max(b[d]);
        }
        let got: Vec<([u64; K], u64)> = packed
            .query(&min, &max)
            .collect::<Result<_, _>>()
            .expect("window");
        let want: Vec<([u64; K], u64)> = live.query(&min, &max).map(|(k, &v)| (k, v)).collect();
        prop_assert_eq!(&got, &want, "window order {:?}..{:?}", min, max);
        let brute = model
            .iter()
            .filter(|(k, _)| (0..K).all(|d| min[d] <= k[d] && k[d] <= max[d]))
            .count();
        prop_assert_eq!(got.len(), brute, "window count {:?}..{:?}", min, max);
        prop_assert_eq!(packed.query_count(&min, &max).expect("count"), brute);
    }

    // kNN: exact (key, dist, value) sequence equality — same results,
    // same order, same tie-breaking.
    for c in centers {
        for n in [1usize, 3, model.len()] {
            let got = packed.knn(c, n).expect("knn");
            let want = live.knn(c, n);
            prop_assert_eq!(got.len(), want.len(), "knn len @{:?} n={}", c, n);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.key, w.key, "knn key @{:?} n={}", c, n);
                prop_assert_eq!(g.value, *w.value, "knn value @{:?} n={}", c, n);
                prop_assert!(
                    g.dist.to_bits() == w.dist.to_bits(),
                    "knn dist @{:?} n={}: {} vs {}",
                    c,
                    n,
                    g.dist,
                    w.dist
                );
            }
        }
    }

    // Round trip back to a live tree: full re-validation plus scan
    // equality.
    let rt = packed.to_tree().expect("to_tree");
    rt.check_invariants();
    let rt_scan: Vec<([u64; K], u64)> = rt.query(&lo, &hi).map(|(k, &v)| (k, v)).collect();
    prop_assert_eq!(&rt_scan, &want, "round-trip scan");

    Ok(())
}

fn check_all<const K: usize>(
    items: Vec<([u64; K], u64)>,
    windows: Vec<([u64; K], [u64; K])>,
    centers: Vec<[u64; K]>,
) -> Result<(), TestCaseError> {
    let mut live: PhTree<u64, K> = PhTree::new();
    let mut model: BTreeMap<[u64; K], u64> = BTreeMap::new();
    for (k, v) in &items {
        live.insert(*k, *v);
        model.insert(*k, *v);
    }
    for mode in [
        CacheMode::Resident,
        // Tiny budget: constant eviction churn on every walk.
        CacheMode::Lru { pages: 2 },
        CacheMode::Lru { pages: 64 },
    ] {
        check_against(&live, &model, &windows, &centers, mode)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packed_matches_live_k3(
        items in proptest::collection::vec((key_strategy::<3>(), any::<u64>()), 0..160),
        windows in proptest::collection::vec((key_strategy::<3>(), key_strategy::<3>()), 1..5),
        centers in proptest::collection::vec(key_strategy::<3>(), 1..4),
    ) {
        check_all::<3>(items, windows, centers)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_matches_live_k8(
        items in proptest::collection::vec((key_strategy::<8>(), any::<u64>()), 0..100),
        windows in proptest::collection::vec((key_strategy::<8>(), key_strategy::<8>()), 1..4),
        centers in proptest::collection::vec(key_strategy::<8>(), 1..3),
    ) {
        check_all::<8>(items, windows, centers)?;
    }

    /// K=20 stays under the HC dimension limit but forces wide LHC
    /// nodes and multi-word addresses.
    #[test]
    fn packed_matches_live_k20(
        items in proptest::collection::vec((key_strategy::<20>(), any::<u64>()), 0..60),
        windows in proptest::collection::vec((key_strategy::<20>(), key_strategy::<20>()), 1..3),
        centers in proptest::collection::vec(key_strategy::<20>(), 1..3),
    ) {
        check_all::<20>(items, windows, centers)?;
    }
}

// ------------------------------------------------------------ edge cases

#[test]
fn empty_tree_round_trips() {
    let live: PhTree<u64, 3> = PhTree::new();
    let vfs = MemVfs::new();
    let path = Path::new("/m/empty.phk");
    let stats = pack_tree_in(&live, &vfs, path).unwrap();
    assert_eq!(stats.entries, 0);
    assert_eq!(stats.nodes, 0);
    for mode in [CacheMode::Resident, CacheMode::Lru { pages: 2 }] {
        let p: PackedTree<u64, 3> = PackedTree::open_in(&vfs, path, mode).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.get(&[1, 2, 3]).unwrap(), None);
        assert!(!p.contains(&[0, 0, 0]).unwrap());
        assert_eq!(p.query(&[0; 3], &[u64::MAX; 3]).count(), 0);
        assert_eq!(p.knn(&[5; 3], 4).unwrap().len(), 0);
        assert_eq!(p.to_tree().unwrap().len(), 0);
    }
}

#[test]
fn singleton_and_duplicate_heavy() {
    let mut live: PhTree<u64, 3> = PhTree::new();
    live.insert([7, 8, 9], 1);
    for i in 0..50 {
        live.insert([7, 8, 9], i); // same key, value overwritten
    }
    assert_eq!(live.len(), 1);
    let vfs = MemVfs::new();
    let path = Path::new("/m/one.phk");
    pack_tree_in(&live, &vfs, path).unwrap();
    for mode in [CacheMode::Resident, CacheMode::Lru { pages: 1 }] {
        let p: PackedTree<u64, 3> = PackedTree::open_in(&vfs, path, mode).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&[7, 8, 9]).unwrap(), Some(49));
        assert_eq!(p.get(&[7, 8, 8]).unwrap(), None);
        let hits: Vec<_> = p
            .query(&[0; 3], &[u64::MAX; 3])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(hits, vec![([7, 8, 9], 49)]);
        let nn = p.knn(&[0; 3], 2).unwrap();
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].key, [7, 8, 9]);
    }
}

/// Variable-width values (strings) force the non-uniform value path:
/// sequential skip-decode instead of O(1) striding.
#[test]
fn string_values_non_uniform_path() {
    let mut live: PhTree<String, 3> = PhTree::new();
    for i in 0u64..200 {
        let k = [i % 17, (i * 7) % 23, i];
        live.insert(k, "x".repeat((i % 11) as usize));
    }
    let vfs = MemVfs::new();
    let path = Path::new("/m/strs.phk");
    pack_tree_in(&live, &vfs, path).unwrap();
    for mode in [CacheMode::Resident, CacheMode::Lru { pages: 3 }] {
        let p: PackedTree<String, 3> = PackedTree::open_in(&vfs, path, mode).unwrap();
        assert_eq!(p.len(), live.len());
        for (k, v) in live.query(&[0; 3], &[u64::MAX; 3]) {
            assert_eq!(p.get(&k).unwrap().as_deref(), Some(v.as_str()));
        }
        let got: Vec<_> = p
            .query(&[0; 3], &[u64::MAX; 3])
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let want: Vec<_> = live
            .query(&[0; 3], &[u64::MAX; 3])
            .map(|(k, v)| (k, v.clone()))
            .collect();
        assert_eq!(got, want);
        let rt = p.to_tree().unwrap();
        rt.check_invariants();
        assert_eq!(rt.len(), live.len());
    }
}

/// Unit values encode to zero bytes (uniform stride 0) — the degenerate
/// end of the fixed-width path.
#[test]
fn unit_values_zero_stride() {
    let mut live: PhTree<(), 3> = PhTree::new();
    for i in 0u64..100 {
        live.insert([i, i * 3 % 31, i % 5], ());
    }
    let vfs = MemVfs::new();
    let path = Path::new("/m/unit.phk");
    pack_tree_in(&live, &vfs, path).unwrap();
    let p: PackedTree<(), 3> = PackedTree::open_in(&vfs, path, CacheMode::Resident).unwrap();
    assert_eq!(p.len(), live.len());
    assert_eq!(p.query_count(&[0; 3], &[u64::MAX; 3]).unwrap(), live.len());
    assert_eq!(p.get(&[1, 3, 1]).unwrap(), Some(()));
}
