//! The packed read-only tree: open, point/window/kNN queries.
//!
//! All three walkers replay the live tree's algorithms over
//! [`NodeView`]s — borrowed page bytes, no deserialisation, no per-node
//! allocation:
//!
//! * [`PackedTree::get`] is the descent loop of `PhTree::get`.
//! * [`PackedTree::query`] is the live `Query` iterator with its stack
//!   inlined into a fixed-size array (tree depth is bounded by the
//!   64-bit key width, so 64 frames always suffice) — constructing and
//!   draining a query performs **zero** heap allocations for
//!   fixed-width value types.
//! * [`PackedTree::knn_into`] is the live best-first search with its
//!   heap and item arena hoisted into a caller-owned [`KnnScratch`];
//!   after warm-up, repeated searches allocate nothing.
//!
//! Result *order* is identical to the live tree's, not merely the
//! result set: the walkers visit slots in the same sequence and the
//! kNN heap breaks distance ties the same way, which is what lets the
//! differential test suite compare outputs element by element.

use crate::cache::{CacheMode, CacheStats, LruCache, PageCache, SliceCache};
use crate::format::{Meta, PackedRef, PACK_MAGIC, PAGE_SIZE};
use crate::view::{NodeView, PSlot};
use phbits::{hc, num};
use phstore::vfs::{StdVfs, Vfs};
use phstore::{fnv1a, superblock, Corruption, StoreError, ValueCodec};
use phtree::raw::{build_node, RawNode};
use phtree::{Distance, IntEuclidean, PhTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::Arc;

/// Maximum descent depth: the root splits at bit 63 and every child
/// splits strictly lower, so a chain is at most 64 nodes.
const MAX_DEPTH: usize = 64;

/// A read-only PH-tree served from a packed artifact.
pub struct PackedTree<V, const K: usize> {
    cache: Arc<dyn PageCache>,
    len: u64,
    root: Option<PackedRef>,
    _v: PhantomData<fn() -> V>,
}

impl<V, const K: usize> PackedTree<V, K> {
    /// Opens a packed artifact on the real filesystem.
    pub fn open(path: &Path, mode: CacheMode) -> Result<PackedTree<V, K>, StoreError> {
        Self::open_in(&StdVfs, path, mode)
    }

    /// Opens a packed artifact on any [`Vfs`].
    ///
    /// Validates the superblock, metadata and checksum table up front.
    /// [`CacheMode::Resident`] additionally reads and verifies the
    /// whole data region once; [`CacheMode::Lru`] defers per-page
    /// verification to first touch.
    pub fn open_in(
        vfs: &dyn Vfs,
        path: &Path,
        mode: CacheMode,
    ) -> Result<PackedTree<V, K>, StoreError> {
        let mut file = vfs.open(path)?;
        let flen = file.len()?;
        if flen < PAGE_SIZE as u64 || flen % PAGE_SIZE as u64 != 0 {
            return Err(Corruption::new("file size is not page-aligned")
                .at_offset(flen)
                .into());
        }
        let mut sb = vec![0u8; PAGE_SIZE];
        file.read_exact_at(&mut sb, 0)?;
        let (n_pages, meta) = superblock::decode(PACK_MAGIC, &sb)?;
        if n_pages != flen / PAGE_SIZE as u64 {
            return Err(Corruption::new("page count mismatch")
                .at_page(n_pages)
                .into());
        }
        let meta = Meta::decode(&meta)?;
        if meta.k as usize != K {
            return Err(Corruption::new("artifact dimension count mismatch")
                .at_page(0)
                .into());
        }
        let d = meta.data_pages;
        let table_pages = (d * 8).div_ceil(PAGE_SIZE as u64);
        if d > u32::MAX as u64 || n_pages != 1 + d + table_pages {
            return Err(Corruption::new("page accounting mismatch")
                .at_page(0)
                .into());
        }

        let mut table = vec![0u8; (table_pages as usize) * PAGE_SIZE];
        file.read_exact_at(&mut table, (1 + d) * PAGE_SIZE as u64)?;
        if fnv1a(&table) != meta.table_crc {
            return Err(Corruption::new("checksum table corrupt")
                .at_page(1 + d)
                .into());
        }
        let sums: Box<[u64]> = (0..d as usize)
            .map(|i| u64::from_le_bytes(table[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect();

        let cache: Arc<dyn PageCache> = match mode {
            CacheMode::Resident => {
                let mut data = vec![0u8; d as usize * PAGE_SIZE];
                if d > 0 {
                    file.read_exact_at(&mut data, PAGE_SIZE as u64)?;
                }
                for (i, chunk) in data.chunks(PAGE_SIZE).enumerate() {
                    if fnv1a(chunk) != sums[i] {
                        return Err(Corruption::new("page checksum mismatch")
                            .at_page(1 + i as u64)
                            .into());
                    }
                }
                Arc::new(SliceCache::new(data.into_boxed_slice(), d as u32))
            }
            CacheMode::Lru { pages } => Arc::new(LruCache::new(file, d as u32, sums, pages)),
        };
        Ok(PackedTree {
            cache,
            len: meta.len,
            root: meta.root,
            _v: PhantomData,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page-cache counters (touches are the benchmark's pages/query
    /// locality probe).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of data pages in the artifact.
    pub fn data_pages(&self) -> u32 {
        self.cache.data_pages()
    }
}

impl<V: ValueCodec, const K: usize> PackedTree<V, K> {
    /// Point query. Decodes and returns the stored value on a hit.
    pub fn get(&self, key: &[u64; K]) -> Result<Option<V>, StoreError> {
        let Some(mut r) = self.root else {
            return Ok(None);
        };
        let mut parent: Option<u8> = None;
        loop {
            let node = NodeView::<K>::fetch(&*self.cache, r, parent)?;
            if !node.infix_matches(key) {
                return Ok(None);
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.get_slot(h)? {
                None => return Ok(None),
                Some(PSlot::Post { pf_off, pr }) => {
                    return if node.postfix_matches(pf_off, key) {
                        node.value_at::<V>(pr).map(Some)
                    } else {
                        Ok(None)
                    };
                }
                Some(PSlot::Sub { sr }) => {
                    parent = Some(node.post_len);
                    r = node.child_ref(sr)?;
                }
            }
        }
    }

    /// Whether `key` is stored (the [`PackedTree::get`] walk without
    /// the value decode).
    pub fn contains(&self, key: &[u64; K]) -> Result<bool, StoreError> {
        let Some(mut r) = self.root else {
            return Ok(false);
        };
        let mut parent: Option<u8> = None;
        loop {
            let node = NodeView::<K>::fetch(&*self.cache, r, parent)?;
            if !node.infix_matches(key) {
                return Ok(false);
            }
            let h = hc::addr(key, node.post_len as u32);
            match node.get_slot(h)? {
                None => return Ok(false),
                Some(PSlot::Post { pf_off, .. }) => {
                    return Ok(node.postfix_matches(pf_off, key));
                }
                Some(PSlot::Sub { sr }) => {
                    parent = Some(node.post_len);
                    r = node.child_ref(sr)?;
                }
            }
        }
    }

    /// Window query over borrowed page bytes; yields entries in the
    /// same order as the live tree's `PhTree::query`.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> PackedQuery<'_, V, K> {
        let mut q = PackedQuery {
            cache: &*self.cache,
            min: *min,
            max: *max,
            stack: std::array::from_fn(|_| None),
            depth: 0,
            pending: None,
            done: false,
            _v: PhantomData,
        };
        if let Some(r) = self.root {
            match NodeView::<K>::fetch(q.cache, r, None) {
                Ok(root) => q.push_node(root, [0u64; K]),
                Err(e) => q.pending = Some(e),
            }
        }
        q
    }

    /// Number of entries in the window (drains a [`PackedTree::query`]).
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> Result<usize, StoreError> {
        let mut n = 0usize;
        for item in self.query(min, max) {
            item?;
            n += 1;
        }
        Ok(n)
    }

    /// `n` nearest entries under integer Euclidean distance
    /// (convenience wrapper allocating a fresh scratch).
    pub fn knn(
        &self,
        center: &[u64; K],
        n: usize,
    ) -> Result<Vec<PackedNeighbor<V, K>>, StoreError> {
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        self.knn_into(center, n, &IntEuclidean, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Best-first kNN with caller-owned scratch: `scratch` and `out`
    /// retain their capacity across calls, so repeated searches are
    /// allocation-free once warmed up. Results are appended to `out`
    /// (cleared first), nearest first.
    pub fn knn_into<'t, M: Distance<K>>(
        &'t self,
        center: &[u64; K],
        n: usize,
        metric: &M,
        scratch: &mut KnnScratch<'t, V, K>,
        out: &mut Vec<PackedNeighbor<V, K>>,
    ) -> Result<(), StoreError> {
        out.clear();
        scratch.heap.clear();
        scratch.items.clear();
        if n == 0 {
            return Ok(());
        }
        let Some(r) = self.root else {
            return Ok(());
        };
        let root = NodeView::<K>::fetch(&*self.cache, r, None)?;
        scratch.push(0.0, PItem::Node(root, [0u64; K]));
        while let Some((Reverse(D(dist)), idx)) = scratch.heap.pop() {
            match std::mem::replace(&mut scratch.items[idx], PItem::Taken) {
                PItem::Taken => {
                    return Err(Corruption::new("knn arena slot reused").into());
                }
                PItem::Entry(key, value) => {
                    out.push(PackedNeighbor { key, value, dist });
                    if out.len() == n {
                        break;
                    }
                }
                PItem::Node(node, prefix) => {
                    let cache = &*self.cache;
                    let mut res: Result<(), StoreError> = Ok(());
                    node.visit_slots(|h, slot| {
                        let mut p = prefix;
                        hc::apply_addr(&mut p, h, node.post_len as u32);
                        match slot {
                            PSlot::Post { pf_off, pr } => {
                                let mut key = p;
                                node.read_postfix_into(pf_off, &mut key);
                                let d = metric.point(center, &key);
                                let v = node.value_at::<V>(pr)?;
                                scratch.push(d, PItem::Entry(key, v));
                            }
                            PSlot::Sub { sr } => {
                                let sub = NodeView::<K>::fetch(
                                    cache,
                                    node.child_ref(sr)?,
                                    Some(node.post_len),
                                )?;
                                sub.read_infix_into(&mut p);
                                let span = num::low_mask(sub.post_len as u32 + 1);
                                let mut lo = p;
                                let mut hi = p;
                                for d in 0..K {
                                    lo[d] &= !span;
                                    hi[d] |= span;
                                }
                                let d = metric.to_box(center, &lo, &hi);
                                scratch.push(d, PItem::Node(sub, lo));
                            }
                        }
                        Ok(())
                    })
                    .unwrap_or_else(|e| res = Err(e));
                    res?;
                }
            }
        }
        Ok(())
    }

    /// Rebuilds a live [`PhTree`] from the artifact (full structural
    /// re-validation through the raw reassembly path). This is the
    /// "promote a packed artifact back to a writable tree" escape
    /// hatch; serving reads does not need it.
    pub fn to_tree(&self) -> Result<PhTree<V, K>, StoreError> {
        fn build<V: ValueCodec, const K: usize>(
            cache: &dyn PageCache,
            r: PackedRef,
            parent: Option<u8>,
        ) -> Result<RawNode<V, K>, StoreError> {
            let view = NodeView::<K>::fetch(cache, r, parent)?;
            let mut subs = Vec::with_capacity(view.n_subs as usize);
            for sr in 0..view.n_subs as usize {
                subs.push(build(cache, view.child_ref(sr)?, Some(view.post_len))?);
            }
            let mut values = Vec::with_capacity(view.n_values as usize);
            for pr in 0..view.n_values as usize {
                values.push(view.value_at::<V>(pr)?);
            }
            let (bits, nbits) = view.bits_raw();
            let words: Box<[u64]> = (0..nbits.div_ceil(64))
                .map(|w| phbits::bytes::read_bits(bits, w * 64, (nbits - w * 64).min(64) as u32))
                .collect();
            build_node(
                view.post_len,
                view.infix_len,
                view.hc,
                words,
                nbits,
                subs,
                values,
            )
            .map_err(|e| {
                Corruption::new(e.what())
                    .at_page(r.page as u64)
                    .at_offset(r.off as u64)
                    .into()
            })
        }
        let root = match self.root {
            None => None,
            Some(r) => Some(build::<V, K>(&*self.cache, r, None)?),
        };
        PhTree::from_raw_parts(root, self.len as usize)
            .map_err(|e| Corruption::new(e.what()).into())
    }
}

// -------------------------------------------------------------- queries

enum PCursor {
    /// Next LHC child index plus its dense post rank, tracked
    /// incrementally (the live `Cursor::Lhc`).
    Lhc { idx: usize, pr: usize },
    /// Next HC address, `None` when exhausted.
    Hc(Option<u64>),
}

struct PFrame<'c, const K: usize> {
    node: NodeView<'c, K>,
    prefix: [u64; K],
    m_l: u64,
    m_u: u64,
    inside: bool,
    cursor: PCursor,
}

/// Iterator over all packed entries within a query rectangle; see
/// [`PackedTree::query`]. Yields `Result` because every step reads
/// (and may fail to verify) page bytes.
pub struct PackedQuery<'t, V, const K: usize> {
    cache: &'t dyn PageCache,
    min: [u64; K],
    max: [u64; K],
    /// Fixed-size descent stack: no heap allocation per query.
    stack: [Option<PFrame<'t, K>>; MAX_DEPTH],
    depth: usize,
    pending: Option<StoreError>,
    done: bool,
    _v: PhantomData<fn() -> V>,
}

impl<'t, V, const K: usize> PackedQuery<'t, V, K> {
    /// Pushes a frame for `node` if its region intersects the query
    /// (the live `Query::push_node`).
    fn push_node(&mut self, node: NodeView<'t, K>, prefix: [u64; K]) {
        let span = num::low_mask(node.post_len as u32 + 1);
        let mut inside = true;
        for (d, &p) in prefix.iter().enumerate() {
            if p > self.max[d] || p | span < self.min[d] {
                return;
            }
            inside &= self.min[d] <= p && p | span <= self.max[d];
        }
        let (m_l, m_u) = if inside {
            (0, num::low_mask(K as u32))
        } else {
            hc::masks(&prefix, &self.min, &self.max, node.post_len as u32)
        };
        if m_l & !m_u != 0 {
            return;
        }
        let cursor = if node.hc {
            PCursor::Hc(Some(hc::first_addr(m_l, m_u)))
        } else {
            let idx = node.lhc_lower_bound(m_l);
            PCursor::Lhc {
                idx,
                pr: node.lhc_scan_state(idx),
            }
        };
        if self.depth == MAX_DEPTH {
            // Unreachable for depth-chained records; typed backstop.
            self.pending = Some(Corruption::new("descent deeper than key width").into());
            return;
        }
        self.stack[self.depth] = Some(PFrame {
            node,
            prefix,
            m_l,
            m_u,
            inside,
            cursor,
        });
        self.depth += 1;
    }

    /// Pushes a frame for a node known to lie inside the query.
    fn push_node_inside(&mut self, node: NodeView<'t, K>, prefix: [u64; K]) {
        let cursor = if node.hc {
            PCursor::Hc(Some(0))
        } else {
            PCursor::Lhc { idx: 0, pr: 0 }
        };
        if self.depth == MAX_DEPTH {
            self.pending = Some(Corruption::new("descent deeper than key width").into());
            return;
        }
        self.stack[self.depth] = Some(PFrame {
            node,
            prefix,
            m_l: 0,
            m_u: num::low_mask(K as u32),
            inside: true,
            cursor,
        });
        self.depth += 1;
    }
}

/// Advances `frame` to its next candidate slot (the live
/// `Query::next_candidate`).
fn next_candidate<const K: usize>(
    frame: &mut PFrame<'_, K>,
) -> Result<Option<(u64, PSlot)>, StoreError> {
    let node = &frame.node;
    match &mut frame.cursor {
        PCursor::Lhc { idx, pr } => {
            while *idx < node.n_children() {
                let (h, slot) = node.lhc_at_ranked(*idx, *pr);
                *idx += 1;
                if matches!(slot, PSlot::Post { .. }) {
                    *pr += 1;
                }
                if h > frame.m_u {
                    break;
                }
                if hc::addr_valid(h, frame.m_l, frame.m_u) {
                    return Ok(Some((h, slot)));
                }
            }
        }
        PCursor::Hc(next) => {
            while let Some(h) = *next {
                *next = hc::next_addr(h, frame.m_l, frame.m_u);
                if let Some(slot) = node.get_slot(h)? {
                    return Ok(Some((h, slot)));
                }
            }
        }
    }
    Ok(None)
}

impl<'t, V: ValueCodec, const K: usize> Iterator for PackedQuery<'t, V, K> {
    type Item = Result<([u64; K], V), StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.take() {
                self.done = true;
                return Some(Err(e));
            }
            if self.done || self.depth == 0 {
                return None;
            }
            let frame = self.stack[self.depth - 1].as_mut().expect("live frame");
            let (prefix, post_len, inside) = (frame.prefix, frame.node.post_len, frame.inside);
            let step = match next_candidate(frame) {
                Ok(s) => s,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match step {
                None => {
                    self.depth -= 1;
                    self.stack[self.depth] = None;
                }
                Some((h, PSlot::Post { pf_off, pr })) => {
                    let node = &self.stack[self.depth - 1]
                        .as_ref()
                        .expect("live frame")
                        .node;
                    let mut key = prefix;
                    hc::apply_addr(&mut key, h, post_len as u32);
                    node.read_postfix_into(pf_off, &mut key);
                    if inside || (0..K).all(|d| self.min[d] <= key[d] && key[d] <= self.max[d]) {
                        return match node.value_at::<V>(pr) {
                            Ok(v) => Some(Ok((key, v))),
                            Err(e) => {
                                self.done = true;
                                Some(Err(e))
                            }
                        };
                    }
                }
                Some((h, PSlot::Sub { sr })) => {
                    let node = &self.stack[self.depth - 1]
                        .as_ref()
                        .expect("live frame")
                        .node;
                    let mut child_prefix = prefix;
                    hc::apply_addr(&mut child_prefix, h, post_len as u32);
                    let sub = match node
                        .child_ref(sr)
                        .and_then(|r| NodeView::<K>::fetch(self.cache, r, Some(post_len)))
                    {
                        Ok(s) => s,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    };
                    sub.read_infix_into(&mut child_prefix);
                    let m = !num::low_mask(sub.post_len as u32 + 1);
                    for v in child_prefix.iter_mut() {
                        *v &= m;
                    }
                    if inside {
                        self.push_node_inside(sub, child_prefix);
                    } else {
                        self.push_node(sub, child_prefix);
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------------------ kNN

/// One kNN result from a packed tree (owns its decoded value).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedNeighbor<V, const K: usize> {
    /// The stored key.
    pub key: [u64; K],
    /// The stored value, decoded.
    pub value: V,
    /// Distance from the query point.
    pub dist: f64,
}

/// Total-order f64 for the priority queue (mirrors the live search's
/// tie-breaking exactly).
#[derive(PartialEq)]
struct D(f64);
impl Eq for D {}
impl PartialOrd for D {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

enum PItem<'c, V, const K: usize> {
    Node(NodeView<'c, K>, [u64; K]),
    Entry([u64; K], V),
    /// Arena slot already consumed by a pop.
    Taken,
}

/// Reusable state for [`PackedTree::knn_into`]: the best-first heap and
/// its item arena. Keep one per worker and searches stop allocating
/// once the capacity high-water mark is reached.
pub struct KnnScratch<'c, V, const K: usize> {
    heap: BinaryHeap<(Reverse<D>, usize)>,
    items: Vec<PItem<'c, V, K>>,
}

impl<'c, V, const K: usize> KnnScratch<'c, V, K> {
    /// An empty scratch.
    pub fn new() -> KnnScratch<'c, V, K> {
        KnnScratch {
            heap: BinaryHeap::new(),
            items: Vec::new(),
        }
    }

    fn push(&mut self, dist: f64, item: PItem<'c, V, K>) {
        self.items.push(item);
        self.heap.push((Reverse(D(dist)), self.items.len() - 1));
    }
}

impl<V, const K: usize> Default for KnnScratch<'_, V, K> {
    fn default() -> Self {
        Self::new()
    }
}
