//! Zero-copy node views: the read surface of `phtree::node::Node`
//! replayed over borrowed page bytes.
//!
//! A [`NodeView`] is parsed from a record with **O(1)** work: header
//! field checks, the exact bit-length formula for the claimed
//! representation, and the parent/child depth relation. It does *not*
//! re-run the O(children) scans of the live tree's `validate_local`
//! (address sortedness, kind popcounts): the per-page checksums already
//! vouch for byte integrity, and the packer wrote the record from an
//! already-validated live node. Every accessor that turns ranks into
//! array indices still bounds-checks and reports a typed corruption
//! instead of panicking, so even a checksum-colliding file degrades to
//! an error.
//!
//! Bit offsets handed around here (`pf_off`, infix offsets) are
//! relative to the record's bit string and therefore numerically
//! identical to the live node's `BitBuf` offsets — the layout formulas
//! are shared by construction.

use crate::cache::{PageBytes, PageCache};
use crate::format::{PackedRef, RecordHdr, PAGE_SIZE, REC_HDR, REF_BYTES};
use phbits::bytes;
use phstore::{Corruption, StoreError, ValueCodec};

/// Mirror of the live tree's HC dimension limit (`node::MAX_HC_K`): a
/// packed HC node beyond it cannot have come from a valid tree.
const MAX_HC_K: usize = 22;

/// An occupied hypercube slot, resolved to dense ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PSlot {
    /// Postfix entry: bit offset of its postfix record and its dense
    /// post rank (index into the value area).
    Post { pf_off: usize, pr: usize },
    /// Sub-node: dense sub rank (index into the child-ref array).
    Sub { sr: usize },
}

/// A parsed, validated node record over borrowed page bytes.
pub(crate) struct NodeView<'c, const K: usize> {
    bytes: PageBytes<'c>,
    /// Record start within `bytes`.
    base: usize,
    pub post_len: u8,
    pub infix_len: u8,
    pub hc: bool,
    uniform: bool,
    pub n_subs: u32,
    pub n_values: u32,
    values_len: u32,
    /// Byte offsets within `bytes`.
    bits_off: usize,
    values_off: usize,
    children_off: usize,
    /// Error context.
    page: u32,
}

impl<'c, const K: usize> NodeView<'c, K> {
    /// Fetches and parses the record at `r`. `parent_post_len` is
    /// `None` for the root (which must split at the top bit with no
    /// infix) and `Some(p)` for a child of a node with `post_len == p`
    /// (depth chaining: `post_len + infix_len + 1 == p`).
    pub fn fetch(
        cache: &'c dyn PageCache,
        r: PackedRef,
        parent_post_len: Option<u8>,
    ) -> Result<NodeView<'c, K>, StoreError> {
        let ctx = |what| {
            Corruption::new(what)
                .at_page(r.page as u64)
                .at_offset(r.off as u64)
        };
        let off = r.off as usize;
        if off + REC_HDR > PAGE_SIZE {
            return Err(ctx("record header out of page").into());
        }
        let page = cache.extent(r.page, 1)?;
        let hdr = RecordHdr::parse(page[off..off + REC_HDR].try_into().unwrap())
            .map_err(|c| c.at_page(r.page as u64).at_offset(r.off as u64))?;

        // O(1) structural validation, mirroring `Node::validate_local`'s
        // arithmetic checks (the scans are covered by checksums).
        if hdr.post_len >= 64 || hdr.post_len as u32 + hdr.infix_len as u32 >= 64 {
            return Err(ctx("split/infix bits exceed key width").into());
        }
        match parent_post_len {
            None => {
                if hdr.post_len != 63 || hdr.infix_len != 0 {
                    return Err(ctx("root must split at the top bit with no infix").into());
                }
            }
            Some(p) => {
                if hdr.post_len as u32 + hdr.infix_len as u32 + 1 != p as u32 {
                    return Err(ctx("child depth arithmetic broken").into());
                }
                if (hdr.n_subs as u64 + hdr.n_values as u64) < 2 {
                    return Err(ctx("sub-node with fewer than 2 children").into());
                }
            }
        }
        let ib = hdr.infix_len as u64 * K as u64;
        let pb = hdr.post_len as u64 * K as u64;
        let n = hdr.n_subs as u64 + hdr.n_values as u64;
        let want_bits = if hdr.hc {
            if K > MAX_HC_K {
                return Err(ctx("HC representation beyond dimension limit").into());
            }
            ib + (1u64 << K) * (2 + pb)
        } else {
            ib + n * (K as u64 + 1) + hdr.n_values as u64 * pb
        };
        if want_bits != hdr.bits_len as u64 {
            return Err(ctx("bit-string length mismatch").into());
        }
        if hdr.uniform && hdr.n_values > 0 && hdr.values_len % hdr.n_values != 0 {
            return Err(ctx("uniform value stride does not divide value bytes").into());
        }

        let rec_len = hdr.rec_len();
        let (bytes, base) = if off as u64 + rec_len <= PAGE_SIZE as u64 {
            (page, off)
        } else {
            if off != 0 {
                return Err(ctx("multi-page record not extent-aligned").into());
            }
            let count = rec_len.div_ceil(PAGE_SIZE as u64);
            if r.page as u64 - 1 + count > cache.data_pages() as u64 {
                return Err(ctx("record extent past end of data").into());
            }
            (cache.extent(r.page, count as u32)?, 0)
        };
        let rec_len = rec_len as usize;
        let bits_off = base + REC_HDR;
        let values_off = bits_off + (hdr.bits_len as usize).div_ceil(8);
        let children_off = values_off + hdr.values_len as usize;
        debug_assert_eq!(
            children_off + hdr.n_subs as usize * REF_BYTES,
            base + rec_len
        );
        debug_assert!(base + rec_len <= bytes.len());
        Ok(NodeView {
            bytes,
            base,
            post_len: hdr.post_len,
            infix_len: hdr.infix_len,
            hc: hdr.hc,
            uniform: hdr.uniform,
            n_subs: hdr.n_subs,
            n_values: hdr.n_values,
            values_len: hdr.values_len,
            bits_off,
            values_off,
            children_off,
            page: r.page,
        })
    }

    #[inline]
    fn err(&self, what: &'static str) -> StoreError {
        Corruption::new(what)
            .at_page(self.page as u64)
            .at_offset((self.base % PAGE_SIZE) as u64)
            .into()
    }

    /// The record's bit string (same bit offsets as the live `BitBuf`).
    #[inline]
    fn bits(&self) -> &[u8] {
        &self.bytes[self.bits_off..self.values_off]
    }

    #[inline]
    pub fn n_children(&self) -> usize {
        self.n_subs as usize + self.n_values as usize
    }

    #[inline]
    fn infix_bits(&self) -> usize {
        self.infix_len as usize * K
    }

    #[inline]
    pub fn post_bits(&self) -> usize {
        self.post_len as usize * K
    }

    // ------------------------------------------------------ infix/postfix

    #[inline]
    pub fn infix_matches(&self, key: &[u64; K]) -> bool {
        let il = self.infix_len as u32;
        il == 0 || bytes::eq_key(self.bits(), 0, il, self.post_len as u32 + 1, key)
    }

    #[inline]
    pub fn read_infix_into(&self, key: &mut [u64; K]) {
        let il = self.infix_len as u32;
        if il != 0 {
            bytes::read_key_into(self.bits(), 0, il, self.post_len as u32 + 1, key);
        }
    }

    #[inline]
    pub fn postfix_matches(&self, pf_off: usize, key: &[u64; K]) -> bool {
        self.post_len == 0 || bytes::eq_key(self.bits(), pf_off, self.post_len as u32, 0, key)
    }

    #[inline]
    pub fn read_postfix_into(&self, pf_off: usize, key: &mut [u64; K]) {
        if self.post_len != 0 {
            bytes::read_key_into(self.bits(), pf_off, self.post_len as u32, 0, key);
        }
    }

    // --------------------------------------------------------- HC layout

    #[inline]
    fn hc_kind(&self, h: u64) -> u64 {
        bytes::read_bits(self.bits(), self.infix_bits() + 2 * h as usize, 2)
    }

    #[inline]
    fn hc_pf_base(&self) -> usize {
        self.infix_bits() + 2 * (1usize << K)
    }

    /// `(post_rank, sub_rank)` below slot `h` (word-chunked popcounts,
    /// identical to the live node's `hc_ranks`).
    fn hc_ranks(&self, h: u64) -> (usize, usize) {
        let bits = self.bits();
        let base = self.infix_bits();
        let nbits = 2 * h as usize;
        let (mut posts, mut subs, mut done) = (0usize, 0usize, 0usize);
        while done < nbits {
            let chunk = (nbits - done).min(64) as u32;
            let w = bytes::read_bits(bits, base + done, chunk);
            posts += (w & 0x5555_5555_5555_5555).count_ones() as usize;
            subs += (w & 0xAAAA_AAAA_AAAA_AAAA).count_ones() as usize;
            done += chunk as usize;
        }
        (posts, subs)
    }

    // -------------------------------------------------------- LHC layout

    #[inline]
    fn lhc_addr_at(&self, j: usize) -> u64 {
        bytes::read_bits(self.bits(), self.infix_bits() + j * K, K as u32)
    }

    #[inline]
    fn lhc_is_sub(&self, j: usize) -> bool {
        let n = self.n_children();
        bytes::read_bits(self.bits(), self.infix_bits() + n * K + j, 1) != 0
    }

    #[inline]
    pub fn lhc_pf_base(&self) -> usize {
        self.infix_bits() + self.n_children() * (K + 1)
    }

    fn lhc_post_rank(&self, j: usize) -> usize {
        let n = self.n_children();
        j - bytes::count_ones(self.bits(), self.infix_bits() + n * K, j)
    }

    /// Binary search for address `h` (same contract as the live
    /// `lhc_search`).
    fn lhc_search(&self, h: u64) -> Result<usize, usize> {
        use std::cmp::Ordering;
        let bits = self.bits();
        let ib = self.infix_bits();
        let key = [h];
        let (mut lo, mut hi) = (0usize, self.n_children());
        while lo < hi {
            let mid = (lo + hi) / 2;
            match bytes::cmp_range(bits, ib + mid * K, &key, K) {
                Ordering::Less => lo = mid + 1,
                Ordering::Equal => return Ok(mid),
                Ordering::Greater => hi = mid,
            }
        }
        Err(lo)
    }

    /// Index of the first LHC child with address `>= h`.
    pub fn lhc_lower_bound(&self, h: u64) -> usize {
        match self.lhc_search(h) {
            Ok(j) | Err(j) => j,
        }
    }

    /// Initial dense post rank for an incremental LHC scan from `j`.
    pub fn lhc_scan_state(&self, j: usize) -> usize {
        self.lhc_post_rank(j)
    }

    /// LHC child `j` with its dense post rank `pr` tracked by the
    /// caller (see the live `lhc_at_ranked`).
    pub fn lhc_at_ranked(&self, j: usize, pr: usize) -> (u64, PSlot) {
        let addr = self.lhc_addr_at(j);
        let slot = if self.lhc_is_sub(j) {
            PSlot::Sub { sr: j - pr }
        } else {
            PSlot::Post {
                pf_off: self.lhc_pf_base() + pr * self.post_bits(),
                pr,
            }
        };
        (addr, slot)
    }

    // -------------------------------------------------------- slot lookup

    /// Looks up the slot for address `h` (the packed `get_slot`).
    pub fn get_slot(&self, h: u64) -> Result<Option<PSlot>, StoreError> {
        if self.hc {
            match self.hc_kind(h) {
                0 => Ok(None),
                1 => {
                    let (pr, _) = self.hc_ranks(h);
                    Ok(Some(PSlot::Post {
                        pf_off: self.hc_pf_base() + h as usize * self.post_bits(),
                        pr,
                    }))
                }
                2 => {
                    let (_, sr) = self.hc_ranks(h);
                    Ok(Some(PSlot::Sub { sr }))
                }
                _ => Err(self.err("invalid HC slot kind")),
            }
        } else {
            match self.lhc_search(h) {
                Ok(j) => Ok(Some(self.lhc_at_ranked(j, self.lhc_post_rank(j)).1)),
                Err(_) => Ok(None),
            }
        }
    }

    /// Visits every occupied slot in address order (the packed
    /// `iter_slots`), stopping at the first callback error.
    pub fn visit_slots(
        &self,
        mut f: impl FnMut(u64, PSlot) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        if self.hc {
            let (mut pr, mut sr) = (0usize, 0usize);
            let pf_base = self.hc_pf_base();
            let pb = self.post_bits();
            for h in 0..(1u64 << K) {
                match self.hc_kind(h) {
                    0 => {}
                    1 => {
                        f(
                            h,
                            PSlot::Post {
                                pf_off: pf_base + h as usize * pb,
                                pr,
                            },
                        )?;
                        pr += 1;
                    }
                    2 => {
                        f(h, PSlot::Sub { sr })?;
                        sr += 1;
                    }
                    _ => return Err(self.err("invalid HC slot kind")),
                }
            }
        } else {
            let mut pr = 0usize;
            let pf_base = self.lhc_pf_base();
            let pb = self.post_bits();
            for j in 0..self.n_children() {
                let h = self.lhc_addr_at(j);
                if self.lhc_is_sub(j) {
                    f(h, PSlot::Sub { sr: j - pr })?;
                } else {
                    f(
                        h,
                        PSlot::Post {
                            pf_off: pf_base + pr * pb,
                            pr,
                        },
                    )?;
                    pr += 1;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------- children & values

    /// Reference of the sub-node with dense sub rank `sr`.
    pub fn child_ref(&self, sr: usize) -> Result<PackedRef, StoreError> {
        if sr >= self.n_subs as usize {
            return Err(self.err("sub rank out of range"));
        }
        let at = self.children_off + sr * REF_BYTES;
        let r = PackedRef::decode(self.bytes[at..at + REF_BYTES].try_into().unwrap());
        if r.page == 0 || r.off as usize >= PAGE_SIZE {
            return Err(self.err("child reference out of range"));
        }
        Ok(r)
    }

    /// Decodes the value with dense post rank `pr`. O(1) for uniform
    /// (fixed-width) value encodings, O(pr) skip-decode otherwise.
    pub fn value_at<V: ValueCodec>(&self, pr: usize) -> Result<V, StoreError> {
        if pr >= self.n_values as usize {
            return Err(self.err("post rank out of range"));
        }
        let region = &self.bytes[self.values_off..self.children_off];
        if self.uniform {
            let stride = self.values_len as usize / self.n_values as usize;
            let (v, used) =
                V::decode(&region[pr * stride..]).ok_or_else(|| self.err("undecodable value"))?;
            if used > stride {
                return Err(self.err("value overruns its uniform stride"));
            }
            Ok(v)
        } else {
            let mut at = 0usize;
            for _ in 0..pr {
                let (_, used) =
                    V::decode(&region[at..]).ok_or_else(|| self.err("undecodable value"))?;
                at += used;
            }
            let (v, _) = V::decode(&region[at..]).ok_or_else(|| self.err("undecodable value"))?;
            Ok(v)
        }
    }

    /// Raw bit-string bytes and length in bits (for unpacking back into
    /// a live tree).
    pub fn bits_raw(&self) -> (&[u8], usize) {
        let nbits = if self.hc {
            self.infix_bits() + (1usize << K) * (2 + self.post_bits())
        } else {
            self.infix_bits()
                + self.n_children() * (K + 1)
                + self.n_values as usize * self.post_bits()
        };
        (self.bits(), nbits)
    }
}
