//! Page caches: how the packed reader gets at verified page bytes.
//!
//! The reader walks node records over *borrowed* bytes; everything it
//! needs from a backend is [`PageCache::extent`] — "give me `count`
//! consecutive, checksum-verified data pages". Two implementations:
//!
//! * [`SliceCache`] — the whole data region resident in one buffer,
//!   every page verified once at open. Extents are plain subslices;
//!   reads never copy and never allocate. This is the
//!   artifact-fits-in-RAM path (the moral equivalent of `mmap`, without
//!   needing OS-specific mapping: the file is read once, sequentially).
//! * [`LruCache`] — a pinned-LRU cache over a `Read`/`Seek`-style
//!   [`VfsFile`] for artifacts larger than RAM. Pages are fetched and
//!   verified on demand into `Arc<[u8]>` entries; a cache hit is one
//!   hash probe plus an `Arc` clone (no allocation), and entries handed
//!   out stay alive through their `Arc` even after eviction — readers
//!   never observe a page disappearing under them (automatic pinning).
//!
//! Both count *page touches* (pages requested, hits included): the
//! locality probe the `fig_pack` benchmark reports as touches/query.

use crate::format::PAGE_SIZE;
use phstore::vfs::VfsFile;
use phstore::{fnv1a, Corruption, StoreError};
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Verified bytes of a page extent, either borrowed from a resident
/// buffer or shared out of a cache entry. Derefs to `[u8]` of exactly
/// `count * PAGE_SIZE` bytes.
#[derive(Debug)]
pub enum PageBytes<'c> {
    /// Subslice of a resident buffer.
    Borrowed(&'c [u8]),
    /// Shared cache entry (kept alive by this handle even if evicted).
    Cached {
        /// The cached extent (may be longer than the request).
        buf: Arc<[u8]>,
        /// Requested length in bytes.
        len: usize,
    },
}

impl Deref for PageBytes<'_> {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            PageBytes::Borrowed(s) => s,
            PageBytes::Cached { buf, len } => &buf[..*len],
        }
    }
}

/// Counters common to both cache kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Pages requested over the cache's lifetime (hits included).
    pub touches: u64,
    /// Extent requests that had to read from the file.
    pub misses: u64,
    /// Pages currently held in memory.
    pub resident_pages: u64,
}

/// How `PackedTree::open` materialises the artifact's data pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Read and verify the whole data region at open ([`SliceCache`]):
    /// fastest reads, memory proportional to the artifact.
    Resident,
    /// Demand-page through a pinned LRU ([`LruCache`]) with the given
    /// resident-page budget: bounded memory, first touch pays an I/O.
    Lru {
        /// Resident-page budget (minimum 1).
        pages: usize,
    },
}

/// Backend supplying checksum-verified data pages to the reader.
///
/// Page indices are absolute (page 0 is the superblock; data pages are
/// `1..=data_pages`). Implementations must verify the per-page checksum
/// before handing bytes out — the walkers' O(1) structural checks rely
/// on byte integrity being someone else's problem.
pub trait PageCache: Send + Sync {
    /// Number of data pages in the artifact.
    fn data_pages(&self) -> u32;

    /// Verified bytes of `count` consecutive data pages starting at
    /// absolute page `first`.
    fn extent(&self, first: u32, count: u32) -> Result<PageBytes<'_>, StoreError>;

    /// Current counters.
    fn stats(&self) -> CacheStats;
}

/// Rejects extents outside `1..=data_pages` (shared by both caches).
fn check_extent(data_pages: u32, first: u32, count: u32) -> Result<(), StoreError> {
    if first == 0 || count == 0 || (first as u64 - 1) + count as u64 > data_pages as u64 {
        return Err(Corruption::new("page extent out of range")
            .at_page(first as u64)
            .into());
    }
    Ok(())
}

// ------------------------------------------------------------- resident

/// Whole data region resident in memory, verified once at open.
pub struct SliceCache {
    data: Box<[u8]>,
    data_pages: u32,
    touches: AtomicU64,
}

impl SliceCache {
    /// Wraps an already-verified data region (`data_pages * PAGE_SIZE`
    /// bytes). Checksums must have been checked by the caller (the open
    /// path verifies every page against the table before building this).
    pub(crate) fn new(data: Box<[u8]>, data_pages: u32) -> SliceCache {
        debug_assert_eq!(data.len(), data_pages as usize * PAGE_SIZE);
        SliceCache {
            data,
            data_pages,
            touches: AtomicU64::new(0),
        }
    }
}

impl PageCache for SliceCache {
    fn data_pages(&self) -> u32 {
        self.data_pages
    }

    fn extent(&self, first: u32, count: u32) -> Result<PageBytes<'_>, StoreError> {
        check_extent(self.data_pages, first, count)?;
        self.touches.fetch_add(count as u64, Relaxed);
        phtrace::add_pages(count as u64);
        let start = (first as usize - 1) * PAGE_SIZE;
        let len = count as usize * PAGE_SIZE;
        Ok(PageBytes::Borrowed(&self.data[start..start + len]))
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            touches: self.touches.load(Relaxed),
            misses: 0,
            resident_pages: self.data_pages as u64,
        }
    }
}

// ------------------------------------------------------------------ LRU

struct Entry {
    buf: Arc<[u8]>,
    pages: u32,
    stamp: u64,
}

struct LruState {
    map: HashMap<u32, Entry>,
    tick: u64,
    resident: u64,
}

/// Demand-paged cache over a file handle, for artifacts larger than the
/// memory budget. Extents are keyed by their first page; eviction is
/// oldest-stamp-first but entries stay alive through outstanding
/// [`PageBytes`] handles (`Arc` pinning), so eviction can never
/// invalidate bytes a walker is reading.
pub struct LruCache {
    file: Mutex<Box<dyn VfsFile>>,
    data_pages: u32,
    /// Per-data-page FNV-1a sums (index 0 = page 1), verified at open
    /// against the table CRC.
    sums: Box<[u64]>,
    /// Resident-page budget. At least one entry is always kept, so a
    /// single extent larger than the budget still works.
    cap_pages: u64,
    state: Mutex<LruState>,
    touches: AtomicU64,
    misses: AtomicU64,
}

impl LruCache {
    pub(crate) fn new(
        file: Box<dyn VfsFile>,
        data_pages: u32,
        sums: Box<[u64]>,
        cap_pages: usize,
    ) -> LruCache {
        debug_assert_eq!(sums.len(), data_pages as usize);
        LruCache {
            file: Mutex::new(file),
            data_pages,
            sums,
            cap_pages: cap_pages.max(1) as u64,
            state: Mutex::new(LruState {
                map: HashMap::new(),
                tick: 0,
                resident: 0,
            }),
            touches: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PageCache for LruCache {
    fn data_pages(&self) -> u32 {
        self.data_pages
    }

    fn extent(&self, first: u32, count: u32) -> Result<PageBytes<'_>, StoreError> {
        check_extent(self.data_pages, first, count)?;
        self.touches.fetch_add(count as u64, Relaxed);
        phtrace::add_pages(count as u64);
        let len = count as usize * PAGE_SIZE;
        let mut state = self.state.lock().expect("lru state poisoned");
        state.tick += 1;
        let tick = state.tick;
        if let Some(e) = state.map.get_mut(&first) {
            if e.pages >= count {
                e.stamp = tick;
                return Ok(PageBytes::Cached {
                    buf: Arc::clone(&e.buf),
                    len,
                });
            }
        }
        // Miss (or a cached extent too short): read and verify. The
        // state lock is held across the read so concurrent readers do
        // not duplicate I/O for the same extent; the walkers are
        // read-only so there is no lock-ordering hazard. The fetch is
        // the packed-page cost a slow-query breakdown attributes.
        self.misses.fetch_add(1, Relaxed);
        let _p = phtrace::span(phtrace::Phase::Page);
        let mut buf = vec![0u8; len];
        {
            let mut file = self.file.lock().expect("lru file poisoned");
            file.read_exact_at(&mut buf, first as u64 * PAGE_SIZE as u64)?;
        }
        for i in 0..count {
            let s = &buf[i as usize * PAGE_SIZE..][..PAGE_SIZE];
            if fnv1a(s) != self.sums[(first + i) as usize - 1] {
                return Err(Corruption::new("page checksum mismatch")
                    .at_page((first + i) as u64)
                    .into());
            }
        }
        let buf: Arc<[u8]> = buf.into();
        if let Some(old) = state.map.insert(
            first,
            Entry {
                buf: Arc::clone(&buf),
                pages: count,
                stamp: tick,
            },
        ) {
            state.resident -= old.pages as u64;
        }
        state.resident += count as u64;
        // Evict oldest-first down to budget, never the entry just
        // inserted. The scan is O(entries); budgets are small enough
        // (hundreds of entries) that a heap would not pay for itself.
        while state.resident > self.cap_pages && state.map.len() > 1 {
            let victim = state
                .map
                .iter()
                .filter(|(k, _)| **k != first)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = state.map.remove(&k).expect("victim vanished");
                    state.resident -= e.pages as u64;
                }
                None => break,
            }
        }
        Ok(PageBytes::Cached { buf, len })
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            touches: self.touches.load(Relaxed),
            misses: self.misses.load(Relaxed),
            resident_pages: self.state.lock().expect("lru state poisoned").resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phstore::vfs::{MemVfs, Vfs};
    use std::path::Path;

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    /// Builds a fake 4-data-page file (superblock page left zero) and
    /// returns (vfs, sums).
    fn fake_file(vfs: &MemVfs, path: &Path) -> Box<[u64]> {
        let mut f = vfs.create(path).unwrap();
        let mut sums = Vec::new();
        f.write_all_at(&page_of(0), 0).unwrap();
        for i in 0..4u8 {
            let p = page_of(i + 1);
            sums.push(fnv1a(&p));
            f.write_all_at(&p, (i as u64 + 1) * PAGE_SIZE as u64)
                .unwrap();
        }
        sums.into_boxed_slice()
    }

    #[test]
    fn slice_cache_serves_subslices_and_counts() {
        let mut data = Vec::new();
        for i in 0..3u8 {
            data.extend_from_slice(&page_of(i));
        }
        let c = SliceCache::new(data.into_boxed_slice(), 3);
        let e = c.extent(2, 2).unwrap();
        assert_eq!(e.len(), 2 * PAGE_SIZE);
        assert_eq!(e[0], 1);
        assert_eq!(e[PAGE_SIZE], 2);
        assert!(c.extent(0, 1).is_err());
        assert!(c.extent(3, 2).is_err());
        assert!(c.extent(1, 0).is_err());
        assert_eq!(c.stats().touches, 2);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn lru_cache_hits_misses_and_evicts() {
        let vfs = MemVfs::new();
        let path = Path::new("/m/a.phk");
        let sums = fake_file(&vfs, path);
        let c = LruCache::new(vfs.open(path).unwrap(), 4, sums, 2);
        // Miss, then hit.
        let a = c.extent(1, 1).unwrap();
        assert_eq!(a[0], 1);
        let b = c.extent(1, 1).unwrap();
        assert_eq!(b[0], 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().touches, 2);
        // Fill past the 2-page budget; the oldest entry is evicted but
        // `a` (outstanding Arc) still reads correctly.
        c.extent(2, 1).unwrap();
        c.extent(3, 1).unwrap();
        assert!(c.stats().resident_pages <= 2);
        assert_eq!(a[0], 1);
        // Page 1 was evicted: touching it again is a miss.
        let m0 = c.stats().misses;
        c.extent(1, 1).unwrap();
        assert_eq!(c.stats().misses, m0 + 1);
    }

    #[test]
    fn lru_multi_page_extent_replaces_short_entry() {
        let vfs = MemVfs::new();
        let path = Path::new("/m/b.phk");
        let sums = fake_file(&vfs, path);
        let c = LruCache::new(vfs.open(path).unwrap(), 4, sums, 8);
        c.extent(2, 1).unwrap();
        let e = c.extent(2, 3).unwrap();
        assert_eq!(e.len(), 3 * PAGE_SIZE);
        assert_eq!(e[0], 2);
        assert_eq!(e[2 * PAGE_SIZE], 4);
        // A shorter request on the same key is now a hit on the longer
        // entry.
        let m0 = c.stats().misses;
        let s = c.extent(2, 2).unwrap();
        assert_eq!(s.len(), 2 * PAGE_SIZE);
        assert_eq!(c.stats().misses, m0);
    }

    #[test]
    fn lru_detects_corrupt_page() {
        let vfs = MemVfs::new();
        let path = Path::new("/m/c.phk");
        let sums = fake_file(&vfs, path);
        assert!(vfs.corrupt(path, 2 * PAGE_SIZE as u64 + 17, 0xFF));
        let c = LruCache::new(vfs.open(path).unwrap(), 4, sums, 8);
        assert!(c.extent(1, 1).is_ok());
        let err = c.extent(2, 1).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(c) if c.page == Some(2)));
    }
}
