//! Packed read-only PH-tree artifacts: build once, serve forever.
//!
//! `phpack` serialises a bulk-loaded [`phtree::PhTree`] into a paged,
//! checksummed, immutable file and answers `get` / window `query` /
//! `knn` directly over the file's bytes — no deserialisation step, no
//! per-node allocation, no write machinery on the read path.
//!
//! The format (see [`format`] for the byte-exact spec):
//!
//! * fixed 4 KiB pages; page 0 is a checksummed superblock reusing the
//!   record store's shared codec ([`phstore::superblock`]);
//! * node records laid out in **descent order** (parent before
//!   children), addressed by `(page, offset)` pairs instead of
//!   pointers;
//! * an out-of-line FNV-1a checksum table pinning every data page, the
//!   table itself pinned by a CRC in the metadata — every byte of the
//!   file is covered by exactly one checksum, so any single corrupted
//!   byte surfaces as a typed [`phstore::StoreError::Corrupt`].
//!
//! Reading goes through a tiny [`cache::PageCache`] trait with two
//! backends: [`cache::SliceCache`] (whole artifact resident, verified
//! once at open) and [`cache::LruCache`] (demand paging with a pinned
//! LRU, for artifacts larger than RAM). [`tree::PackedTree`] replays
//! the live tree's exact traversal algorithms over borrowed page
//! bytes, so results — including iteration order and kNN tie-breaking
//! — are byte-identical to the live tree's.
//!
//! Typical round trip:
//!
//! ```
//! use phpack::{CacheMode, Packable, PackedTree};
//! use phtree::PhTree;
//!
//! let dir = std::env::temp_dir().join("phpack-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("tree.phk");
//!
//! let mut tree: PhTree<u64, 3> = PhTree::new();
//! tree.insert([1, 2, 3], 42);
//! tree.pack_to(&path).unwrap();
//!
//! let packed: PackedTree<u64, 3> = PackedTree::open(&path, CacheMode::Resident).unwrap();
//! assert_eq!(packed.get(&[1, 2, 3]).unwrap(), Some(42));
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod format;
pub mod tree;
mod view;
pub mod writer;

pub use cache::{CacheMode, CacheStats, LruCache, PageBytes, PageCache, SliceCache};
pub use format::{Meta, PackedRef};
pub use tree::{KnnScratch, PackedNeighbor, PackedQuery, PackedTree};
pub use writer::{pack_tree, pack_tree_in, PackStats, Packable};
