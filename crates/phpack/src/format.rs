//! Byte-exact definition of the packed artifact format (`PHPACK01`).
//!
//! A packed file is a sequence of [`PAGE_SIZE`] pages:
//!
//! ```text
//! page 0              superblock (shared phstore codec, PACK_MAGIC)
//! pages 1 ..= D       data pages: node records in descent order
//! pages D+1 ..        checksum table: one FNV-1a u64 LE per data page,
//!                     zero-padded to whole pages
//! ```
//!
//! The superblock metadata blob ([`Meta`]) is a fixed 42-byte record;
//! its integrity is covered by the superblock checksum. Each data
//! page's checksum lives *out of line* in the table so record payloads
//! stay contiguous across page boundaries (zero-copy walks need
//! unbroken byte runs); the table region — padding included — is
//! covered by `table_crc` in the metadata. Every byte of the file is
//! therefore pinned by exactly one checksum.
//!
//! A node record is addressed by a [`PackedRef`] (absolute page index +
//! in-page byte offset) and laid out as:
//!
//! ```text
//! offset  size        field
//! 0       1           post_len
//! 1       1           infix_len
//! 2       1           flags (bit 0 = HC repr, bit 1 = uniform values)
//! 3       1           reserved, 0
//! 4       4           n_subs, u32 LE
//! 8       4           n_values, u32 LE
//! 12      4           bits_len, u32 LE (bit-string length in bits)
//! 16      4           values_len, u32 LE (encoded value bytes)
//! 20      4           reserved, 0
//! 24      ...         bit string, ceil(bits_len/8) bytes (BitBuf words
//!                     little-endian, truncated — phbits::bytes order)
//! ...     values_len  values, ValueCodec, hypercube-address order
//! ...     6*n_subs    child refs (page u32 LE + off u16 LE), addr order
//! ```
//!
//! Placement rule: a record either fits entirely within one page or
//! starts at in-page offset 0 and occupies a run of consecutive pages
//! (an *extent*). Headers therefore never straddle a page boundary, and
//! a reader can size the extent after one single-page fetch.

use phstore::{Corruption, StoreError};

pub use phstore::superblock::{PACK_MAGIC, PAGE_SIZE};

/// Format version stored in the superblock metadata.
pub const VERSION: u16 = 1;

/// Node record header size in bytes.
pub const REC_HDR: usize = 24;

/// Serialised size of a child reference.
pub const REF_BYTES: usize = 6;

/// Serialised size of the superblock metadata blob.
pub const META_LEN: usize = 42;

/// Record flag: node is in HC (full hypercube) representation.
pub const FLAG_HC: u8 = 1 << 0;

/// Record flag: all encoded values have the same byte length, so value
/// `pr` starts at `pr * (values_len / n_values)` — O(1) indexing.
pub const FLAG_UNIFORM: u8 = 1 << 1;

/// Address of a node record: absolute page index (page 1 is the first
/// data page; 0 is the superblock and never holds a record) plus the
/// byte offset of the record header within that page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedRef {
    /// Absolute page index of the record's first (or only) page.
    pub page: u32,
    /// Byte offset of the record header within the page.
    pub off: u16,
}

impl PackedRef {
    /// Serialises the reference (page u32 LE, off u16 LE).
    pub fn encode(&self) -> [u8; REF_BYTES] {
        let mut out = [0u8; REF_BYTES];
        out[..4].copy_from_slice(&self.page.to_le_bytes());
        out[4..].copy_from_slice(&self.off.to_le_bytes());
        out
    }

    /// Deserialises a reference from exactly [`REF_BYTES`] bytes.
    pub fn decode(buf: &[u8; REF_BYTES]) -> PackedRef {
        PackedRef {
            page: u32::from_le_bytes(buf[..4].try_into().unwrap()),
            off: u16::from_le_bytes(buf[4..].try_into().unwrap()),
        }
    }
}

/// Superblock metadata of a packed artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Dimension count the artifact was packed with.
    pub k: u16,
    /// Number of entries in the tree.
    pub len: u64,
    /// Number of data pages `D`.
    pub data_pages: u64,
    /// Bytes of the data region actually holding records
    /// (`<= D * PAGE_SIZE`; the remainder of the last page is zero).
    pub data_bytes: u64,
    /// Root record, absent iff `len == 0` (encoded as page 0).
    pub root: Option<PackedRef>,
    /// FNV-1a over the *whole* checksum-table region, padding included.
    pub table_crc: u64,
}

impl Meta {
    /// Serialises the metadata blob (fixed [`META_LEN`] bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(META_LEN);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.data_pages.to_le_bytes());
        out.extend_from_slice(&self.data_bytes.to_le_bytes());
        let root = self.root.unwrap_or(PackedRef { page: 0, off: 0 });
        out.extend_from_slice(&root.encode());
        out.extend_from_slice(&self.table_crc.to_le_bytes());
        debug_assert_eq!(out.len(), META_LEN);
        out
    }

    /// Parses and sanity-checks a metadata blob. The caller still
    /// checks `k` against its compile-time `K` and the page accounting
    /// against the real file length.
    pub fn decode(buf: &[u8]) -> Result<Meta, StoreError> {
        if buf.len() != META_LEN {
            return Err(Corruption::new("packed metadata has wrong length")
                .at_page(0)
                .at_offset(buf.len() as u64)
                .into());
        }
        let version = u16::from_le_bytes(buf[0..2].try_into().unwrap());
        if version != VERSION {
            return Err(Corruption::new("unsupported packed format version")
                .at_page(0)
                .into());
        }
        let k = u16::from_le_bytes(buf[2..4].try_into().unwrap());
        let len = u64::from_le_bytes(buf[4..12].try_into().unwrap());
        let data_pages = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let data_bytes = u64::from_le_bytes(buf[20..28].try_into().unwrap());
        let root = PackedRef::decode(buf[28..34].try_into().unwrap());
        let table_crc = u64::from_le_bytes(buf[34..42].try_into().unwrap());
        let root = if root.page == 0 { None } else { Some(root) };
        // Internal consistency; file-level accounting is the caller's.
        if data_bytes > data_pages.saturating_mul(PAGE_SIZE as u64) {
            return Err(Corruption::new("data bytes exceed data pages")
                .at_page(0)
                .into());
        }
        match (len, root) {
            (0, Some(_)) => {
                return Err(Corruption::new("empty artifact with a root record")
                    .at_page(0)
                    .into())
            }
            (n, None) if n > 0 => {
                return Err(Corruption::new("non-empty artifact without a root record")
                    .at_page(0)
                    .into())
            }
            _ => {}
        }
        if let Some(r) = root {
            if (r.page as u64) > data_pages || (r.off as usize) >= PAGE_SIZE {
                return Err(Corruption::new("root record reference out of range")
                    .at_page(r.page as u64)
                    .into());
            }
        }
        Ok(Meta {
            k,
            len,
            data_pages,
            data_bytes,
            root,
            table_crc,
        })
    }
}

/// Parsed node record header (the fixed [`REC_HDR`] bytes).
#[derive(Debug, Clone, Copy)]
pub struct RecordHdr {
    /// Bits per dimension below this node's split.
    pub post_len: u8,
    /// Bits per dimension of the node's infix.
    pub infix_len: u8,
    /// Whether the node uses HC (full hypercube) representation.
    pub hc: bool,
    /// Whether all encoded values share one byte length.
    pub uniform: bool,
    /// Number of sub-node children.
    pub n_subs: u32,
    /// Number of postfix entries (values).
    pub n_values: u32,
    /// Bit-string length in bits.
    pub bits_len: u32,
    /// Encoded value bytes.
    pub values_len: u32,
}

impl RecordHdr {
    /// Serialises the header into `out[..REC_HDR]`.
    pub fn write(&self, out: &mut [u8]) {
        out[0] = self.post_len;
        out[1] = self.infix_len;
        out[2] = ((self.hc as u8) * FLAG_HC) | ((self.uniform as u8) * FLAG_UNIFORM);
        out[3] = 0;
        out[4..8].copy_from_slice(&self.n_subs.to_le_bytes());
        out[8..12].copy_from_slice(&self.n_values.to_le_bytes());
        out[12..16].copy_from_slice(&self.bits_len.to_le_bytes());
        out[16..20].copy_from_slice(&self.values_len.to_le_bytes());
        out[20..24].fill(0);
    }

    /// Parses a header from exactly [`REC_HDR`] bytes. Only field-level
    /// checks happen here; structural validation (bit-length formula,
    /// depth chaining) is the node view's job, where `K` is known.
    pub fn parse(buf: &[u8; REC_HDR]) -> Result<RecordHdr, Corruption> {
        let flags = buf[2];
        if flags & !(FLAG_HC | FLAG_UNIFORM) != 0 || buf[3] != 0 || buf[20..24] != [0u8; 4] {
            return Err(Corruption::new("unknown record flags"));
        }
        Ok(RecordHdr {
            post_len: buf[0],
            infix_len: buf[1],
            hc: flags & FLAG_HC != 0,
            uniform: flags & FLAG_UNIFORM != 0,
            n_subs: u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            n_values: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            bits_len: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
            values_len: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
        })
    }

    /// Total record length in bytes (header + bit string + values +
    /// child references). `u64` so hostile headers cannot overflow.
    pub fn rec_len(&self) -> u64 {
        REC_HDR as u64
            + (self.bits_len as u64).div_ceil(8)
            + self.values_len as u64
            + self.n_subs as u64 * REF_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        let m = Meta {
            k: 8,
            len: 12345,
            data_pages: 77,
            data_bytes: 77 * 4096 - 100,
            root: Some(PackedRef { page: 1, off: 0 }),
            table_crc: 0xDEAD_BEEF,
        };
        let enc = m.encode();
        assert_eq!(enc.len(), META_LEN);
        assert_eq!(Meta::decode(&enc).unwrap(), m);
    }

    #[test]
    fn empty_meta_roundtrip() {
        let m = Meta {
            k: 3,
            len: 0,
            data_pages: 0,
            data_bytes: 0,
            root: None,
            table_crc: 7,
        };
        assert_eq!(Meta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn inconsistent_meta_rejected() {
        // Non-empty without a root.
        let mut m = Meta {
            k: 2,
            len: 5,
            data_pages: 1,
            data_bytes: 100,
            root: Some(PackedRef { page: 1, off: 0 }),
            table_crc: 0,
        };
        let mut enc = m.encode();
        enc[28..34].fill(0); // root -> none
        assert!(Meta::decode(&enc).is_err());
        // Empty with a root.
        m.len = 0;
        assert!(Meta::decode(&m.encode()).is_err());
        // Data bytes overflow the page count.
        m.len = 5;
        m.data_bytes = 2 * 4096;
        assert!(Meta::decode(&m.encode()).is_err());
    }

    #[test]
    fn record_header_roundtrip() {
        let h = RecordHdr {
            post_len: 17,
            infix_len: 3,
            hc: true,
            uniform: true,
            n_subs: 9,
            n_values: 1000,
            bits_len: 65537,
            values_len: 8000,
        };
        let mut buf = [0u8; REC_HDR];
        h.write(&mut buf);
        let back = RecordHdr::parse(&buf).unwrap();
        assert_eq!(back.post_len, 17);
        assert_eq!(back.infix_len, 3);
        assert!(back.hc && back.uniform);
        assert_eq!(back.n_subs, 9);
        assert_eq!(back.n_values, 1000);
        assert_eq!(back.bits_len, 65537);
        assert_eq!(back.values_len, 8000);
        assert_eq!(back.rec_len(), 24 + 65537u64.div_ceil(8) + 8000 + 9 * 6);
    }

    #[test]
    fn unknown_flags_rejected() {
        let h = RecordHdr {
            post_len: 0,
            infix_len: 0,
            hc: false,
            uniform: false,
            n_subs: 0,
            n_values: 0,
            bits_len: 0,
            values_len: 0,
        };
        let mut buf = [0u8; REC_HDR];
        h.write(&mut buf);
        buf[2] = 0x80;
        assert!(RecordHdr::parse(&buf).is_err());
        buf[2] = 0;
        buf[21] = 1;
        assert!(RecordHdr::parse(&buf).is_err());
    }
}
