//! Packing a live [`PhTree`] into a read-only artifact.
//!
//! The packer walks the tree once, top-down, emitting each node's
//! record *before* its children (descent order: a point query's page
//! accesses run mostly forward through the file, and the hot top of the
//! tree clusters into the first pages). Layout is two-phase per node —
//! reserve the record's span at the cursor, recurse into the children
//! to learn their [`PackedRef`]s, then write the record into the
//! reserved span — which keeps the whole pack a single pass.
//!
//! The writer is structure-blind: it copies each node's packed bit
//! string verbatim (the addresses, kinds and postfixes are already
//! inside it) and serialises only the parts that cannot be bits —
//! values through [`ValueCodec`], child links as page/offset pairs.
//! Everything it emits therefore inherits the live tree's validated
//! invariants.
//!
//! The file is assembled in memory and published atomically: staging
//! file, fsync, rename, directory fsync — the same crash discipline as
//! the record store's snapshot save.

use crate::format::{Meta, PackedRef, RecordHdr, PACK_MAGIC, PAGE_SIZE, REC_HDR, REF_BYTES};
use phstore::vfs::{StdVfs, Vfs};
use phstore::{fnv1a, superblock, Corruption, StoreError, ValueCodec};
use phtree::raw::NodeRef;
use phtree::PhTree;
use std::path::Path;

/// What a pack produced (sizes for the bytes/entry accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// Entries in the packed tree.
    pub entries: u64,
    /// Node records written.
    pub nodes: u64,
    /// Bytes of record payload (before page padding).
    pub data_bytes: u64,
    /// Data pages.
    pub data_pages: u64,
    /// Total file size in bytes (superblock + data + checksum table).
    pub file_bytes: u64,
}

struct Packer {
    data: Vec<u8>,
    nodes: u64,
}

impl Packer {
    /// Applies the placement rule: a record fits entirely within the
    /// current page's remainder, or starts on a fresh page (records
    /// longer than a page always start at in-page offset 0 and occupy a
    /// contiguous extent). Returns the record's start position.
    fn place(&mut self, len: usize) -> usize {
        let pos = self.data.len();
        let in_page = pos % PAGE_SIZE;
        let start = if in_page != 0 && in_page + len > PAGE_SIZE {
            pos + (PAGE_SIZE - in_page)
        } else {
            pos
        };
        self.data.resize(start + len, 0);
        start
    }

    fn write_node<V: ValueCodec, const K: usize>(
        &mut self,
        node: &NodeRef<'_, V, K>,
    ) -> Result<PackedRef, StoreError> {
        // Serialise values first: the record length depends on them.
        let mut vals = Vec::new();
        let mut uniform = true;
        let mut first_len: Option<usize> = None;
        for v in node.values() {
            let before = vals.len();
            v.encode(&mut vals);
            let l = vals.len() - before;
            match first_len {
                None => first_len = Some(l),
                Some(f) if f != l => uniform = false,
                _ => {}
            }
        }
        let bits_len = node.bits_len();
        let bits_bytes = bits_len.div_ceil(8);
        let n_subs = node.subs().len();
        let n_values = node.values().len();
        if bits_len > u32::MAX as usize
            || vals.len() > u32::MAX as usize
            || n_subs > u32::MAX as usize
            || n_values > u32::MAX as usize
        {
            return Err(Corruption::new("node too large for packed format").into());
        }
        let rec_len = REC_HDR + bits_bytes + vals.len() + n_subs * REF_BYTES;
        let start = self.place(rec_len);
        self.nodes += 1;

        // Children land after the parent (descent order); their refs
        // fill the reserved span afterwards.
        let mut refs = Vec::with_capacity(n_subs);
        for sub in node.subs() {
            refs.push(self.write_node(&sub)?);
        }

        let hdr = RecordHdr {
            post_len: node.post_len(),
            infix_len: node.infix_len(),
            hc: node.is_hc(),
            uniform,
            n_subs: n_subs as u32,
            n_values: n_values as u32,
            bits_len: bits_len as u32,
            values_len: vals.len() as u32,
        };
        let rec = &mut self.data[start..start + rec_len];
        hdr.write(rec);
        // Bit string: BitBuf words little-endian, truncated to whole
        // bytes — exactly what phbits::bytes re-reads in place.
        let mut at = REC_HDR;
        for w in node.bits_words() {
            let b = w.to_le_bytes();
            let take = (bits_bytes + REC_HDR - at).min(8);
            rec[at..at + take].copy_from_slice(&b[..take]);
            at += take;
            if at == REC_HDR + bits_bytes {
                break;
            }
        }
        let at = REC_HDR + bits_bytes;
        rec[at..at + vals.len()].copy_from_slice(&vals);
        let mut at = at + vals.len();
        for r in &refs {
            rec[at..at + REF_BYTES].copy_from_slice(&r.encode());
            at += REF_BYTES;
        }
        debug_assert_eq!(at, rec_len);
        let page = 1 + (start / PAGE_SIZE);
        if page > u32::MAX as usize {
            return Err(Corruption::new("tree too large for packed format").into());
        }
        Ok(PackedRef {
            page: page as u32,
            off: (start % PAGE_SIZE) as u16,
        })
    }
}

/// Packs `tree` into the artifact at `path` on any [`Vfs`], atomically
/// (staging file + fsync + rename + directory fsync).
pub fn pack_tree_in<V: ValueCodec, const K: usize>(
    tree: &PhTree<V, K>,
    vfs: &dyn Vfs,
    path: &Path,
) -> Result<PackStats, StoreError> {
    let mut p = Packer {
        data: Vec::new(),
        nodes: 0,
    };
    let root = match tree.root_raw() {
        Some(r) => Some(p.write_node(&r)?),
        None => None,
    };
    let data_bytes = p.data.len() as u64;
    let data_pages = data_bytes.div_ceil(PAGE_SIZE as u64);
    p.data.resize(data_pages as usize * PAGE_SIZE, 0);

    // Out-of-line checksum table: one FNV-1a per data page, the whole
    // region (padding included) pinned by table_crc in the metadata.
    let mut table = Vec::with_capacity(data_pages as usize * 8);
    for chunk in p.data.chunks(PAGE_SIZE) {
        table.extend_from_slice(&fnv1a(chunk).to_le_bytes());
    }
    let table_pages = (table.len() as u64).div_ceil(PAGE_SIZE as u64);
    table.resize(table_pages as usize * PAGE_SIZE, 0);
    let table_crc = fnv1a(&table);

    let n_pages = 1 + data_pages + table_pages;
    let meta = Meta {
        k: K as u16,
        len: tree.len() as u64,
        data_pages,
        data_bytes,
        root,
        table_crc,
    };
    let sb = superblock::encode(PACK_MAGIC, n_pages, &meta.encode());

    let tmp = path.with_extension("phk.tmp");
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all_at(&sb, 0)?;
        f.write_all_at(&p.data, PAGE_SIZE as u64)?;
        f.write_all_at(&table, (1 + data_pages) * PAGE_SIZE as u64)?;
        f.sync_all()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        vfs.sync_dir(dir)?;
    }
    Ok(PackStats {
        entries: tree.len() as u64,
        nodes: p.nodes,
        data_bytes,
        data_pages,
        file_bytes: n_pages * PAGE_SIZE as u64,
    })
}

/// [`pack_tree_in`] on the real filesystem.
pub fn pack_tree<V: ValueCodec, const K: usize>(
    tree: &PhTree<V, K>,
    path: &Path,
) -> Result<PackStats, StoreError> {
    pack_tree_in(tree, &StdVfs, path)
}

/// Extension trait putting `pack_to` on [`PhTree`] itself.
pub trait Packable {
    /// Packs this tree into a read-only artifact at `path`.
    fn pack_to(&self, path: &Path) -> Result<PackStats, StoreError>;

    /// Like [`Packable::pack_to`] on any [`Vfs`].
    fn pack_to_in(&self, vfs: &dyn Vfs, path: &Path) -> Result<PackStats, StoreError>;
}

impl<V: ValueCodec, const K: usize> Packable for PhTree<V, K> {
    fn pack_to(&self, path: &Path) -> Result<PackStats, StoreError> {
        pack_tree(self, path)
    }

    fn pack_to_in(&self, vfs: &dyn Vfs, path: &Path) -> Result<PackStats, StoreError> {
        pack_tree_in(self, vfs, path)
    }
}
