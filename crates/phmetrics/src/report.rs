//! Periodic background flushing of registry snapshots.

use crate::Registry;
use std::io::Write;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread that flushes a [`Registry`] on a fixed interval.
///
/// The flush callback receives the registry and runs off the serving
/// threads, so exposition cost (string building, I/O) never lands on
/// an operation's latency path. Dropping the reporter performs one
/// final flush and joins the thread.
///
/// ```
/// use phmetrics::{MetricsReporter, Registry};
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
///
/// let r = Registry::new();
/// r.counter("demo_total").inc();
/// let seen = Arc::new(Mutex::new(Vec::new()));
/// let sink = Arc::clone(&seen);
/// let reporter = MetricsReporter::spawn(r, Duration::from_millis(5), move |reg| {
///     sink.lock().unwrap().push(reg.snapshot().counter("demo_total").unwrap());
/// });
/// std::thread::sleep(Duration::from_millis(30));
/// drop(reporter); // final flush + join
/// assert!(!seen.lock().unwrap().is_empty());
/// ```
pub struct MetricsReporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsReporter {
    /// Spawns a reporter calling `flush` every `interval` (and once
    /// more on shutdown).
    pub fn spawn<F>(registry: Registry, interval: Duration, mut flush: F) -> MetricsReporter
    where
        F: FnMut(&Registry) + Send + 'static,
    {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("phmetrics-reporter".into())
            .spawn(move || {
                let (lock, cv) = &*stop2;
                let mut stopped = lock.lock().unwrap();
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, timeout) = cv.wait_timeout(stopped, interval).unwrap();
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        drop(stopped);
                        flush(&registry);
                        stopped = lock.lock().unwrap();
                    }
                }
                drop(stopped);
                flush(&registry); // final flush so shutdown state is visible
            })
            .expect("spawn metrics reporter thread");
        MetricsReporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Spawns a reporter writing the Prometheus text exposition to
    /// `writer` every `interval`.
    pub fn to_writer<W: Write + Send + 'static>(
        registry: Registry,
        interval: Duration,
        mut writer: W,
    ) -> MetricsReporter {
        Self::spawn(registry, interval, move |r| {
            let _ = writer.write_all(r.render_prometheus().as_bytes());
            let _ = writer.flush();
        })
    }

    /// Stops the background thread (equivalent to dropping).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reporter_flushes_periodically_and_on_drop() {
        let r = Registry::new();
        r.counter("t_total").add(7);
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let rep = MetricsReporter::spawn(r.clone(), Duration::from_millis(5), move |reg| {
            assert_eq!(reg.snapshot().counter("t_total"), Some(7));
            n2.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(40));
        let before_drop = n.load(Ordering::SeqCst);
        assert!(before_drop >= 1, "periodic flushes must have run");
        drop(rep);
        assert!(
            n.load(Ordering::SeqCst) > before_drop,
            "final flush on drop"
        );
    }

    #[test]
    fn to_writer_emits_exposition() {
        struct Buf(Arc<Mutex<String>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0
                    .lock()
                    .unwrap()
                    .push_str(std::str::from_utf8(b).unwrap());
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let r = Registry::new();
        r.counter("w_total").inc();
        let out = Arc::new(Mutex::new(String::new()));
        let rep = MetricsReporter::to_writer(r, Duration::from_secs(60), Buf(Arc::clone(&out)));
        rep.stop(); // final flush runs even if the interval never elapsed
        assert!(out.lock().unwrap().contains("w_total 1"));
    }
}
