//! Fixed-bucket log₂ latency histogram.
//!
//! Recording is **one relaxed atomic add**: the value's bit length
//! picks one of [`NUM_BUCKETS`] power-of-two buckets, so bucket `b`
//! (for `b ≥ 1`) holds all samples `v` with `2^(b-1) ≤ v < 2^b`;
//! bucket 0 holds exactly `v = 0`. The top bucket is open-ended.
//! There is no sum, min or per-sample storage — quantiles (p50, p90,
//! p99) and the max are *estimated* from the bucket counts, each
//! reported as the inclusive upper bound of the bucket the rank falls
//! in. The estimate is therefore exact to within one power-of-two
//! bucket, which is the resolution contract the concurrent proptests
//! pin down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets. Bucket 0 is the zero bucket; bucket
/// `b ≥ 1` covers `[2^(b-1), 2^b)`; the last bucket is open-ended
/// (everything ≥ 2^(NUM_BUCKETS-2), ≈ 73 minutes in nanoseconds).
pub const NUM_BUCKETS: usize = 43;

/// The bucket a value lands in: its bit length, clamped to the open
/// top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the open top
/// bucket). Bucket 0 (the zero bucket) has upper bound 0.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

pub(crate) struct HistCells {
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistCells {
    pub(crate) fn new() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A lock-free latency/size histogram handle.
///
/// Handles are cheap to clone and share one set of atomic buckets. A
/// handle from a disabled registry (or [`Histogram::noop`]) skips the
/// atomic entirely — recording against it is a branch on a null
/// `Option`.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistCells>>,
}

/// An in-flight latency measurement started by [`Histogram::start`].
///
/// Holds the start instant only when the histogram is live, so the
/// disabled path never touches the clock.
#[must_use = "finish the timer with Histogram::finish to record the sample"]
pub struct OpTimer(Option<Instant>);

impl OpTimer {
    /// A timer that records nothing when finished.
    pub fn noop() -> OpTimer {
        OpTimer(None)
    }
}

impl Histogram {
    /// A detached handle that records nothing.
    pub fn noop() -> Histogram {
        Histogram { cell: None }
    }

    /// Whether samples recorded here are actually stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one sample (one relaxed atomic add).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(c) = &self.cell {
            c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a latency measurement; reads the clock only when the
    /// histogram is live.
    #[inline]
    pub fn start(&self) -> OpTimer {
        OpTimer(self.cell.is_some().then(Instant::now))
    }

    /// Ends a measurement from [`Histogram::start`], recording the
    /// elapsed nanoseconds.
    #[inline]
    pub fn finish(&self, timer: OpTimer) {
        if let Some(t0) = timer.0 {
            self.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Estimated quantile `q ∈ [0, 1]` of the samples recorded so far
    /// — one bucket-count read plus [`HistSnapshot::quantile`]'s rank
    /// walk, exact to within one power-of-two bucket. Returns 0 for a
    /// disabled or empty histogram. This is the live-handle
    /// convenience the slow-query threshold autotuner uses (trailing
    /// p99 × 4); callers needing several quantiles from one consistent
    /// count read should [`Histogram::load`] once instead.
    pub fn quantile(&self, q: f64) -> u64 {
        self.load().quantile(q)
    }

    /// Estimated quantiles for each `q` in `qs`, all computed from
    /// **one** consistent bucket read (unlike repeated
    /// [`Histogram::quantile`] calls, which each re-read the counts).
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        self.load().percentiles(qs)
    }

    /// Reads the current bucket counts (relaxed; counts only grow).
    pub fn load(&self) -> HistSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        if let Some(c) = &self.cell {
            for (out, b) in counts.iter_mut().zip(c.buckets.iter()) {
                *out = b.load(Ordering::Relaxed);
            }
        }
        HistSnapshot { counts }
    }
}

/// A point-in-time copy of a histogram's bucket counts, with quantile
/// estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub counts: [u64; NUM_BUCKETS],
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated quantile `q ∈ [0, 1]`: the inclusive upper bound of
    /// the bucket holding the rank-`⌈q·n⌉` sample. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Estimated quantiles for each `q` in `qs` against this one
    /// consistent snapshot.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Adds `other`'s bucket counts into `self` — merging histograms
    /// of the same unit (e.g. per-op latency series into one
    /// all-traffic distribution) is exact because the buckets are
    /// fixed and aligned.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Estimated maximum: the upper bound of the highest non-empty
    /// bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    /// Pins the off-by-one at exact powers of two: `2^k` has bit
    /// length `k+1`, so it lands in bucket `k+1` (whose range is
    /// `[2^k, 2^(k+1))`), **not** in bucket `k` — bucket `k`'s
    /// inclusive upper bound is `2^k - 1`. A naive `floor(log2(v))`
    /// bucketer would put `2^k` one bucket lower and under-report
    /// every quantile that falls on a power of two by up to 2×.
    /// Above the clamp (`2^k` for `k ≥ NUM_BUCKETS - 2`) everything
    /// collapses into the open top bucket.
    #[test]
    fn power_of_two_boundaries_are_exclusive_below() {
        for k in 0..NUM_BUCKETS - 2 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k} must open bucket {}", k + 1);
            // The 1-off audit: 2^k is strictly above bucket k's bound…
            assert!(v > bucket_upper_bound(k));
            // …and exactly covered by bucket k+1's inclusive bound.
            assert!(v <= bucket_upper_bound(k + 1));
            // 2^k - 1 stays in bucket k (bit length k).
            assert_eq!(bucket_index(v - 1), k);
        }
        // The clamp region: every power of two at or past the top
        // bucket's lower bound lands in the open top bucket.
        for k in NUM_BUCKETS - 2..64 {
            assert_eq!(bucket_index(1u64 << k), NUM_BUCKETS - 1);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        // A histogram holding exactly one power-of-two sample reports
        // every quantile as that sample's bucket upper bound.
        let h = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), (1u64 << 21) - 1);
        assert_eq!(h.quantile(1.0), (1u64 << 21) - 1);
    }

    #[test]
    fn live_handle_quantile_and_percentiles() {
        let h = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let expect_low = bucket_upper_bound(bucket_index(100));
        let expect_hi = bucket_upper_bound(bucket_index(1_000_000));
        assert_eq!(h.quantile(0.50), expect_low);
        assert_eq!(h.quantile(0.99), expect_low);
        assert_eq!(
            h.percentiles(&[0.5, 0.99, 1.0]),
            vec![expect_low, expect_low, expect_hi]
        );
        // Disabled handles answer 0 without touching anything.
        assert_eq!(Histogram::noop().quantile(0.99), 0);
        assert_eq!(Histogram::noop().percentiles(&[0.5, 0.9]), vec![0, 0]);
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let a = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        let b = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        for _ in 0..10 {
            a.record(100);
        }
        b.record(1 << 30);
        let mut m = a.load();
        m.merge(&b.load());
        assert_eq!(m.count(), 11);
        assert_eq!(m.quantile(1.0), bucket_upper_bound(bucket_index(1 << 30)));
        assert_eq!(m.p50(), bucket_upper_bound(bucket_index(100)));
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let h = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        // 90 samples of ~100ns, 9 of ~10_000ns, 1 of ~1_000_000ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let s = h.load();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), bucket_upper_bound(bucket_index(100)));
        assert_eq!(s.p90(), bucket_upper_bound(bucket_index(100)));
        assert_eq!(s.p99(), bucket_upper_bound(bucket_index(10_000)));
        assert_eq!(s.max(), bucket_upper_bound(bucket_index(1_000_000)));
    }

    #[test]
    fn noop_records_nothing_and_skips_clock() {
        let h = Histogram::noop();
        h.record(42);
        let t = h.start();
        h.finish(t);
        assert_eq!(h.load().count(), 0);
        assert!(!h.is_enabled());
    }
}
