//! Fixed-bucket log₂ latency histogram.
//!
//! Recording is **one relaxed atomic add**: the value's bit length
//! picks one of [`NUM_BUCKETS`] power-of-two buckets, so bucket `b`
//! (for `b ≥ 1`) holds all samples `v` with `2^(b-1) ≤ v < 2^b`;
//! bucket 0 holds exactly `v = 0`. The top bucket is open-ended.
//! There is no sum, min or per-sample storage — quantiles (p50, p90,
//! p99) and the max are *estimated* from the bucket counts, each
//! reported as the inclusive upper bound of the bucket the rank falls
//! in. The estimate is therefore exact to within one power-of-two
//! bucket, which is the resolution contract the concurrent proptests
//! pin down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of histogram buckets. Bucket 0 is the zero bucket; bucket
/// `b ≥ 1` covers `[2^(b-1), 2^b)`; the last bucket is open-ended
/// (everything ≥ 2^(NUM_BUCKETS-2), ≈ 73 minutes in nanoseconds).
pub const NUM_BUCKETS: usize = 43;

/// The bucket a value lands in: its bit length, clamped to the open
/// top bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the open top
/// bucket). Bucket 0 (the zero bucket) has upper bound 0.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

pub(crate) struct HistCells {
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistCells {
    pub(crate) fn new() -> Self {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A lock-free latency/size histogram handle.
///
/// Handles are cheap to clone and share one set of atomic buckets. A
/// handle from a disabled registry (or [`Histogram::noop`]) skips the
/// atomic entirely — recording against it is a branch on a null
/// `Option`.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistCells>>,
}

/// An in-flight latency measurement started by [`Histogram::start`].
///
/// Holds the start instant only when the histogram is live, so the
/// disabled path never touches the clock.
#[must_use = "finish the timer with Histogram::finish to record the sample"]
pub struct OpTimer(Option<Instant>);

impl OpTimer {
    /// A timer that records nothing when finished.
    pub fn noop() -> OpTimer {
        OpTimer(None)
    }
}

impl Histogram {
    /// A detached handle that records nothing.
    pub fn noop() -> Histogram {
        Histogram { cell: None }
    }

    /// Whether samples recorded here are actually stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one sample (one relaxed atomic add).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(c) = &self.cell {
            c.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a latency measurement; reads the clock only when the
    /// histogram is live.
    #[inline]
    pub fn start(&self) -> OpTimer {
        OpTimer(self.cell.is_some().then(Instant::now))
    }

    /// Ends a measurement from [`Histogram::start`], recording the
    /// elapsed nanoseconds.
    #[inline]
    pub fn finish(&self, timer: OpTimer) {
        if let Some(t0) = timer.0 {
            self.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Reads the current bucket counts (relaxed; counts only grow).
    pub fn load(&self) -> HistSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        if let Some(c) = &self.cell {
            for (out, b) in counts.iter_mut().zip(c.buckets.iter()) {
                *out = b.load(Ordering::Relaxed);
            }
        }
        HistSnapshot { counts }
    }
}

/// A point-in-time copy of a histogram's bucket counts, with quantile
/// estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub counts: [u64; NUM_BUCKETS],
}

impl HistSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated quantile `q ∈ [0, 1]`: the inclusive upper bound of
    /// the bucket holding the rank-`⌈q·n⌉` sample. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Estimated maximum: the upper bound of the highest non-empty
    /// bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, bucket_upper_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn quantiles_from_known_distribution() {
        let h = Histogram {
            cell: Some(std::sync::Arc::new(HistCells::new())),
        };
        // 90 samples of ~100ns, 9 of ~10_000ns, 1 of ~1_000_000ns.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let s = h.load();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), bucket_upper_bound(bucket_index(100)));
        assert_eq!(s.p90(), bucket_upper_bound(bucket_index(100)));
        assert_eq!(s.p99(), bucket_upper_bound(bucket_index(10_000)));
        assert_eq!(s.max(), bucket_upper_bound(bucket_index(1_000_000)));
    }

    #[test]
    fn noop_records_nothing_and_skips_clock() {
        let h = Histogram::noop();
        h.record(42);
        let t = h.start();
        h.finish(t);
        assert_eq!(h.load().count(), 0);
        assert!(!h.is_enabled());
    }
}
