//! # phmetrics — zero-overhead runtime metrics for the PH-tree stack
//!
//! A std-only, dependency-free, lock-free metrics core. The serving
//! and durability layers (`phshard`, `phstore`) and the tree itself
//! (via `phtree`'s `telemetry` sink, feature `metrics`) record into
//! handles issued by a [`Registry`]:
//!
//! * [`Counter`] — monotone `u64`, one relaxed `fetch_add` per record.
//! * [`Gauge`] — signed level with a built-in high-water mark (queue
//!   depths, entry counts).
//! * [`Histogram`] — fixed-bucket log₂ histogram; recording is one
//!   relaxed atomic add, p50/p90/p99/max are estimated from bucket
//!   counts to within one power-of-two bucket.
//!
//! **The disabled path is the design center**: a [`Registry::disabled`]
//! registry hands out handles whose record calls compile to a branch on
//! a null `Option` — no atomics, no clock reads ([`Histogram::start`]
//! skips `Instant::now`), no allocation. Instrumented code therefore
//! records unconditionally and lets the handle decide, instead of
//! sprinkling `if metrics_enabled` everywhere.
//!
//! Reading happens out-of-band: [`Registry::snapshot`] collects every
//! instrument (plus per-counter rates since the previous snapshot) and
//! [`Registry::render_prometheus`] emits the standard text exposition.
//! A [`MetricsReporter`] can flush either on a background thread.
//!
//! ```
//! use phmetrics::Registry;
//!
//! let r = Registry::new();
//! let ops = r.counter("myapp_ops_total");
//! let lat = r.histogram("myapp_op_latency_ns");
//! let t = lat.start();
//! ops.inc();
//! lat.finish(t);
//! let snap = r.snapshot();
//! assert_eq!(snap.counter("myapp_ops_total"), Some(1));
//! assert!(r.render_prometheus().contains("myapp_ops_total 1"));
//! ```

#![warn(missing_docs)]

mod hist;
mod report;

pub use hist::{bucket_index, bucket_upper_bound, HistSnapshot, Histogram, OpTimer, NUM_BUCKETS};
pub use report::MetricsReporter;

use hist::HistCells;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Instrument handles
// ---------------------------------------------------------------------

/// A monotonically increasing counter handle.
///
/// Cheap to clone; all clones share one atomic cell. Handles from a
/// disabled registry are no-ops (a branch, no atomic).
#[derive(Clone)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached handle that records nothing.
    pub fn noop() -> Counter {
        Counter { cell: None }
    }

    /// Whether increments are actually stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (one relaxed atomic add).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.cell {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

struct GaugeCell {
    value: AtomicI64,
    high: AtomicI64,
}

/// A signed level gauge with a built-in high-water mark.
///
/// Every mutation also raises the high-water mark if exceeded, so a
/// sampled reader (snapshots run out-of-band) still sees the true peak
/// — the instrument queue depths and fan-out widths need.
#[derive(Clone)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// A detached handle that records nothing.
    pub fn noop() -> Gauge {
        Gauge { cell: None }
    }

    /// Whether updates are actually stored.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(c) = &self.cell {
            c.value.store(v, Ordering::Relaxed);
            c.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(c) = &self.cell {
            let now = c.value.fetch_add(d, Ordering::Relaxed) + d;
            c.high.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Current level (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }

    /// Highest level ever set/reached (0 for a no-op handle).
    pub fn high_water(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.high.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct RateState {
    prev: HashMap<String, u64>,
    at: Option<Instant>,
}

struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCells>>>,
    rate: Mutex<RateState>,
    created: Instant,
}

/// A named collection of instruments.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and is
/// meant to happen once at wiring time; the returned handles are
/// lock-free. Requesting the same name twice returns handles sharing
/// one cell. Instrument names follow Prometheus conventions and may
/// carry inline labels: `phshard_ops_total{op="insert"}`.
///
/// Registries are cheaply clonable (all clones share the instruments)
/// and `Send + Sync`.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Registry {
        Registry {
            inner: Some(Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
                rate: Mutex::new(RateState {
                    prev: HashMap::new(),
                    at: None,
                }),
                created: Instant::now(),
            })),
        }
    }

    /// A disabled registry: every handle it issues is a no-op, and
    /// snapshots/expositions are empty. This is the zero-overhead
    /// configuration instrumented code ships with by default.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// Whether this registry stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|i| {
                Arc::clone(
                    i.counters
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(AtomicU64::new(0))),
                )
            }),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|i| {
                Arc::clone(
                    i.gauges
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| {
                            Arc::new(GaugeCell {
                                value: AtomicI64::new(0),
                                high: AtomicI64::new(0),
                            })
                        }),
                )
            }),
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|i| {
                Arc::clone(
                    i.hists
                        .lock()
                        .unwrap()
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistCells::new())),
                )
            }),
        }
    }

    /// Collects a consistent point-in-time view of every instrument.
    ///
    /// "Consistent" per instrument: each value is one relaxed atomic
    /// load, and since counter handles only add, successive snapshots
    /// of the same counter never go backwards (the monotonicity the
    /// snapshot tests pin). Counter rates are computed against the
    /// previous `snapshot()` call on any clone of this registry.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let now = Instant::now();
        let counters: Vec<CounterSnap> = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| CounterSnap {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
                rate: None,
            })
            .collect();
        let mut counters = counters;
        {
            let mut rs = inner.rate.lock().unwrap();
            let dt = rs
                .at
                .map(|t| now.saturating_duration_since(t).as_secs_f64());
            for c in counters.iter_mut() {
                if let (Some(dt), Some(&prev)) = (dt, rs.prev.get(&c.name)) {
                    if dt > 0.0 {
                        c.rate = Some((c.value.saturating_sub(prev)) as f64 / dt);
                    }
                }
            }
            rs.prev = counters.iter().map(|c| (c.name.clone(), c.value)).collect();
            rs.at = Some(now);
        }
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| GaugeSnap {
                name: name.clone(),
                value: g.value.load(Ordering::Relaxed),
                high_water: g.high.load(Ordering::Relaxed),
            })
            .collect();
        let hists = inner
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| {
                let mut counts = [0u64; NUM_BUCKETS];
                for (out, b) in counts.iter_mut().zip(h.buckets.iter()) {
                    *out = b.load(Ordering::Relaxed);
                }
                (name.clone(), HistSnapshot { counts })
            })
            .collect();
        Snapshot {
            uptime: now.saturating_duration_since(inner.created),
            counters,
            gauges,
            hists,
        }
    }

    /// Renders the Prometheus text exposition format (counters,
    /// gauges — with a `_peak` series for the high-water mark — and
    /// cumulative-`le` histogram buckets). Deterministic order.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            let line = format!("# TYPE {base} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for c in &snap.counters {
            let (base, labels) = split_name(&c.name);
            type_line(&mut out, base, "counter");
            let _ = writeln!(out, "{base}{labels} {}", c.value);
        }
        for g in &snap.gauges {
            let (base, labels) = split_name(&g.name);
            type_line(&mut out, base, "gauge");
            let _ = writeln!(out, "{base}{labels} {}", g.value);
            let _ = writeln!(out, "{base}_peak{labels} {}", g.high_water);
        }
        for (name, h) in &snap.hists {
            let (base, labels) = split_name(name);
            type_line(&mut out, base, "histogram");
            let mut cum = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                cum += c;
                // Keep the exposition compact: elide empty buckets, but
                // always emit the final (+Inf) cumulative bucket.
                if c == 0 && i != NUM_BUCKETS - 1 {
                    continue;
                }
                let le = if i == NUM_BUCKETS - 1 {
                    "+Inf".to_string()
                } else {
                    bucket_upper_bound(i).to_string()
                };
                let _ = writeln!(out, "{base}_bucket{} {cum}", with_label(labels, "le", &le));
            }
            let _ = writeln!(out, "{base}_count{labels} {}", h.count());
        }
        out
    }
}

/// Splits an instrument name into base name and `{...}` label block.
fn split_name(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Appends `key="value"` to a (possibly empty) label block.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!("{},{key}=\"{value}\"}}", &labels[..labels.len() - 1])
    }
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One counter in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct CounterSnap {
    /// Instrument name (with inline labels, if any).
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
    /// Increase per second since the previous snapshot (None on the
    /// first snapshot).
    pub rate: Option<f64>,
}

/// One gauge in a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct GaugeSnap {
    /// Instrument name (with inline labels, if any).
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
    /// Highest level ever reached.
    pub high_water: i64,
}

/// A point-in-time view of every instrument in a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Time since the registry was created.
    pub uptime: Duration,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnap>,
    /// All histograms, sorted by name.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl Snapshot {
    /// Value of the counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnap> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_all_noop() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x_total");
        let g = r.gauge("x_depth");
        let h = r.histogram("x_ns");
        c.inc();
        g.set(5);
        h.record(123);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.hists.is_empty());
        assert_eq!(r.render_prometheus(), "");
    }

    #[test]
    fn same_name_shares_cell() {
        let r = Registry::new();
        let a = r.counter("shared_total");
        let b = r.counter("shared_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.snapshot().counter("shared_total"), Some(7));
    }

    #[test]
    fn gauge_tracks_high_water() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(3);
        g.set(9);
        g.set(2);
        g.add(-2);
        assert_eq!(g.get(), 0);
        assert_eq!(g.high_water(), 9);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("depth").unwrap().value, 0);
        assert_eq!(snap.gauge("depth").unwrap().high_water, 9);
    }

    #[test]
    fn snapshot_rates() {
        let r = Registry::new();
        let c = r.counter("r_total");
        c.add(10);
        let s1 = r.snapshot();
        assert!(s1.counters[0].rate.is_none(), "no rate on first snapshot");
        c.add(30);
        std::thread::sleep(Duration::from_millis(20));
        let s2 = r.snapshot();
        let rate = s2.counters[0].rate.expect("second snapshot has a rate");
        assert!(rate > 0.0, "rate {rate} must be positive");
        assert_eq!(s2.counters[0].value, 40);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let r = Registry::new();
        r.counter("app_ops_total{op=\"get\"}").add(2);
        r.counter("app_ops_total{op=\"insert\"}").add(5);
        r.gauge("app_queue_depth").set(4);
        r.histogram("app_lat_ns{op=\"get\"}").record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE app_ops_total counter"));
        assert!(text.contains("app_ops_total{op=\"get\"} 2"));
        assert!(text.contains("app_ops_total{op=\"insert\"} 5"));
        assert!(text.contains("# TYPE app_queue_depth gauge"));
        assert!(text.contains("app_queue_depth 4"));
        assert!(text.contains("app_queue_depth_peak 4"));
        assert!(text.contains("# TYPE app_lat_ns histogram"));
        assert!(text.contains("app_lat_ns_bucket{op=\"get\",le=\"127\"} 1"));
        assert!(text.contains("app_lat_ns_bucket{op=\"get\",le=\"+Inf\"} 1"));
        assert!(text.contains("app_lat_ns_count{op=\"get\"} 1"));
        // TYPE line appears once per base name even with two series.
        assert_eq!(text.matches("# TYPE app_ops_total counter").count(), 1);
    }
}
