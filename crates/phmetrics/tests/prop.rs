//! Concurrency properties of the lock-free instruments.
//!
//! * Histogram recording under N threads loses no samples: the total
//!   count is exact, and every quantile estimate equals (within one
//!   log₂ bucket) the estimate a single-threaded reference recording
//!   of the same samples produces.
//! * Counters are monotone across snapshots taken while writers run —
//!   a later snapshot never reports a smaller value.

use phmetrics::{bucket_index, Registry, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_histogram_is_exact(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..200),
            2..6,
        )
    ) {
        let r = Registry::new();
        let h = r.histogram("prop_hist_ns");
        let total: usize = per_thread.iter().map(Vec::len).sum();
        std::thread::scope(|s| {
            for samples in &per_thread {
                let h = h.clone();
                s.spawn(move || {
                    for &v in samples {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.load();
        // Total count is exact: no sample lost to a race.
        prop_assert_eq!(snap.count(), total as u64);
        // Bucket-by-bucket equality with a single-threaded reference
        // (concurrent adds commute), which implies every quantile
        // matches the reference estimate exactly — stronger than the
        // one-bucket contract.
        let reference = Registry::new();
        let rh = reference.histogram("ref");
        for samples in &per_thread {
            for &v in samples {
                rh.record(v);
            }
        }
        let ref_snap = rh.load();
        prop_assert_eq!(&snap.counts, &ref_snap.counts);
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(snap.quantile(q), ref_snap.quantile(q));
        }
        prop_assert_eq!(snap.max(), ref_snap.max());
        // And the quantile contract itself: the estimate's bucket is
        // within one bucket of the true rank-order sample's bucket.
        let mut sorted: Vec<u64> = per_thread.iter().flatten().copied().collect();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * total as f64).ceil() as usize).clamp(1, total) - 1;
            let true_bucket = bucket_index(sorted[rank]) as i64;
            let est_bucket = bucket_index(snap.quantile(q)) as i64;
            prop_assert!(
                (est_bucket - true_bucket).abs() <= 1,
                "q={} est bucket {} vs true bucket {}",
                q, est_bucket, true_bucket
            );
        }
    }

    #[test]
    fn counters_never_go_backwards_across_snapshots(
        increments in proptest::collection::vec(1u64..100, 2..5),
        snapshots in 3usize..8,
    ) {
        let r = Registry::new();
        let c = r.counter("prop_total");
        let h = r.histogram("prop_ns");
        let stop = std::sync::atomic::AtomicBool::new(false);
        // Collect inside the scope, assert after: a failed assertion
        // must not leave writer threads spinning unjoined.
        let observed: Vec<(u64, u64)> = std::thread::scope(|s| {
            for &step in &increments {
                let c = c.clone();
                let h = h.clone();
                let stop = &stop;
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        c.add(step);
                        h.record(step);
                        std::hint::spin_loop();
                    }
                });
            }
            let seq = (0..snapshots)
                .map(|_| {
                    let snap = r.snapshot();
                    std::thread::yield_now();
                    (
                        snap.counter("prop_total").unwrap(),
                        snap.histogram("prop_ns").unwrap().count(),
                    )
                })
                .collect();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            seq
        });
        for pair in observed.windows(2) {
            prop_assert!(
                pair[1].0 >= pair[0].0,
                "counter went backwards: {} < {}", pair[1].0, pair[0].0
            );
            prop_assert!(
                pair[1].1 >= pair[0].1,
                "histogram count went backwards: {} < {}", pair[1].1, pair[0].1
            );
        }
    }
}

#[test]
fn histogram_bucket_count_is_stable() {
    // The exposition format and DESIGN.md document this layout; a
    // silent change would break dashboards parsing `le` edges.
    assert_eq!(NUM_BUCKETS, 43);
}
