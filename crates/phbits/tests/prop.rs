//! Property-based tests for the bit buffer and hypercube helpers, checked
//! against naive `Vec<bool>` / filter-scan models.

use phbits::{hc, num, BitBuf};
use proptest::prelude::*;

/// Reference model: a plain vector of bools.
#[derive(Clone, Debug, Default)]
struct Model(Vec<bool>);

impl Model {
    fn read(&self, off: usize, n: u32) -> u64 {
        let mut v = 0u64;
        for i in (0..n as usize).rev() {
            v = (v << 1) | self.0[off + i] as u64;
        }
        v
    }

    fn write(&mut self, off: usize, val: u64, n: u32) {
        for i in 0..n as usize {
            self.0[off + i] = (val >> i) & 1 == 1;
        }
    }
}

#[derive(Clone, Debug)]
enum Op {
    Push(u64, u32),
    Write(usize, u64, u32),
    InsertGap(usize, usize),
    RemoveRange(usize, usize),
    Truncate(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), 0u32..=64).prop_map(|(v, n)| Op::Push(v, n)),
        (any::<usize>(), any::<u64>(), 0u32..=64).prop_map(|(o, v, n)| Op::Write(o, v, n)),
        (any::<usize>(), 0usize..150).prop_map(|(o, n)| Op::InsertGap(o, n)),
        (any::<usize>(), 0usize..150).prop_map(|(o, n)| Op::RemoveRange(o, n)),
        any::<usize>().prop_map(Op::Truncate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitbuf_matches_bool_vec_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut buf = BitBuf::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Push(v, n) => {
                    buf.push_bits(v, n);
                    let base = model.0.len();
                    model.0.resize(base + n as usize, false);
                    model.write(base, v, n);
                }
                Op::Write(o, v, n) => {
                    if model.0.len() >= n as usize {
                        let o = o % (model.0.len() - n as usize + 1);
                        buf.write_bits(o, v, n);
                        model.write(o, v, n);
                    }
                }
                Op::InsertGap(o, n) => {
                    let o = if model.0.is_empty() { 0 } else { o % (model.0.len() + 1) };
                    buf.insert_gap(o, n);
                    model.0.splice(o..o, std::iter::repeat_n(false, n));
                }
                Op::RemoveRange(o, n) => {
                    if model.0.len() >= n {
                        let o = o % (model.0.len() - n + 1);
                        buf.remove_range(o, n);
                        model.0.drain(o..o + n);
                    }
                }
                Op::Truncate(l) => {
                    if !model.0.is_empty() {
                        let l = l % (model.0.len() + 1);
                        buf.truncate(l);
                        model.0.truncate(l);
                    }
                }
            }
            prop_assert_eq!(buf.len(), model.0.len());
        }
        // Full content comparison in 64-bit chunks.
        let mut off = 0;
        while off < model.0.len() {
            let n = (model.0.len() - off).min(64) as u32;
            prop_assert_eq!(buf.read_bits(off, n), model.read(off, n), "offset {}", off);
            off += n as usize;
        }
    }

    #[test]
    fn read_after_write_roundtrip(off in 0usize..500, v in any::<u64>(), n in 0u32..=64) {
        let mut buf = BitBuf::new();
        buf.grow(off + 64 + n as usize);
        buf.write_bits(off, v, n);
        prop_assert_eq!(buf.read_bits(off, n), v & num::low_mask(n));
    }

    #[test]
    fn copy_bits_preserves_content(
        src_bits in proptest::collection::vec(any::<bool>(), 1..300),
        seed in any::<u64>(),
    ) {
        let mut src = BitBuf::new();
        for &b in &src_bits {
            src.push_bits(b as u64, 1);
        }
        let src_off = (seed as usize) % src_bits.len();
        let n = src_bits.len() - src_off;
        let mut dst = BitBuf::new();
        dst.grow(17 + n);
        dst.copy_bits_from(&src, src_off, 17, n);
        for i in 0..n {
            prop_assert_eq!(dst.get(17 + i), src_bits[src_off + i]);
        }
    }

    #[test]
    fn hc_addr_apply_roundtrip(h in any::<u64>(), bit in 0u32..64, k in 1usize..12) {
        let h = h & num::low_mask(k as u32);
        let mut key = vec![0u64; k];
        hc::apply_addr(&mut key, h, bit);
        prop_assert_eq!(hc::addr(&key, bit), h);
    }

    #[test]
    fn hc_successor_equals_filter_scan(m_l in any::<u64>(), m_u in any::<u64>(), k in 1u32..10) {
        let m = num::low_mask(k);
        let (m_l, m_u) = (m_l & m, m_u & m);
        let fast: Vec<u64> = hc::valid_addrs(m_l, m_u).collect();
        let slow: Vec<u64> = (0..(1u64 << k))
            .filter(|&h| hc::addr_valid(h, m_l, m_u))
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn diverging_bit_agrees_with_scan(a in proptest::collection::vec(any::<u64>(), 1..6), flip in any::<u64>(), dim_sel in any::<usize>()) {
        let mut b = a.clone();
        let d = dim_sel % a.len();
        b[d] ^= flip;
        let expected = (0..64u32).rev().find(|&bit| {
            a.iter().zip(&b).any(|(&x, &y)| (x ^ y) >> bit & 1 == 1)
        });
        prop_assert_eq!(num::max_diverging_bit(&a, &b), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Multi-gap insertion equals applying single gaps back-to-front.
    #[test]
    fn insert_gaps_matches_sequential(
        bits in proptest::collection::vec(any::<bool>(), 0..300),
        raw_gaps in proptest::collection::vec((any::<usize>(), 0usize..40), 0..6),
    ) {
        let mut base = BitBuf::new();
        for &b in &bits {
            base.push_bits(b as u64, 1);
        }
        let mut gaps: Vec<(usize, usize)> = raw_gaps
            .iter()
            .map(|&(o, g)| (o % (bits.len() + 1), g))
            .collect();
        gaps.sort();
        let mut multi = base.clone();
        multi.insert_gaps(&gaps);
        let mut seq = base.clone();
        for &(off, gap) in gaps.iter().rev() {
            seq.insert_gap(off, gap);
        }
        prop_assert_eq!(multi, seq);
    }

    /// Multi-range removal equals applying single removals back-to-front.
    #[test]
    fn remove_ranges_matches_sequential(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
        cuts in proptest::collection::vec((any::<usize>(), 1usize..20), 0..5),
    ) {
        let mut base = BitBuf::new();
        for &b in &bits {
            base.push_bits(b as u64, 1);
        }
        // Build sorted, disjoint in-bounds ranges.
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        let mut cursor = 0usize;
        for &(o, n) in &cuts {
            let remaining = bits.len().saturating_sub(cursor);
            if remaining < 2 {
                break;
            }
            let off = cursor + o % (remaining / 2).max(1);
            let len = 1 + n % (bits.len() - off).max(1).min(n.max(1));
            let len = len.min(bits.len() - off);
            ranges.push((off, len));
            cursor = off + len;
        }
        let mut multi = base.clone();
        multi.remove_ranges(&ranges);
        let mut seq = base.clone();
        for &(off, n) in ranges.iter().rev() {
            seq.remove_range(off, n);
        }
        prop_assert_eq!(multi, seq);
    }

    /// Aligned-residue copies (`src_off % 64 == dst_off % 64`) take the
    /// word-level fast path; check it against the bool model.
    #[test]
    fn copy_bits_aligned_matches_model(
        src_bits in proptest::collection::vec(any::<bool>(), 1..400),
        residue in 0usize..64,
        src_word in 0usize..3,
        dst_word in 0usize..3,
        seed in any::<u64>(),
    ) {
        let mut src = BitBuf::new();
        for &b in &src_bits {
            src.push_bits(b as u64, 1);
        }
        let src_off = src_word * 64 + residue;
        prop_assume!(src_off < src_bits.len());
        let n = 1 + (seed as usize) % (src_bits.len() - src_off);
        let dst_off = dst_word * 64 + residue;
        let mut dst = BitBuf::new();
        dst.grow(dst_off + n + 19);
        // Pre-fill with junk so clobbered neighbours would be caught.
        for i in 0..dst.len() {
            dst.write_bits(i, (seed >> (i % 64)) & 1, 1);
        }
        let before: Vec<bool> = (0..dst.len()).map(|i| dst.get(i)).collect();
        dst.copy_bits_from(&src, src_off, dst_off, n);
        for i in 0..dst.len() {
            let want = if (dst_off..dst_off + n).contains(&i) {
                src_bits[src_off + i - dst_off]
            } else {
                before[i]
            };
            prop_assert_eq!(dst.get(i), want, "bit {}", i);
        }
    }

    /// `words`/`from_words` is a lossless round trip, and `from_words`
    /// rejects stale high bits.
    #[test]
    fn words_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut b = BitBuf::new();
        for &x in &bits {
            b.push_bits(x as u64, 1);
        }
        let words: Box<[u64]> = b.words().into();
        let back = BitBuf::from_words(words.clone(), b.len()).expect("valid");
        prop_assert_eq!(&back, &b);
        // Wrong length is rejected.
        prop_assert!(BitBuf::from_words(words.clone(), b.len() + 70).is_none());
        // Stale bits beyond len are rejected.
        if !b.len().is_multiple_of(64) {
            let mut bad = words.clone();
            let last = bad.len() - 1;
            bad[last] |= 1u64 << 63;
            if b.len() % 64 != 64 {
                prop_assert!(BitBuf::from_words(bad, b.len()).is_none());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Differential tests: word-level kernels vs naive bit-by-bit references.
// ---------------------------------------------------------------------------

/// Builds a buffer from a bool vector.
fn buf_from_bits(bits: &[bool]) -> BitBuf {
    let mut b = BitBuf::new();
    for &x in bits {
        b.push_bits(x as u64, 1);
    }
    b
}

/// Naive reference for `eq_range`: compare bit-by-bit against the packed key.
fn eq_range_naive(bits: &[bool], off: usize, key: &[u64], nbits: usize) -> bool {
    (0..nbits).all(|i| bits[off + i] == ((key[i / 64] >> (i % 64)) & 1 == 1))
}

/// Naive reference for `cmp_range`: little-endian integer order.
fn cmp_range_naive(bits: &[bool], off: usize, key: &[u64], nbits: usize) -> std::cmp::Ordering {
    for i in (0..nbits).rev() {
        let v = bits[off + i];
        let k = (key[i / 64] >> (i % 64)) & 1 == 1;
        if v != k {
            return v.cmp(&k);
        }
    }
    std::cmp::Ordering::Equal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `eq_range` agrees with a bit-by-bit scan, on both exact copies and
    /// single-bit corruptions, across aligned and shifted offsets.
    #[test]
    fn eq_range_matches_naive(
        bits in proptest::collection::vec(any::<bool>(), 1..400),
        off_sel in any::<usize>(),
        len_sel in any::<usize>(),
        flip_sel in any::<usize>(),
        corrupt in any::<bool>(),
    ) {
        let b = buf_from_bits(&bits);
        let off = off_sel % bits.len();
        let nbits = 1 + len_sel % (bits.len() - off);
        // Pack the exact range, then optionally flip one bit of the key.
        let mut key = vec![0u64; nbits.div_ceil(64)];
        for i in 0..nbits {
            if bits[off + i] {
                key[i / 64] |= 1u64 << (i % 64);
            }
        }
        if corrupt {
            let f = flip_sel % nbits;
            key[f / 64] ^= 1u64 << (f % 64);
        }
        prop_assert_eq!(
            b.eq_range(off, &key, nbits),
            eq_range_naive(&bits, off, &key, nbits)
        );
        prop_assert_eq!(b.eq_range(off, &key, nbits), !corrupt);
    }

    /// `cmp_range` orders ranges like little-endian integers, matching a
    /// top-down bit scan.
    #[test]
    fn cmp_range_matches_naive(
        bits in proptest::collection::vec(any::<bool>(), 1..400),
        off_sel in any::<usize>(),
        len_sel in any::<usize>(),
        key_raw in proptest::collection::vec(any::<u64>(), 7..8),
    ) {
        let b = buf_from_bits(&bits);
        let off = off_sel % bits.len();
        let nbits = 1 + len_sel % (bits.len() - off);
        let nwords = nbits.div_ceil(64);
        let mut key = key_raw[..nwords].to_vec();
        // High bits beyond nbits are ignored by contract; mask to be explicit.
        let rem = (nbits % 64) as u32;
        if rem != 0 {
            key[nwords - 1] &= num::low_mask(rem);
        }
        prop_assert_eq!(
            b.cmp_range(off, &key, nbits),
            cmp_range_naive(&bits, off, &key, nbits)
        );
    }

    /// `read_key_into` / `write_key` agree with a per-dimension
    /// `read_bits` / `write_bits` loop for K in 1..24 and any legal
    /// (width, shift) split of a word.
    #[test]
    fn key_kernels_match_naive(
        k in 1usize..24,
        width in 0u32..=64,
        shift_sel in any::<u32>(),
        off_sel in any::<usize>(),
        key_raw in proptest::collection::vec(any::<u64>(), 24..25),
        backing in proptest::collection::vec(any::<bool>(), 1600..1700),
    ) {
        let shift = if width == 64 { 0 } else { shift_sel % (64 - width + 1) };
        let total = width as usize * k;
        let off = off_sel % (backing.len() - total);
        let key = &key_raw[..k];

        // --- write_key vs naive write_bits loop ---
        let mut fast = buf_from_bits(&backing);
        fast.write_key(off, width, shift, key);
        let mut slow = buf_from_bits(&backing);
        for (d, &v) in key.iter().enumerate() {
            slow.write_bits(off + d * width as usize, (v >> shift) & num::low_mask(width), width);
        }
        prop_assert_eq!(&fast, &slow);

        // --- read_key_into vs naive read_bits loop ---
        let mut got = key_raw[..k].to_vec();
        fast.read_key_into(off, width, shift, &mut got);
        let keep = !(num::low_mask(width) << shift);
        for (d, g) in got.iter().enumerate() {
            let field = slow.read_bits(off + d * width as usize, width);
            let want = (key_raw[d] & keep) | (field << shift);
            prop_assert_eq!(*g, want, "dim {}", d);
        }

        // --- pack_key agrees with the committed write_key layout ---
        let mut packed = vec![u64::MAX; 24];
        let nbits = num::pack_key(key, shift, width, &mut packed);
        prop_assert_eq!(nbits, total);
        for i in 0..total {
            let want = fast.get(off + i);
            prop_assert_eq!((packed[i / 64] >> (i % 64)) & 1 == 1, want, "bit {}", i);
        }
        // And eq_range/eq_key accept the written key at the written offset.
        if total > 0 {
            prop_assert!(fast.eq_range(off, &packed, total));
        }
        prop_assert!(fast.eq_key(off, width, shift, key));
        // eq_key agrees with a per-dimension read_bits compare after a flip.
        if width > 0 {
            let mut fuzz = fast.clone();
            let f = off + off_sel % total;
            fuzz.set(f, !fuzz.get(f));
            let naive = key.iter().enumerate().all(|(d, &v)| {
                fuzz.read_bits(off + d * width as usize, width) == (v >> shift) & num::low_mask(width)
            });
            prop_assert_eq!(fuzz.eq_key(off, width, shift, key), naive);
            prop_assert!(!fuzz.eq_key(off, width, shift, key));
        }
    }
}
