//! Hypercube address manipulation.
//!
//! A PH-tree node that splits at bit depth `b` assigns each key a
//! *hypercube address*: a `k`-bit number whose bit `k-1-d` is bit `b` of
//! the key's dimension `d` (dimension 0 contributes the most significant
//! address bit, matching Fig. 2 of the paper where the 2-D point
//! `(0…, 1…)` gets address `01`).
//!
//! For range queries (Sect. 3.5) the node's intersection with the query
//! hyper-rectangle is encoded in two masks `mL` and `mU`; an address `h`
//! can possibly contain matching entries iff `(h | mL) == h && (h & mU) ==
//! h`. [`next_addr`] enumerates exactly those addresses in increasing
//! order with O(1) word operations per step.

/// Extracts the hypercube address of `key` at bit position `bit`
/// (0 = least significant bit, 63 = most significant).
///
/// Dimension 0 maps to the most significant address bit.
///
/// ```
/// // 2-D key whose dim-0 MSB is 0 and dim-1 MSB is 1 → address 0b01.
/// assert_eq!(phbits::hc::addr(&[0, 1 << 63], 63), 0b01);
/// ```
#[inline]
pub fn addr(key: &[u64], bit: u32) -> u64 {
    debug_assert!(key.len() <= 64);
    let mut h = 0u64;
    for &v in key {
        h = (h << 1) | ((v >> bit) & 1);
    }
    h
}

/// Writes a hypercube address back into a key: sets bit `bit` of each
/// dimension of `key` from the corresponding bit of `h`.
#[inline]
pub fn apply_addr(key: &mut [u64], h: u64, bit: u32) {
    let k = key.len();
    for (d, v) in key.iter_mut().enumerate() {
        let b = (h >> (k - 1 - d)) & 1;
        *v = (*v & !(1u64 << bit)) | (b << bit);
    }
}

/// Computes the range-query masks `(mL, mU)` for a node.
///
/// `node_min[d]`/`node_max[d]` are the smallest and largest key values the
/// node's region can contain in dimension `d` (its prefix with the lower
/// bits all-0 resp. all-1, down to and including the node's split bit).
/// `q_min`/`q_max` are the query rectangle corners.
///
/// Bit `k-1-d` of `mL` is 1 iff the query's lower bound forces the upper
/// half of dimension `d` (the lower half cannot contain matches); bit
/// `k-1-d` of `mU` is 0 iff the query's upper bound forbids the upper
/// half. See Sect. 3.5.
///
/// `bit` is the node's split bit position; the half-point of dimension `d`
/// is `node_min[d] | (1 << bit)`.
#[inline]
pub fn masks(node_min: &[u64], q_min: &[u64], q_max: &[u64], bit: u32) -> (u64, u64) {
    let k = node_min.len();
    let mut m_l = 0u64;
    let mut m_u = 0u64;
    let lower_span = if bit == 0 { 0 } else { (1u64 << bit) - 1 };
    for d in 0..k {
        let lo_min = node_min[d];
        let lo_max = node_min[d] | lower_span; // top of the lower half
        let hi_min = node_min[d] | (1u64 << bit);
        m_l <<= 1;
        m_u <<= 1;
        // Lower half [lo_min, lo_max] disjoint from query → must go high.
        if q_min[d] > lo_max {
            m_l |= 1;
        }
        // Upper half starts above query max → must stay low.
        if q_max[d] >= hi_min {
            m_u |= 1;
        }
        let _ = lo_min;
    }
    (m_l, m_u)
}

/// Whether hypercube address `h` can contain query matches under masks
/// `(m_l, m_u)`.
#[inline]
pub fn addr_valid(h: u64, m_l: u64, m_u: u64) -> bool {
    (h | m_l) == h && (h & m_u) == h
}

/// Returns the smallest valid address under `(m_l, m_u)`, i.e. `mL`
/// itself (always valid when `mL ⊆ mU`, which holds whenever the node
/// intersects the query at all).
#[inline]
pub fn first_addr(m_l: u64, _m_u: u64) -> u64 {
    m_l
}

/// Returns the successor of valid address `h` under masks `(m_l, m_u)`,
/// or `None` when `h` is the largest valid address.
///
/// This is the constant-time increment of the PH-tree range iterator: set
/// all non-selectable bits, add one (carry ripples through them), then
/// restore the mask pattern.
#[inline]
pub fn next_addr(h: u64, m_l: u64, m_u: u64) -> Option<u64> {
    let r = (h | !m_u).wrapping_add(1);
    let next = (r & m_u) | m_l;
    if next > h {
        Some(next)
    } else {
        None
    }
}

/// Iterator over all valid hypercube addresses between `mL` and `mU`.
///
/// ```
/// // k = 3, dim 0 must be high (mL = 0b100), dim 2 must stay low
/// // (mU = 0b110): valid addresses are 100 and 110.
/// let v: Vec<u64> = phbits::hc::valid_addrs(0b100, 0b110).collect();
/// assert_eq!(v, vec![0b100, 0b110]);
/// ```
pub fn valid_addrs(m_l: u64, m_u: u64) -> ValidAddrs {
    ValidAddrs {
        next: if m_l & !m_u == 0 { Some(m_l) } else { None },
        m_l,
        m_u,
    }
}

/// See [`valid_addrs`].
#[derive(Debug, Clone)]
pub struct ValidAddrs {
    next: Option<u64>,
    m_l: u64,
    m_u: u64,
}

impl Iterator for ValidAddrs {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        self.next = next_addr(cur, self.m_l, self.m_u);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extracts_msb_first() {
        // Paper Fig. 2: entry (0001, 1000) at the root (bit 3 of 4-bit
        // values → here bit 63 of 64-bit): dim0 starts 0, dim1 starts 1.
        let key = [0x1u64 << 32, 0x8u64 << 60];
        assert_eq!(addr(&key, 63), 0b01);
        assert_eq!(addr(&[u64::MAX, 0, u64::MAX], 7), 0b101);
    }

    #[test]
    fn addr_apply_roundtrip() {
        let mut key = [0u64; 4];
        apply_addr(&mut key, 0b1010, 17);
        assert_eq!(addr(&key, 17), 0b1010);
        assert_eq!(key[0], 1 << 17);
        assert_eq!(key[1], 0);
        apply_addr(&mut key, 0b0101, 17);
        assert_eq!(addr(&key, 17), 0b0101);
    }

    #[test]
    fn valid_addr_enumeration_full_range() {
        // Unconstrained 3-bit cube: all 8 addresses.
        let v: Vec<u64> = valid_addrs(0, 0b111).collect();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn valid_addr_enumeration_constrained() {
        // mL=0b001 (last dim must be 1), mU=0b101 (middle dim must be 0).
        let v: Vec<u64> = valid_addrs(0b001, 0b101).collect();
        assert_eq!(v, vec![0b001, 0b101]);
        for h in &v {
            assert!(addr_valid(*h, 0b001, 0b101));
        }
    }

    #[test]
    fn valid_addrs_empty_when_contradictory() {
        // mL requires a bit that mU forbids → no valid address.
        let v: Vec<u64> = valid_addrs(0b010, 0b101).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn successor_matches_filter_scan() {
        for (m_l, m_u) in [(0u64, 0b1111u64), (0b0011, 0b1011), (0b1000, 0b1110)] {
            let fast: Vec<u64> = valid_addrs(m_l, m_u).collect();
            let slow: Vec<u64> = (0..16).filter(|&h| addr_valid(h, m_l, m_u)).collect();
            assert_eq!(fast, slow, "mL={m_l:b} mU={m_u:b}");
        }
    }

    #[test]
    fn single_valid_address() {
        let v: Vec<u64> = valid_addrs(0b101, 0b101).collect();
        assert_eq!(v, vec![0b101]);
    }

    #[test]
    fn masks_fully_inside_query() {
        // Node region [4,7]² at split bit 1, query covers [0,10]².
        let (m_l, m_u) = masks(&[4, 4], &[0, 0], &[10, 10], 1);
        assert_eq!(m_l, 0b00);
        assert_eq!(m_u, 0b11);
    }

    #[test]
    fn masks_query_cuts_lower_half() {
        // Node region [0,7] (1-D) split at bit 2: lower half [0,3],
        // upper half [4,7]. Query [5,9] excludes the lower half.
        let (m_l, m_u) = masks(&[0], &[5], &[9], 2);
        assert_eq!(m_l, 0b1);
        assert_eq!(m_u, 0b1);
    }

    #[test]
    fn masks_query_cuts_upper_half() {
        // Query [0,2] excludes the upper half [4,7].
        let (m_l, m_u) = masks(&[0], &[0], &[2], 2);
        assert_eq!(m_l, 0b0);
        assert_eq!(m_u, 0b0);
    }

    #[test]
    fn masks_split_bit_zero() {
        // Split at bit 0: halves are single values {n, n+1}.
        let (m_l, m_u) = masks(&[10], &[11], &[11], 0);
        assert_eq!(m_l, 1);
        assert_eq!(m_u, 1);
        let (m_l, m_u) = masks(&[10], &[10], &[10], 0);
        assert_eq!(m_l, 0);
        assert_eq!(m_u, 0);
    }

    #[test]
    fn masks_highest_bit() {
        let (m_l, m_u) = masks(&[0], &[1 << 63], &[u64::MAX], 63);
        assert_eq!(m_l, 1);
        assert_eq!(m_u, 1);
    }
}
