//! A packed bit buffer with exact-size storage.
//!
//! Bits are stored in `u64` words. Bit index `i` lives in word `i / 64`
//! at bit position `i % 64` counted from the least significant bit.
//! Multi-bit values are stored little-endian within the buffer: the
//! value's bit 0 is at the lowest buffer index. This keeps every
//! read/write a one- or two-word operation.
//!
//! The backing store is an exact-size `Box<[u64]>`: a buffer of `n` bits
//! owns exactly `ceil(n/64)` words of heap — the PH-tree's space
//! accounting depends on nodes never carrying capacity slack. All
//! structural edits (gap insertion, range removal) rebuild the word
//! array in a single allocation + single copy pass, so a combined edit
//! of several regions ([`BitBuf::insert_gaps`]) costs one pass, not one
//! per region.

/// A packed bit buffer with exact-size heap storage.
///
/// This is the per-node bit string of the PH-tree: it holds the node's
/// infix, the packed child addresses/kinds and the postfixes of all
/// locally stored entries. The structural operations —
/// [`BitBuf::insert_gaps`] (shift-right, used on entry insertion) and
/// [`BitBuf::remove_ranges`] (shift-left, used on deletion) — are
/// exactly the operations whose costs the paper discusses in Sect. 3.6
/// and 4.3.4.
///
/// # Example
///
/// ```
/// use phbits::BitBuf;
///
/// let mut b = BitBuf::new();
/// b.push_bits(0b1011, 4);
/// b.push_bits(0xFF, 8);
/// assert_eq!(b.len(), 12);
/// assert_eq!(b.read_bits(0, 4), 0b1011);
/// assert_eq!(b.read_bits(4, 8), 0xFF);
///
/// // Insert a 4-bit gap in the middle and fill it.
/// b.insert_gap(4, 4);
/// b.write_bits(4, 0b0110, 4);
/// assert_eq!(b.read_bits(0, 4), 0b1011);
/// assert_eq!(b.read_bits(4, 4), 0b0110);
/// assert_eq!(b.read_bits(8, 8), 0xFF);
///
/// // And remove it again.
/// b.remove_range(4, 4);
/// assert_eq!(b.read_bits(4, 8), 0xFF);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitBuf {
    words: Box<[u64]>,
    len: u32,
}

#[inline]
fn mask(nbits: u32) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

impl BitBuf {
    /// Creates an empty buffer.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer. (`nbits` is advisory only; storage is
    /// always exact-size, so this is equivalent to [`BitBuf::new`].)
    pub fn with_capacity(_nbits: usize) -> Self {
        Self::default()
    }

    /// Creates a zero-filled buffer of `nbits` bits.
    pub fn zeroed(nbits: usize) -> Self {
        BitBuf {
            words: vec![0u64; nbits.div_ceil(64)].into_boxed_slice(),
            len: nbits as u32,
        }
    }

    /// Number of bits currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all bits (and the allocation).
    pub fn clear(&mut self) {
        self.words = Box::default();
        self.len = 0;
    }

    /// Bytes of heap memory held by this buffer (always exact:
    /// `ceil(len/64)` words).
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Same as [`BitBuf::heap_bytes`] (kept for API compatibility).
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.len().div_ceil(64) * 8
    }

    /// No-op: storage is always exact-size.
    pub fn shrink_to_fit(&mut self) {}

    /// Reads `nbits` bits (0..=64) starting at bit offset `off`.
    ///
    /// The result's bit 0 is the bit at buffer index `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + nbits` exceeds [`BitBuf::len`] or `nbits > 64`.
    #[inline]
    pub fn read_bits(&self, off: usize, nbits: u32) -> u64 {
        assert!(nbits <= 64, "read of more than 64 bits");
        assert!(off + nbits as usize <= self.len(), "bit read out of bounds");
        if nbits == 0 {
            return 0;
        }
        let word = off / 64;
        let shift = (off % 64) as u32;
        let lo = self.words[word] >> shift;
        let have = 64 - shift;
        let v = if nbits <= have {
            lo
        } else {
            lo | (self.words[word + 1] << have)
        };
        v & mask(nbits)
    }

    /// Writes the low `nbits` bits (0..=64) of `value` at bit offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + nbits` exceeds [`BitBuf::len`] or `nbits > 64`.
    #[inline]
    pub fn write_bits(&mut self, off: usize, value: u64, nbits: u32) {
        assert!(nbits <= 64, "write of more than 64 bits");
        assert!(
            off + nbits as usize <= self.len(),
            "bit write out of bounds"
        );
        if nbits == 0 {
            return;
        }
        let value = value & mask(nbits);
        let word = off / 64;
        let shift = (off % 64) as u32;
        let have = 64 - shift;
        if nbits <= have {
            let m = mask(nbits) << shift;
            self.words[word] = (self.words[word] & !m) | (value << shift);
        } else {
            let m0 = mask(have) << shift;
            self.words[word] = (self.words[word] & !m0) | (value << shift);
            let rest = nbits - have;
            let m1 = mask(rest);
            self.words[word + 1] = (self.words[word + 1] & !m1) | ((value >> have) & m1);
        }
    }

    /// Appends the low `nbits` bits of `value` at the end of the buffer.
    #[inline]
    pub fn push_bits(&mut self, value: u64, nbits: u32) {
        let off = self.len();
        self.grow(nbits as usize);
        self.write_bits(off, value, nbits);
    }

    /// Extends the buffer by `nbits` zero bits (reallocates exactly).
    pub fn grow(&mut self, nbits: usize) {
        let old_len = self.len();
        self.resize_words(old_len + nbits);
    }

    /// Truncates the buffer to `nbits` bits (reallocates exactly).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > len()`.
    pub fn truncate(&mut self, nbits: usize) {
        assert!(nbits <= self.len(), "truncate beyond length");
        self.resize_words(nbits);
    }

    /// Reallocates to exactly `new_len` bits, preserving the common
    /// prefix and zeroing everything beyond the old length.
    fn resize_words(&mut self, new_len: usize) {
        let need = new_len.div_ceil(64);
        let keep_bits = self.len().min(new_len);
        let mut out = vec![0u64; need].into_boxed_slice();
        let full = keep_bits / 64;
        out[..full].copy_from_slice(&self.words[..full]);
        let rem = (keep_bits % 64) as u32;
        if rem != 0 {
            out[full] = self.words[full] & mask(rem);
        }
        self.words = out;
        self.len = new_len as u32;
    }

    /// Opens one gap of `gap` zero bits at offset `off`, shifting all
    /// bits at `off..len` right (towards higher indices) by `gap`.
    ///
    /// This is the "shift-right" used by PH-tree entry insertion.
    pub fn insert_gap(&mut self, off: usize, gap: usize) {
        self.insert_gaps(&[(off, gap)]);
    }

    /// Opens several zero gaps in one allocation + copy pass.
    ///
    /// `gaps` are `(offset, length)` pairs with offsets in *original*
    /// buffer coordinates, sorted ascending; each gap is inserted before
    /// the original bit at `offset` (an offset equal to `len` appends).
    ///
    /// ```
    /// let mut b = phbits::BitBuf::new();
    /// b.push_bits(0b1111, 4);
    /// b.insert_gaps(&[(1, 2), (3, 1)]);
    /// // 1 11 1 → 1 00 11 0 1 (LSB first)
    /// assert_eq!(b.len(), 7);
    /// assert_eq!(b.read_bits(0, 7), 0b1011001);
    /// ```
    pub fn insert_gaps(&mut self, gaps: &[(usize, usize)]) {
        let old_len = self.len();
        let total: usize = gaps.iter().map(|&(_, g)| g).sum();
        debug_assert!(gaps.windows(2).all(|w| w[0].0 <= w[1].0), "gaps sorted");
        assert!(
            gaps.iter().all(|&(off, _)| off <= old_len),
            "gap offset out of bounds"
        );
        if total == 0 {
            return;
        }
        let mut out = BitBuf::zeroed(old_len + total);
        let mut src = 0usize;
        let mut dst = 0usize;
        for &(off, gap) in gaps {
            out.copy_bits_from(self, src, dst, off - src);
            dst += off - src + gap;
            src = off;
        }
        out.copy_bits_from(self, src, dst, old_len - src);
        *self = out;
    }

    /// Removes the `n` bits at `off..off + n`, shifting all later bits
    /// left (towards lower indices) by `n` and shortening the buffer.
    ///
    /// This is the "shift-left" used by PH-tree entry deletion.
    pub fn remove_range(&mut self, off: usize, n: usize) {
        self.remove_ranges(&[(off, n)]);
    }

    /// Removes several disjoint ranges in one allocation + copy pass.
    ///
    /// `ranges` are `(offset, length)` pairs in original coordinates,
    /// sorted ascending and non-overlapping.
    ///
    /// ```
    /// let mut b = phbits::BitBuf::new();
    /// b.push_bits(0b1100101, 7);
    /// b.remove_ranges(&[(1, 1), (4, 2)]);
    /// // 1 0 1 0 0 1 1 → keep 1, 1 0, 1 (LSB first)
    /// assert_eq!(b.len(), 4);
    /// assert_eq!(b.read_bits(0, 4), 0b1011);
    /// ```
    pub fn remove_ranges(&mut self, ranges: &[(usize, usize)]) {
        let old_len = self.len();
        let total: usize = ranges.iter().map(|&(_, n)| n).sum();
        debug_assert!(
            ranges.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0),
            "ranges sorted and disjoint"
        );
        assert!(
            ranges.iter().all(|&(off, n)| off + n <= old_len),
            "removal range out of bounds"
        );
        if total == 0 {
            return;
        }
        let mut out = BitBuf::zeroed(old_len - total);
        let mut src = 0usize;
        let mut dst = 0usize;
        for &(off, n) in ranges {
            out.copy_bits_from(self, src, dst, off - src);
            dst += off - src;
            src = off + n;
        }
        out.copy_bits_from(self, src, dst, old_len - src);
        *self = out;
    }

    /// Copies `n` bits from `src` (another buffer) at `src_off` into `self`
    /// at `dst_off`. The destination range must already exist.
    pub fn copy_bits_from(&mut self, src: &BitBuf, src_off: usize, dst_off: usize, n: usize) {
        assert!(src_off + n <= src.len(), "source range out of bounds");
        assert!(dst_off + n <= self.len(), "destination range out of bounds");
        let mut done = 0;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            let v = src.read_bits(src_off + done, chunk);
            self.write_bits(dst_off + done, v, chunk);
            done += chunk as usize;
        }
    }

    /// Appends `n` bits copied from `src` at `src_off`.
    pub fn push_bits_from(&mut self, src: &BitBuf, src_off: usize, n: usize) {
        let off = self.len();
        self.grow(n);
        self.copy_bits_from(src, src_off, off, n);
    }

    /// Counts the 1-bits in the range `off..off + n`.
    ///
    /// Word-chunked: O(n/64). Used for rank queries over packed
    /// child-kind bits.
    #[inline]
    pub fn count_ones(&self, off: usize, n: usize) -> usize {
        assert!(off + n <= self.len(), "count range out of bounds");
        let mut total = 0usize;
        let mut done = 0usize;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            total += self.read_bits(off + done, chunk).count_ones() as usize;
            done += chunk as usize;
        }
        total
    }

    /// The backing words (exactly `ceil(len/64)`; bits beyond `len` in
    /// the last word are zero). For serialisation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a buffer from backing words and a bit length (the
    /// inverse of [`BitBuf::words`] + [`BitBuf::len`]).
    ///
    /// Returns `None` if `len_bits` does not fit the word count or if
    /// bits beyond `len_bits` are set (corrupt input).
    pub fn from_words(words: Box<[u64]>, len_bits: usize) -> Option<Self> {
        if words.len() != len_bits.div_ceil(64) || len_bits > u32::MAX as usize {
            return None;
        }
        let rem = (len_bits % 64) as u32;
        if rem != 0 && words[words.len() - 1] & !mask(rem) != 0 {
            return None;
        }
        Some(BitBuf {
            words,
            len: len_bits as u32,
        })
    }

    /// Returns the single bit at index `i` as a bool.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.read_bits(i, 1) != 0
    }

    /// Sets the single bit at index `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        self.write_bits(i, v as u64, 1);
    }
}

impl std::fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitBuf[{};", self.len)?;
        for i in 0..self.len().min(256) {
            if i % 8 == 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len() > 256 {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let b = BitBuf::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.heap_bytes(), 0);
    }

    #[test]
    fn push_and_read_small() {
        let mut b = BitBuf::new();
        b.push_bits(0b101, 3);
        b.push_bits(0b11, 2);
        assert_eq!(b.len(), 5);
        assert_eq!(b.read_bits(0, 3), 0b101);
        assert_eq!(b.read_bits(3, 2), 0b11);
        assert_eq!(b.read_bits(0, 5), 0b11101);
    }

    #[test]
    fn read_write_across_word_boundary() {
        let mut b = BitBuf::new();
        b.grow(128);
        b.write_bits(60, 0xABCD, 16);
        assert_eq!(b.read_bits(60, 16), 0xABCD);
        assert_eq!(b.read_bits(60, 4), 0xD);
        assert_eq!(b.read_bits(64, 12), 0xABC);
        // Neighbouring bits untouched.
        assert_eq!(b.read_bits(0, 60), 0);
        assert_eq!(b.read_bits(76, 52), 0);
    }

    #[test]
    fn write_full_64_at_boundary() {
        let mut b = BitBuf::new();
        b.grow(192);
        b.write_bits(64, u64::MAX, 64);
        assert_eq!(b.read_bits(64, 64), u64::MAX);
        assert_eq!(b.read_bits(0, 64), 0);
        assert_eq!(b.read_bits(128, 64), 0);
        b.write_bits(32, 0, 64);
        assert_eq!(b.read_bits(0, 32), 0);
        assert_eq!(b.read_bits(32, 64), 0);
        assert_eq!(b.read_bits(96, 32), u64::MAX >> 32);
    }

    #[test]
    fn write_unaligned_64() {
        let mut b = BitBuf::new();
        b.grow(256);
        let v = 0x0123_4567_89AB_CDEF;
        b.write_bits(13, v, 64);
        assert_eq!(b.read_bits(13, 64), v);
    }

    #[test]
    fn zero_width_ops() {
        let mut b = BitBuf::new();
        b.push_bits(0b1, 1);
        assert_eq!(b.read_bits(0, 0), 0);
        assert_eq!(b.read_bits(1, 0), 0);
        b.write_bits(1, 0xFF, 0); // no-op at end
        b.insert_gap(1, 0);
        b.remove_range(0, 0);
        assert_eq!(b.len(), 1);
        assert!(b.get(0));
    }

    #[test]
    fn insert_gap_middle() {
        let mut b = BitBuf::new();
        b.push_bits(0b1111, 4);
        b.insert_gap(2, 3);
        assert_eq!(b.len(), 7);
        assert_eq!(b.read_bits(0, 2), 0b11);
        assert_eq!(b.read_bits(2, 3), 0); // gap is zeroed
        assert_eq!(b.read_bits(5, 2), 0b11);
    }

    #[test]
    fn insert_gap_at_start_and_end() {
        let mut b = BitBuf::new();
        b.push_bits(0b1011, 4);
        b.insert_gap(0, 2);
        assert_eq!(b.read_bits(0, 2), 0);
        assert_eq!(b.read_bits(2, 4), 0b1011);
        b.insert_gap(6, 5);
        assert_eq!(b.len(), 11);
        assert_eq!(b.read_bits(6, 5), 0);
        assert_eq!(b.read_bits(2, 4), 0b1011);
    }

    #[test]
    fn insert_large_gap_shifts_whole_words() {
        let mut b = BitBuf::new();
        for i in 0..200u64 {
            b.push_bits(i & 1, 1);
        }
        let before: Vec<bool> = (0..200).map(|i| b.get(i)).collect();
        b.insert_gap(67, 130);
        assert_eq!(b.len(), 330);
        for (i, &bit) in before.iter().enumerate().take(67) {
            assert_eq!(b.get(i), bit, "prefix bit {i}");
        }
        for i in 67..197 {
            assert!(!b.get(i), "gap bit {i} should be zero");
        }
        for (i, &bit) in before.iter().enumerate().skip(67) {
            assert_eq!(b.get(i + 130), bit, "suffix bit {i}");
        }
    }

    #[test]
    fn multi_gap_insert_matches_sequential() {
        let mut base = BitBuf::new();
        for i in 0..100u64 {
            base.push_bits((i * 7) & 1, 1);
        }
        let mut multi = base.clone();
        multi.insert_gaps(&[(10, 3), (50, 7), (100, 2)]);
        let mut seq = base.clone();
        // Apply from the back so original offsets stay valid.
        seq.insert_gap(100, 2);
        seq.insert_gap(50, 7);
        seq.insert_gap(10, 3);
        assert_eq!(multi, seq);
    }

    #[test]
    fn multi_gap_adjacent_offsets() {
        let mut b = BitBuf::new();
        b.push_bits(0b11, 2);
        b.insert_gaps(&[(1, 1), (1, 1)]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.read_bits(0, 4), 0b1001);
    }

    #[test]
    fn remove_range_middle() {
        let mut b = BitBuf::new();
        b.push_bits(0b1100101, 7);
        b.remove_range(2, 3);
        assert_eq!(b.len(), 4);
        // original bits (LSB first): 1,0,1,0,0,1,1 → remove idx 2..5 → 1,0,1,1
        assert_eq!(b.read_bits(0, 4), 0b1101);
    }

    #[test]
    fn remove_range_spanning_words() {
        let mut b = BitBuf::new();
        for i in 0..300u64 {
            b.push_bits((i * 7) & 1, 1);
        }
        let before: Vec<bool> = (0..300).map(|i| b.get(i)).collect();
        b.remove_range(50, 200);
        assert_eq!(b.len(), 100);
        for (i, &bit) in before.iter().enumerate().take(50) {
            assert_eq!(b.get(i), bit);
        }
        for i in 50..100 {
            assert_eq!(b.get(i), before[i + 200]);
        }
    }

    #[test]
    fn multi_range_remove_matches_sequential() {
        let mut base = BitBuf::new();
        for i in 0..120u64 {
            base.push_bits((i * 11) & 1, 1);
        }
        let mut multi = base.clone();
        multi.remove_ranges(&[(5, 4), (40, 10), (100, 20)]);
        let mut seq = base.clone();
        seq.remove_range(100, 20);
        seq.remove_range(40, 10);
        seq.remove_range(5, 4);
        assert_eq!(multi, seq);
    }

    #[test]
    fn grow_zeroes_reclaimed_space() {
        let mut b = BitBuf::new();
        b.push_bits(u64::MAX, 64);
        b.push_bits(u64::MAX, 10);
        b.truncate(3);
        b.grow(80);
        assert_eq!(b.read_bits(0, 3), 0b111);
        for i in 3..83 {
            assert!(!b.get(i), "bit {i} must be zero after grow");
        }
    }

    #[test]
    fn storage_is_exact() {
        let mut b = BitBuf::new();
        b.grow(65);
        assert_eq!(b.heap_bytes(), 16);
        b.truncate(64);
        assert_eq!(b.heap_bytes(), 8);
        b.truncate(0);
        assert_eq!(b.heap_bytes(), 0);
        b.grow(1);
        assert_eq!(b.heap_bytes(), 8);
    }

    #[test]
    fn copy_between_buffers() {
        let mut a = BitBuf::new();
        a.push_bits(0xDEAD_BEEF, 32);
        let mut b = BitBuf::new();
        b.grow(40);
        b.copy_bits_from(&a, 4, 7, 24);
        assert_eq!(b.read_bits(7, 24), (0xDEAD_BEEF >> 4) & 0xFF_FFFF);
        let mut c = BitBuf::new();
        c.push_bits_from(&a, 0, 32);
        assert_eq!(c.read_bits(0, 32), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let b = BitBuf::new();
        b.read_bits(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut b = BitBuf::new();
        b.grow(8);
        b.write_bits(5, 0, 4);
    }

    #[test]
    fn truncate_then_reuse() {
        let mut b = BitBuf::new();
        b.push_bits(0xFF, 8);
        b.truncate(0);
        assert!(b.is_empty());
        b.push_bits(0b01, 2);
        assert_eq!(b.read_bits(0, 2), 0b01);
    }

    #[test]
    fn count_ones_ranges() {
        let mut b = BitBuf::new();
        for i in 0..200u64 {
            b.push_bits((i % 3 == 0) as u64, 1);
        }
        let expect = |off: usize, n: usize| (off..off + n).filter(|i| i % 3 == 0).count();
        for (off, n) in [(0, 200), (0, 0), (5, 64), (63, 2), (1, 130), (199, 1)] {
            assert_eq!(b.count_ones(off, n), expect(off, n), "off {off} n {n}");
        }
    }

    #[test]
    fn set_get_individual_bits() {
        let mut b = BitBuf::new();
        b.grow(130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(62) && !b.get(65) && !b.get(128));
        b.set(63, false);
        assert!(!b.get(63));
    }
}
