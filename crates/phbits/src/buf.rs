//! A packed bit buffer with word-level access kernels.
//!
//! Bits are stored in `u64` words. Bit index `i` lives in word `i / 64`
//! at bit position `i % 64` counted from the least significant bit.
//! Multi-bit values are stored little-endian within the buffer: the
//! value's bit 0 is at the lowest buffer index. This keeps every
//! read/write a one- or two-word operation.
//!
//! The backing store is a `Vec<u64>` holding exactly `ceil(n/64)` words
//! of *initialised* data; [`BitBuf::grow`]/[`BitBuf::truncate`] resize
//! in place with the vector's amortised growth, so appending is O(1)
//! amortised. [`BitBuf::shrink_to_fit`] releases capacity slack and
//! [`BitBuf::heap_bytes`] reports the true capacity, so the PH-tree's
//! space accounting stays exact after a shrink pass. Structural edits
//! (gap insertion, range removal) shift the affected regions **in
//! place**: [`BitBuf::insert_gaps`] reserves the full post-insert
//! length once up front and shifts right from the back, and
//! [`BitBuf::remove_ranges`] shifts left and truncates, retaining
//! capacity — so a node absorbing entries touches the allocator only
//! on the vector's amortised doublings, not on every edit.
//!
//! Beyond single-value reads and writes, the buffer exposes **word-level
//! kernels** for the PH-tree's node hot paths: [`BitBuf::eq_range`] /
//! [`BitBuf::cmp_range`] compare a packed bit range against a
//! caller-packed key in `O(nbits/64)` word operations, and
//! [`BitBuf::read_key_into`] / [`BitBuf::write_key`] gather/scatter a
//! run of `K` fixed-width fields (one per dimension) with a single
//! rolling word cursor instead of `K` independent sub-word accesses.

/// A packed bit buffer backed by a word vector.
///
/// This is the per-node bit string of the PH-tree: it holds the node's
/// infix, the packed child addresses/kinds and the postfixes of all
/// locally stored entries. The structural operations —
/// [`BitBuf::insert_gaps`] (shift-right, used on entry insertion) and
/// [`BitBuf::remove_ranges`] (shift-left, used on deletion) — are
/// exactly the operations whose costs the paper discusses in Sect. 3.6
/// and 4.3.4. Both operate in place on the existing word vector
/// (growing it once to the final length, or truncating with capacity
/// retained), so repeated edits amortise their allocations.
///
/// # Example
///
/// ```
/// use phbits::BitBuf;
///
/// let mut b = BitBuf::new();
/// b.push_bits(0b1011, 4);
/// b.push_bits(0xFF, 8);
/// assert_eq!(b.len(), 12);
/// assert_eq!(b.read_bits(0, 4), 0b1011);
/// assert_eq!(b.read_bits(4, 8), 0xFF);
///
/// // Insert a 4-bit gap in the middle and fill it.
/// b.insert_gap(4, 4);
/// b.write_bits(4, 0b0110, 4);
/// assert_eq!(b.read_bits(0, 4), 0b1011);
/// assert_eq!(b.read_bits(4, 4), 0b0110);
/// assert_eq!(b.read_bits(8, 8), 0xFF);
///
/// // And remove it again.
/// b.remove_range(4, 4);
/// assert_eq!(b.read_bits(4, 8), 0xFF);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitBuf {
    /// Invariant: `words.len() == len.div_ceil(64)` and every bit at
    /// index `>= len` in the last word is zero. Capacity beyond
    /// `words.len()` is allowed (amortised growth) and reported by
    /// [`BitBuf::heap_bytes`].
    words: Vec<u64>,
    len: u32,
}

#[inline]
fn mask(nbits: u32) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

impl BitBuf {
    /// Creates an empty buffer.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `nbits` bits pre-reserved,
    /// so pushes up to that size never reallocate.
    pub fn with_capacity(nbits: usize) -> Self {
        BitBuf {
            words: Vec::with_capacity(nbits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a zero-filled buffer of `nbits` bits.
    pub fn zeroed(nbits: usize) -> Self {
        BitBuf {
            words: vec![0u64; nbits.div_ceil(64)],
            len: nbits as u32,
        }
    }

    /// Number of bits currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the buffer holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all bits (and the allocation).
    pub fn clear(&mut self) {
        self.words = Vec::new();
        self.len = 0;
    }

    /// Bytes of heap memory held by this buffer, including capacity
    /// slack from amortised growth. [`BitBuf::shrink_to_fit`] brings it
    /// down to [`BitBuf::used_bytes`].
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Bytes of heap actually holding bits: `ceil(len/64)` words.
    #[inline]
    pub fn used_bytes(&self) -> usize {
        self.len().div_ceil(64) * 8
    }

    /// Releases capacity slack so [`BitBuf::heap_bytes`] equals
    /// [`BitBuf::used_bytes`] (the PH-tree's space figures assume nodes
    /// carry no slack after a shrink pass).
    pub fn shrink_to_fit(&mut self) {
        self.words.shrink_to_fit();
    }

    /// Reads `nbits` bits (0..=64) starting at bit offset `off`.
    ///
    /// The result's bit 0 is the bit at buffer index `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + nbits` exceeds [`BitBuf::len`] or `nbits > 64`.
    #[inline]
    pub fn read_bits(&self, off: usize, nbits: u32) -> u64 {
        assert!(nbits <= 64, "read of more than 64 bits");
        assert!(off + nbits as usize <= self.len(), "bit read out of bounds");
        if nbits == 0 {
            return 0;
        }
        let word = off / 64;
        let shift = (off % 64) as u32;
        let lo = self.words[word] >> shift;
        let have = 64 - shift;
        let v = if nbits <= have {
            lo
        } else {
            lo | (self.words[word + 1] << have)
        };
        v & mask(nbits)
    }

    /// Writes the low `nbits` bits (0..=64) of `value` at bit offset `off`.
    ///
    /// # Panics
    ///
    /// Panics if `off + nbits` exceeds [`BitBuf::len`] or `nbits > 64`.
    #[inline]
    pub fn write_bits(&mut self, off: usize, value: u64, nbits: u32) {
        assert!(nbits <= 64, "write of more than 64 bits");
        assert!(
            off + nbits as usize <= self.len(),
            "bit write out of bounds"
        );
        if nbits == 0 {
            return;
        }
        let value = value & mask(nbits);
        let word = off / 64;
        let shift = (off % 64) as u32;
        let have = 64 - shift;
        if nbits <= have {
            let m = mask(nbits) << shift;
            self.words[word] = (self.words[word] & !m) | (value << shift);
        } else {
            let m0 = mask(have) << shift;
            self.words[word] = (self.words[word] & !m0) | (value << shift);
            let rest = nbits - have;
            let m1 = mask(rest);
            self.words[word + 1] = (self.words[word + 1] & !m1) | ((value >> have) & m1);
        }
    }

    /// Appends the low `nbits` bits of `value` at the end of the buffer.
    #[inline]
    pub fn push_bits(&mut self, value: u64, nbits: u32) {
        let off = self.len();
        self.grow(nbits as usize);
        self.write_bits(off, value, nbits);
    }

    /// Extends the buffer by `nbits` zero bits in place (amortised O(1)
    /// per word thanks to the vector's growth policy). The new bits are
    /// zero because the invariant keeps trailing bits of the last word
    /// zeroed.
    pub fn grow(&mut self, nbits: usize) {
        let new_len = self.len() + nbits;
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len as u32;
    }

    /// Truncates the buffer to `nbits` bits in place. Capacity is
    /// retained (use [`BitBuf::shrink_to_fit`] to release it).
    ///
    /// # Panics
    ///
    /// Panics if `nbits > len()`.
    pub fn truncate(&mut self, nbits: usize) {
        assert!(nbits <= self.len(), "truncate beyond length");
        let need = nbits.div_ceil(64);
        self.words.truncate(need);
        let rem = (nbits % 64) as u32;
        if rem != 0 {
            self.words[need - 1] &= mask(rem);
        }
        self.len = nbits as u32;
    }

    /// Opens one gap of `gap` zero bits at offset `off`, shifting all
    /// bits at `off..len` right (towards higher indices) by `gap`.
    ///
    /// This is the "shift-right" used by PH-tree entry insertion.
    pub fn insert_gap(&mut self, off: usize, gap: usize) {
        self.insert_gaps(&[(off, gap)]);
    }

    /// Opens several zero gaps in one in-place pass.
    ///
    /// `gaps` are `(offset, length)` pairs with offsets in *original*
    /// buffer coordinates, sorted ascending; each gap is inserted before
    /// the original bit at `offset` (an offset equal to `len` appends).
    ///
    /// The buffer grows to the full post-insert length once up front
    /// (one amortised vector resize), then regions between gaps are
    /// shifted right from the back — no fresh allocation per edit.
    ///
    /// ```
    /// let mut b = phbits::BitBuf::new();
    /// b.push_bits(0b1111, 4);
    /// b.insert_gaps(&[(1, 2), (3, 1)]);
    /// // 1 11 1 → 1 00 11 0 1 (LSB first)
    /// assert_eq!(b.len(), 7);
    /// assert_eq!(b.read_bits(0, 7), 0b1011001);
    /// ```
    pub fn insert_gaps(&mut self, gaps: &[(usize, usize)]) {
        let old_len = self.len();
        let total: usize = gaps.iter().map(|&(_, g)| g).sum();
        debug_assert!(gaps.windows(2).all(|w| w[0].0 <= w[1].0), "gaps sorted");
        assert!(
            gaps.iter().all(|&(off, _)| off <= old_len),
            "gap offset out of bounds"
        );
        if total == 0 {
            return;
        }
        self.grow(total);
        // Walk the gaps back-to-front: the region between gap i-1 and
        // gap i shifts right by the summed width of gaps 0..i, so the
        // cumulative shift shrinks as gaps peel off and every source
        // bit is read before anything overwrites it.
        let mut shift = total;
        let mut region_end = old_len;
        for &(off, gap) in gaps.iter().rev() {
            self.move_bits_right(off, off + shift, region_end - off);
            shift -= gap;
            self.zero_bits(off + shift, gap);
            region_end = off;
        }
    }

    /// Removes the `n` bits at `off..off + n`, shifting all later bits
    /// left (towards lower indices) by `n` and shortening the buffer.
    ///
    /// This is the "shift-left" used by PH-tree entry deletion.
    pub fn remove_range(&mut self, off: usize, n: usize) {
        self.remove_ranges(&[(off, n)]);
    }

    /// Removes several disjoint ranges in one in-place pass.
    ///
    /// `ranges` are `(offset, length)` pairs in original coordinates,
    /// sorted ascending and non-overlapping.
    ///
    /// Surviving regions are shifted left in place, then the buffer is
    /// truncated with capacity retained — deletion never touches the
    /// allocator (use [`BitBuf::shrink_to_fit`] to release the slack).
    ///
    /// ```
    /// let mut b = phbits::BitBuf::new();
    /// b.push_bits(0b1100101, 7);
    /// b.remove_ranges(&[(1, 1), (4, 2)]);
    /// // 1 0 1 0 0 1 1 → keep 1, 1 0, 1 (LSB first)
    /// assert_eq!(b.len(), 4);
    /// assert_eq!(b.read_bits(0, 4), 0b1011);
    /// ```
    pub fn remove_ranges(&mut self, ranges: &[(usize, usize)]) {
        let old_len = self.len();
        let total: usize = ranges.iter().map(|&(_, n)| n).sum();
        debug_assert!(
            ranges.windows(2).all(|w| w[0].0 + w[0].1 <= w[1].0),
            "ranges sorted and disjoint"
        );
        assert!(
            ranges.iter().all(|&(off, n)| off + n <= old_len),
            "removal range out of bounds"
        );
        if total == 0 {
            return;
        }
        let mut src = 0usize;
        let mut dst = 0usize;
        for &(off, n) in ranges {
            self.move_bits_left(src, dst, off - src);
            dst += off - src;
            src = off + n;
        }
        self.move_bits_left(src, dst, old_len - src);
        self.truncate(old_len - total);
    }

    /// Moves the `n` bits at `src..src + n` to `dst..dst + n` within
    /// this buffer, `dst >= src`. Copies back-to-front in word-sized
    /// chunks so overlapping ranges are safe: each chunk's write lands
    /// at or above every not-yet-read source bit.
    fn move_bits_right(&mut self, src: usize, dst: usize, n: usize) {
        debug_assert!(dst >= src);
        if n == 0 || dst == src {
            return;
        }
        let mut rem = n;
        while rem > 0 {
            let chunk = rem.min(64) as u32;
            rem -= chunk as usize;
            let v = self.read_bits(src + rem, chunk);
            self.write_bits(dst + rem, v, chunk);
        }
    }

    /// Moves the `n` bits at `src..src + n` to `dst..dst + n` within
    /// this buffer, `dst <= src`. Copies front-to-back in word-sized
    /// chunks; safe for overlap since writes trail the reads.
    fn move_bits_left(&mut self, src: usize, dst: usize, n: usize) {
        debug_assert!(dst <= src);
        if n == 0 || dst == src {
            return;
        }
        let mut done = 0usize;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            let v = self.read_bits(src + done, chunk);
            self.write_bits(dst + done, v, chunk);
            done += chunk as usize;
        }
    }

    /// Zeroes the `n` bits at `off..off + n`.
    fn zero_bits(&mut self, off: usize, n: usize) {
        let mut done = 0usize;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            self.write_bits(off + done, 0, chunk);
            done += chunk as usize;
        }
    }

    /// Copies `n` bits from `src` (another buffer) at `src_off` into `self`
    /// at `dst_off`. The destination range must already exist.
    ///
    /// When both offsets share the same residue mod 64 (the common case
    /// in node relayouts, where whole regions shift by multiples of the
    /// postfix stride), the middle of the range is moved with a plain
    /// word `copy_from_slice` instead of per-chunk shifting.
    pub fn copy_bits_from(&mut self, src: &BitBuf, src_off: usize, dst_off: usize, n: usize) {
        assert!(src_off + n <= src.len(), "source range out of bounds");
        assert!(dst_off + n <= self.len(), "destination range out of bounds");
        if n == 0 {
            return;
        }
        if src_off % 64 == dst_off % 64 {
            return self.copy_aligned(src, src_off, dst_off, n);
        }
        let mut done = 0;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            let v = src.read_bits(src_off + done, chunk);
            self.write_bits(dst_off + done, v, chunk);
            done += chunk as usize;
        }
    }

    /// Word-aligned copy: `src_off % 64 == dst_off % 64`. Handles the
    /// partial head word up to the boundary, block-copies full words,
    /// then merges the masked tail.
    #[inline]
    fn copy_aligned(&mut self, src: &BitBuf, src_off: usize, dst_off: usize, n: usize) {
        let mut sw = src_off / 64;
        let mut dw = dst_off / 64;
        let bit = (src_off % 64) as u32;
        let mut rem = n;
        if bit != 0 {
            let head = ((64 - bit) as usize).min(rem) as u32;
            let m = mask(head) << bit;
            self.words[dw] = (self.words[dw] & !m) | (src.words[sw] & m);
            rem -= head as usize;
            if rem == 0 {
                return;
            }
            sw += 1;
            dw += 1;
        }
        let full = rem / 64;
        self.words[dw..dw + full].copy_from_slice(&src.words[sw..sw + full]);
        let tail = (rem % 64) as u32;
        if tail != 0 {
            let m = mask(tail);
            let w = dw + full;
            self.words[w] = (self.words[w] & !m) | (src.words[sw + full] & m);
        }
    }

    /// Appends `n` bits copied from `src` at `src_off`.
    pub fn push_bits_from(&mut self, src: &BitBuf, src_off: usize, n: usize) {
        let off = self.len();
        self.grow(n);
        self.copy_bits_from(src, src_off, off, n);
    }

    /// Counts the 1-bits in the range `off..off + n`.
    ///
    /// Word-chunked: O(n/64). Used for rank queries over packed
    /// child-kind bits.
    #[inline]
    pub fn count_ones(&self, off: usize, n: usize) -> usize {
        assert!(off + n <= self.len(), "count range out of bounds");
        let mut total = 0usize;
        let mut done = 0usize;
        while done < n {
            let chunk = (n - done).min(64) as u32;
            total += self.read_bits(off + done, chunk).count_ones() as usize;
            done += chunk as usize;
        }
        total
    }

    // ------------------------------------------------------------------
    // Word-level kernels (PH-tree node hot paths)
    // ------------------------------------------------------------------

    /// Whether the `nbits` bits at `off..off + nbits` equal the packed
    /// little-endian key in `key` (word `i` holds bits `i*64..`, trailing
    /// bits of the last word are ignored).
    ///
    /// Word-chunked: one (aligned) or two (shifted) word reads per 64
    /// compared bits, instead of one `read_bits` per field.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`BitBuf::len`] or `key` holds fewer
    /// than `ceil(nbits/64)` words.
    #[inline]
    pub fn eq_range(&self, off: usize, key: &[u64], nbits: usize) -> bool {
        assert!(off + nbits <= self.len(), "eq_range out of bounds");
        if nbits == 0 {
            return true;
        }
        let nwords = nbits.div_ceil(64);
        assert!(key.len() >= nwords, "eq_range key too short");
        let word = off / 64;
        let shift = (off % 64) as u32;
        if shift == 0 {
            let full = nbits / 64;
            if self.words[word..word + full] != key[..full] {
                return false;
            }
            let rem = (nbits % 64) as u32;
            rem == 0 || (self.words[word + full] ^ key[full]) & mask(rem) == 0
        } else {
            let inv = 64 - shift;
            let mut rem = nbits;
            for (w, &k) in (word..).zip(key[..nwords].iter()) {
                let take = rem.min(64) as u32;
                let lo = self.words[w] >> shift;
                let v = if take <= inv {
                    lo
                } else {
                    lo | (self.words[w + 1] << inv)
                };
                if (v ^ k) & mask(take) != 0 {
                    return false;
                }
                rem -= take as usize;
            }
            true
        }
    }

    /// Compares the `nbits` bits at `off..` against the packed
    /// little-endian key in `key`, both interpreted as `nbits`-bit
    /// unsigned integers (bit 0 least significant).
    ///
    /// Decides from the most significant word down, so mismatching keys
    /// usually resolve on the first word.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`BitBuf::len`] or `key` holds fewer
    /// than `ceil(nbits/64)` words.
    #[inline]
    pub fn cmp_range(&self, off: usize, key: &[u64], nbits: usize) -> std::cmp::Ordering {
        assert!(off + nbits <= self.len(), "cmp_range out of bounds");
        let nwords = nbits.div_ceil(64);
        assert!(key.len() >= nwords, "cmp_range key too short");
        if nbits == 0 {
            return std::cmp::Ordering::Equal;
        }
        if nbits <= 64 {
            // Single-word fields (K <= 64 hypercube addresses) compare in
            // one extract, skipping the word loop entirely.
            let take = nbits as u32;
            return self.read_bits(off, take).cmp(&(key[0] & mask(take)));
        }
        for i in (0..nwords).rev() {
            let take = (nbits - i * 64).min(64) as u32;
            let v = self.read_bits(off + i * 64, take);
            let k = key[i] & mask(take);
            if v != k {
                return v.cmp(&k);
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Gathers `key.len()` fields of `width` bits each, laid out
    /// back-to-back from `off` (field `d` at `off + d*width`), merging
    /// field `d` into `key[d]` at bit position `shift`:
    /// `key[d] = (key[d] & !(mask << shift)) | (field << shift)`.
    ///
    /// This is the PH-tree postfix (`shift == 0`) / infix
    /// (`shift == post_len + 1`) read: the packed run is walked once
    /// with a rolling word cursor instead of `K` independent
    /// [`BitBuf::read_bits`] calls re-deriving word/bit offsets.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds [`BitBuf::len`]. Requires
    /// `width + shift <= 64` (debug-asserted).
    #[inline]
    pub fn read_key_into(&self, off: usize, width: u32, shift: u32, key: &mut [u64]) {
        if width == 0 {
            return;
        }
        debug_assert!(width + shift <= 64, "field must fit a word");
        let total = width as usize * key.len();
        assert!(off + total <= self.len(), "key read out of bounds");
        let m = mask(width);
        let place = !(m << shift);
        let mut word = off / 64;
        let mut bit = (off % 64) as u32;
        for v in key.iter_mut() {
            let lo = self.words[word] >> bit;
            let have = 64 - bit;
            let field = if width <= have {
                lo & m
            } else {
                (lo | (self.words[word + 1] << have)) & m
            };
            *v = (*v & place) | (field << shift);
            bit += width;
            if bit >= 64 {
                word += 1;
                bit -= 64;
            }
        }
    }

    /// Compares `key.len()` fields of `width` bits each in the packed
    /// run at `off` (field `d` at `off + d*width`) against bits
    /// `shift..shift + width` of `key[d]`, returning whether every field
    /// matches. The compare-side sibling of [`BitBuf::read_key_into`]:
    /// the same rolling cursor, but it exits on the first mismatching
    /// dimension — on miss-heavy probes (point queries are 50 % misses
    /// in the paper's workload) that usually means one field of work.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds [`BitBuf::len`]. Requires
    /// `width + shift <= 64` (debug-asserted).
    #[inline]
    pub fn eq_key(&self, off: usize, width: u32, shift: u32, key: &[u64]) -> bool {
        if width == 0 {
            return true;
        }
        debug_assert!(width + shift <= 64, "field must fit a word");
        let total = width as usize * key.len();
        assert!(off + total <= self.len(), "key compare out of bounds");
        let m = mask(width);
        let mut word = off / 64;
        let mut bit = (off % 64) as u32;
        for &v in key {
            let lo = self.words[word] >> bit;
            let have = 64 - bit;
            let field = if width <= have {
                lo & m
            } else {
                (lo | (self.words[word + 1] << have)) & m
            };
            if field != (v >> shift) & m {
                return false;
            }
            bit += width;
            if bit >= 64 {
                word += 1;
                bit -= 64;
            }
        }
        true
    }

    /// Scatters `key.len()` fields of `width` bits each into the packed
    /// run at `off` (field `d` at `off + d*width`), taking field `d`
    /// from bits `shift..shift + width` of `key[d]`. The write-side dual
    /// of [`BitBuf::read_key_into`]: each touched word is loaded and
    /// stored once via a rolling cursor.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds [`BitBuf::len`]. Requires
    /// `width + shift <= 64` (debug-asserted).
    #[inline]
    pub fn write_key(&mut self, off: usize, width: u32, shift: u32, key: &[u64]) {
        if width == 0 {
            return;
        }
        debug_assert!(width + shift <= 64, "field must fit a word");
        let total = width as usize * key.len();
        assert!(off + total <= self.len(), "key write out of bounds");
        let m = mask(width);
        let mut word = off / 64;
        let mut bit = (off % 64) as u32;
        let mut cur = self.words[word];
        for &v in key {
            let field = (v >> shift) & m;
            let have = 64 - bit;
            if width < have {
                cur = (cur & !(m << bit)) | (field << bit);
                bit += width;
            } else if width == have {
                cur = (cur & !(m << bit)) | (field << bit);
                self.words[word] = cur;
                word += 1;
                bit = 0;
                if word < self.words.len() {
                    cur = self.words[word];
                }
            } else {
                // Field spans into the next word: `field << bit`
                // truncates the spill, which lands in the next word.
                cur = (cur & !(u64::MAX << bit)) | (field << bit);
                self.words[word] = cur;
                word += 1;
                let spill = width - have;
                cur = (self.words[word] & !mask(spill)) | (field >> have);
                bit = spill;
            }
        }
        if bit > 0 {
            self.words[word] = cur;
        }
    }

    /// The backing words (exactly `ceil(len/64)`; bits beyond `len` in
    /// the last word are zero). For serialisation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a buffer from backing words and a bit length (the
    /// inverse of [`BitBuf::words`] + [`BitBuf::len`]).
    ///
    /// Returns `None` if `len_bits` does not fit the word count or if
    /// bits beyond `len_bits` are set (corrupt input).
    pub fn from_words(words: Box<[u64]>, len_bits: usize) -> Option<Self> {
        if words.len() != len_bits.div_ceil(64) || len_bits > u32::MAX as usize {
            return None;
        }
        let rem = (len_bits % 64) as u32;
        if rem != 0 && words[words.len() - 1] & !mask(rem) != 0 {
            return None;
        }
        Some(BitBuf {
            words: words.into_vec(),
            len: len_bits as u32,
        })
    }

    /// Returns the single bit at index `i` as a bool.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.read_bits(i, 1) != 0
    }

    /// Sets the single bit at index `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        self.write_bits(i, v as u64, 1);
    }
}

impl std::fmt::Debug for BitBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitBuf[{};", self.len)?;
        for i in 0..self.len().min(256) {
            if i % 8 == 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len() > 256 {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let b = BitBuf::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert_eq!(b.used_bytes(), 0);
        assert_eq!(b.heap_bytes(), 0);
    }

    #[test]
    fn push_and_read_small() {
        let mut b = BitBuf::new();
        b.push_bits(0b101, 3);
        b.push_bits(0b11, 2);
        assert_eq!(b.len(), 5);
        assert_eq!(b.read_bits(0, 3), 0b101);
        assert_eq!(b.read_bits(3, 2), 0b11);
        assert_eq!(b.read_bits(0, 5), 0b11101);
    }

    #[test]
    fn read_write_across_word_boundary() {
        let mut b = BitBuf::new();
        b.grow(128);
        b.write_bits(60, 0xABCD, 16);
        assert_eq!(b.read_bits(60, 16), 0xABCD);
        assert_eq!(b.read_bits(60, 4), 0xD);
        assert_eq!(b.read_bits(64, 12), 0xABC);
        // Neighbouring bits untouched.
        assert_eq!(b.read_bits(0, 60), 0);
        assert_eq!(b.read_bits(76, 52), 0);
    }

    #[test]
    fn write_full_64_at_boundary() {
        let mut b = BitBuf::new();
        b.grow(192);
        b.write_bits(64, u64::MAX, 64);
        assert_eq!(b.read_bits(64, 64), u64::MAX);
        assert_eq!(b.read_bits(0, 64), 0);
        assert_eq!(b.read_bits(128, 64), 0);
        b.write_bits(32, 0, 64);
        assert_eq!(b.read_bits(0, 32), 0);
        assert_eq!(b.read_bits(32, 64), 0);
        assert_eq!(b.read_bits(96, 32), u64::MAX >> 32);
    }

    #[test]
    fn write_unaligned_64() {
        let mut b = BitBuf::new();
        b.grow(256);
        let v = 0x0123_4567_89AB_CDEF;
        b.write_bits(13, v, 64);
        assert_eq!(b.read_bits(13, 64), v);
    }

    #[test]
    fn zero_width_ops() {
        let mut b = BitBuf::new();
        b.push_bits(0b1, 1);
        assert_eq!(b.read_bits(0, 0), 0);
        assert_eq!(b.read_bits(1, 0), 0);
        b.write_bits(1, 0xFF, 0); // no-op at end
        b.insert_gap(1, 0);
        b.remove_range(0, 0);
        assert_eq!(b.len(), 1);
        assert!(b.get(0));
    }

    #[test]
    fn insert_gap_middle() {
        let mut b = BitBuf::new();
        b.push_bits(0b1111, 4);
        b.insert_gap(2, 3);
        assert_eq!(b.len(), 7);
        assert_eq!(b.read_bits(0, 2), 0b11);
        assert_eq!(b.read_bits(2, 3), 0); // gap is zeroed
        assert_eq!(b.read_bits(5, 2), 0b11);
    }

    #[test]
    fn insert_gap_at_start_and_end() {
        let mut b = BitBuf::new();
        b.push_bits(0b1011, 4);
        b.insert_gap(0, 2);
        assert_eq!(b.read_bits(0, 2), 0);
        assert_eq!(b.read_bits(2, 4), 0b1011);
        b.insert_gap(6, 5);
        assert_eq!(b.len(), 11);
        assert_eq!(b.read_bits(6, 5), 0);
        assert_eq!(b.read_bits(2, 4), 0b1011);
    }

    #[test]
    fn insert_large_gap_shifts_whole_words() {
        let mut b = BitBuf::new();
        for i in 0..200u64 {
            b.push_bits(i & 1, 1);
        }
        let before: Vec<bool> = (0..200).map(|i| b.get(i)).collect();
        b.insert_gap(67, 130);
        assert_eq!(b.len(), 330);
        for (i, &bit) in before.iter().enumerate().take(67) {
            assert_eq!(b.get(i), bit, "prefix bit {i}");
        }
        for i in 67..197 {
            assert!(!b.get(i), "gap bit {i} should be zero");
        }
        for (i, &bit) in before.iter().enumerate().skip(67) {
            assert_eq!(b.get(i + 130), bit, "suffix bit {i}");
        }
    }

    #[test]
    fn multi_gap_insert_matches_sequential() {
        let mut base = BitBuf::new();
        for i in 0..100u64 {
            base.push_bits((i * 7) & 1, 1);
        }
        let mut multi = base.clone();
        multi.insert_gaps(&[(10, 3), (50, 7), (100, 2)]);
        let mut seq = base.clone();
        // Apply from the back so original offsets stay valid.
        seq.insert_gap(100, 2);
        seq.insert_gap(50, 7);
        seq.insert_gap(10, 3);
        assert_eq!(multi, seq);
    }

    #[test]
    fn multi_gap_adjacent_offsets() {
        let mut b = BitBuf::new();
        b.push_bits(0b11, 2);
        b.insert_gaps(&[(1, 1), (1, 1)]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.read_bits(0, 4), 0b1001);
    }

    #[test]
    fn remove_range_middle() {
        let mut b = BitBuf::new();
        b.push_bits(0b1100101, 7);
        b.remove_range(2, 3);
        assert_eq!(b.len(), 4);
        // original bits (LSB first): 1,0,1,0,0,1,1 → remove idx 2..5 → 1,0,1,1
        assert_eq!(b.read_bits(0, 4), 0b1101);
    }

    #[test]
    fn remove_range_spanning_words() {
        let mut b = BitBuf::new();
        for i in 0..300u64 {
            b.push_bits((i * 7) & 1, 1);
        }
        let before: Vec<bool> = (0..300).map(|i| b.get(i)).collect();
        b.remove_range(50, 200);
        assert_eq!(b.len(), 100);
        for (i, &bit) in before.iter().enumerate().take(50) {
            assert_eq!(b.get(i), bit);
        }
        for i in 50..100 {
            assert_eq!(b.get(i), before[i + 200]);
        }
    }

    #[test]
    fn multi_range_remove_matches_sequential() {
        let mut base = BitBuf::new();
        for i in 0..120u64 {
            base.push_bits((i * 11) & 1, 1);
        }
        let mut multi = base.clone();
        multi.remove_ranges(&[(5, 4), (40, 10), (100, 20)]);
        let mut seq = base.clone();
        seq.remove_range(100, 20);
        seq.remove_range(40, 10);
        seq.remove_range(5, 4);
        assert_eq!(multi, seq);
    }

    #[test]
    fn grow_zeroes_reclaimed_space() {
        let mut b = BitBuf::new();
        b.push_bits(u64::MAX, 64);
        b.push_bits(u64::MAX, 10);
        b.truncate(3);
        b.grow(80);
        assert_eq!(b.read_bits(0, 3), 0b111);
        for i in 3..83 {
            assert!(!b.get(i), "bit {i} must be zero after grow");
        }
    }

    #[test]
    fn with_capacity_reserves_and_shrink_releases() {
        // with_capacity must actually pre-reserve: pushes within the
        // reserved size never move the allocation.
        let mut b = BitBuf::with_capacity(64 * 10);
        assert!(b.heap_bytes() >= 80, "capacity not reserved");
        let cap = b.heap_bytes();
        for i in 0..10u64 {
            b.push_bits(i, 64);
        }
        assert_eq!(b.heap_bytes(), cap, "grow within capacity reallocated");
        assert_eq!(b.used_bytes(), 80);

        // truncate keeps capacity; shrink_to_fit releases the slack.
        b.truncate(65);
        assert_eq!(b.heap_bytes(), cap, "truncate must retain capacity");
        assert_eq!(b.used_bytes(), 16);
        b.shrink_to_fit();
        assert_eq!(b.heap_bytes(), b.used_bytes(), "slack not released");
        assert_eq!(b.read_bits(0, 64), 0);
        assert_eq!(b.read_bits(64, 1), 1);
    }

    #[test]
    fn structural_edits_amortise_allocations() {
        // remove_ranges shifts in place and keeps capacity, so a
        // follow-up insert_gaps of no more than the removed width never
        // needs a new allocation.
        let mut b = BitBuf::new();
        for i in 0..8u64 {
            b.push_bits(0x5A5A_5A5A ^ i, 64);
        }
        let cap = b.heap_bytes();
        b.remove_ranges(&[(10, 70), (200, 100)]);
        assert_eq!(b.heap_bytes(), cap, "remove must retain capacity");
        assert_eq!(b.len(), 8 * 64 - 170);
        b.insert_gaps(&[(5, 70), (100, 100)]);
        assert_eq!(b.heap_bytes(), cap, "insert within capacity reallocated");
        assert_eq!(b.len(), 8 * 64);
    }

    #[test]
    fn truncate_in_place_zeroes_tail_bits() {
        let mut b = BitBuf::new();
        b.push_bits(u64::MAX, 64);
        b.truncate(3);
        // Invariant: bits beyond len in the last word are zero, so a
        // grow re-exposes zeros, and words() shows a masked last word.
        assert_eq!(b.words(), &[0b111]);
        b.grow(61);
        assert_eq!(b.read_bits(0, 64), 0b111);
    }

    #[test]
    fn eq_range_aligned_and_shifted() {
        let mut b = BitBuf::new();
        let payload = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210, 0x5555];
        b.grow(7); // force a shifted copy at offset 7
        for &w in &payload {
            b.push_bits(w, 64);
        }
        // Shifted compare over sub-word, word and multi-word lengths.
        for nbits in [1usize, 13, 64, 65, 100, 128, 150, 192] {
            let mut key = [0u64; 3];
            for (i, k) in key.iter_mut().enumerate() {
                if nbits > i * 64 {
                    let take = (nbits - i * 64).min(64) as u32;
                    *k = b.read_bits(7 + i * 64, take);
                }
            }
            assert!(b.eq_range(7, &key, nbits), "nbits {nbits}");
            if nbits > 0 {
                key[(nbits - 1) / 64] ^= 1 << ((nbits - 1) % 64);
                assert!(!b.eq_range(7, &key, nbits), "flip at {nbits}");
            }
        }
        // Aligned path (offset 64).
        let mut key = [b.read_bits(64, 64), b.read_bits(128, 32)];
        assert!(b.eq_range(64, &key, 96));
        key[1] ^= 1 << 31;
        assert!(!b.eq_range(64, &key, 96));
    }

    #[test]
    fn cmp_range_orders_like_integers() {
        use std::cmp::Ordering::*;
        let mut b = BitBuf::new();
        b.grow(5);
        b.push_bits(500, 10);
        b.push_bits(0xABCD_EF01_2345_6789, 64);
        // A 70-bit value (high bits zero), pushed in two pieces.
        b.push_bits(0x3FF, 64);
        b.push_bits(0, 6);
        assert_eq!(b.cmp_range(5, &[500], 10), Equal);
        assert_eq!(b.cmp_range(5, &[499], 10), Greater);
        assert_eq!(b.cmp_range(5, &[501], 10), Less);
        // Trailing key bits beyond nbits are ignored.
        assert_eq!(b.cmp_range(5, &[500 | (1 << 10)], 10), Equal);
        assert_eq!(b.cmp_range(15, &[0xABCD_EF01_2345_6789], 64), Equal);
        // Multi-word: decided by the high word first.
        assert_eq!(b.cmp_range(79, &[0x3FF, 0], 70), Equal);
        assert_eq!(b.cmp_range(79, &[0, 1], 70), Less);
        assert_eq!(b.cmp_range(79, &[u64::MAX, 0], 70), Less);
    }

    #[test]
    fn key_gather_scatter_roundtrip() {
        // Postfix-style (shift 0) and infix-style (shift > 0) fields at
        // an awkward offset, spanning several words.
        let key = [0x1A5u64, 0x0F3, 0x1FF, 0x000, 0x155];
        for shift in [0u32, 5] {
            let shifted: Vec<u64> = key.iter().map(|&v| v << shift).collect();
            for width in [1u32, 9, 37, 59] {
                let mut b = BitBuf::new();
                b.grow(3 + width as usize * key.len() + 64);
                b.write_key(3, width, shift, &shifted);
                // Each field lands at its strided offset.
                for (d, &v) in key.iter().enumerate() {
                    assert_eq!(
                        b.read_bits(3 + d * width as usize, width),
                        v & mask(width),
                        "width {width} shift {shift} dim {d}"
                    );
                }
                // Gather merges into existing high bits without clobber.
                let mut out = vec![u64::MAX; key.len()];
                b.read_key_into(3, width, shift, &mut out);
                for (d, &v) in key.iter().enumerate() {
                    let expect = !(mask(width) << shift) | ((v & mask(width)) << shift);
                    assert_eq!(out[d], expect, "width {width} shift {shift} dim {d}");
                }
            }
        }
    }

    #[test]
    fn write_key_preserves_neighbours() {
        let mut b = BitBuf::new();
        b.grow(200);
        for i in 0..200 {
            b.set(i, i % 3 == 0);
        }
        let before: Vec<bool> = (0..200).map(|i| b.get(i)).collect();
        b.write_key(70, 17, 0, &[0x1ABCD, 0x05432, 0x1FFFF]);
        for (i, &bit) in before.iter().enumerate() {
            if !(70..70 + 51).contains(&i) {
                assert_eq!(b.get(i), bit, "neighbour bit {i} clobbered");
            }
        }
        let mut out = [0u64; 3];
        b.read_key_into(70, 17, 0, &mut out);
        assert_eq!(out, [0x1ABCD, 0x05432, 0x1FFFF]);
    }

    #[test]
    fn aligned_copy_matches_generic() {
        let mut src = BitBuf::new();
        for i in 0..6u64 {
            src.push_bits(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1), 64);
        }
        for (src_off, dst_off, n) in [
            (0usize, 64usize, 256usize), // fully word-aligned
            (13, 13, 200),               // equal non-zero residue
            (13, 77, 200),               // equal residue, different words
            (70, 6, 63),                 // shorter than a word
            (1, 65, 1),
        ] {
            let mut fast = BitBuf::zeroed(512);
            fast.copy_bits_from(&src, src_off, dst_off, n);
            let mut slow = BitBuf::zeroed(512);
            let mut done = 0;
            while done < n {
                let chunk = (n - done).min(61) as u32; // odd chunk, generic path
                slow.write_bits(dst_off + done, src.read_bits(src_off + done, chunk), chunk);
                done += chunk as usize;
            }
            assert_eq!(fast, slow, "src {src_off} dst {dst_off} n {n}");
        }
    }

    #[test]
    fn copy_between_buffers() {
        let mut a = BitBuf::new();
        a.push_bits(0xDEAD_BEEF, 32);
        let mut b = BitBuf::new();
        b.grow(40);
        b.copy_bits_from(&a, 4, 7, 24);
        assert_eq!(b.read_bits(7, 24), (0xDEAD_BEEF >> 4) & 0xFF_FFFF);
        let mut c = BitBuf::new();
        c.push_bits_from(&a, 0, 32);
        assert_eq!(c.read_bits(0, 32), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let b = BitBuf::new();
        b.read_bits(0, 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut b = BitBuf::new();
        b.grow(8);
        b.write_bits(5, 0, 4);
    }

    #[test]
    fn truncate_then_reuse() {
        let mut b = BitBuf::new();
        b.push_bits(0xFF, 8);
        b.truncate(0);
        assert!(b.is_empty());
        b.push_bits(0b01, 2);
        assert_eq!(b.read_bits(0, 2), 0b01);
    }

    #[test]
    fn count_ones_ranges() {
        let mut b = BitBuf::new();
        for i in 0..200u64 {
            b.push_bits((i % 3 == 0) as u64, 1);
        }
        let expect = |off: usize, n: usize| (off..off + n).filter(|i| i % 3 == 0).count();
        for (off, n) in [(0, 200), (0, 0), (5, 64), (63, 2), (1, 130), (199, 1)] {
            assert_eq!(b.count_ones(off, n), expect(off, n), "off {off} n {n}");
        }
    }

    #[test]
    fn set_get_individual_bits() {
        let mut b = BitBuf::new();
        b.grow(130);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(62) && !b.get(65) && !b.get(128));
        b.set(63, false);
        assert!(!b.get(63));
    }
}
