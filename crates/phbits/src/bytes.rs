//! Read-only bit-stream kernels over **unaligned byte slices**.
//!
//! [`crate::BitBuf`] owns its words; the packed read-only tree format
//! (crate `phpack`) instead walks node bit strings *borrowed from disk
//! pages*, where no alignment can be assumed — a record starts at an
//! arbitrary byte offset inside a 4 KiB page and the backing buffer is
//! only byte-aligned. These kernels mirror the `BitBuf` read surface on
//! `&[u8]` with the identical bit order (bit `i` of the stream is bit
//! `i % 8` of byte `i / 8` — exactly what serialising `BitBuf::words`
//! little-endian produces), so a bit string written from a `BitBuf` can
//! be re-read in place without copying it into words first.
//!
//! All reads **zero-pad past the end of the slice** instead of
//! panicking: the packed reader's corruption handling requires that no
//! hostile length field can turn a bit read into a panic. Callers
//! validate record bounds once per node; the zero padding is the
//! belt-and-braces backstop behind that check.

/// Loads up to 8 bytes little-endian starting at `byte`, zero-padding
/// past the end of `buf`.
#[inline]
fn load64(buf: &[u8], byte: usize) -> u64 {
    if let Some(chunk) = buf.get(byte..byte + 8) {
        return u64::from_le_bytes(chunk.try_into().unwrap());
    }
    let mut out = [0u8; 8];
    if let Some(tail) = buf.get(byte..) {
        out[..tail.len()].copy_from_slice(tail);
    }
    u64::from_le_bytes(out)
}

#[inline]
fn mask(nbits: u32) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

/// Reads `nbits` (≤ 64) starting at bit offset `off`, LSB-first.
/// Bits past the end of `buf` read as zero.
#[inline]
pub fn read_bits(buf: &[u8], off: usize, nbits: u32) -> u64 {
    debug_assert!(nbits <= 64);
    if nbits == 0 {
        return 0;
    }
    let byte = off / 8;
    let bit = (off % 8) as u32;
    let lo = load64(buf, byte) >> bit;
    let have = 64 - bit;
    let v = if nbits <= have {
        lo
    } else {
        // A ≤64-bit field at bit offset 1..=7 spans at most 9 bytes.
        let hi = *buf.get(byte + 8).unwrap_or(&0) as u64;
        lo | (hi << have)
    };
    v & mask(nbits)
}

/// Counts set bits in the `n`-bit run starting at `off` (word-chunked
/// popcount, the sibling of [`crate::BitBuf::count_ones`]).
pub fn count_ones(buf: &[u8], off: usize, n: usize) -> usize {
    let mut total = 0usize;
    let mut done = 0usize;
    while done < n {
        let chunk = (n - done).min(64) as u32;
        total += read_bits(buf, off + done, chunk).count_ones() as usize;
        done += chunk as usize;
    }
    total
}

/// Gathers `key.len()` fields of `width` bits each from the packed run
/// at `off` (field `d` at `off + d*width`) into bits
/// `shift..shift + width` of `key[d]`, preserving the other bits —
/// the byte-slice sibling of [`crate::BitBuf::read_key_into`].
/// Requires `width + shift <= 64` (debug-asserted).
#[inline]
pub fn read_key_into(buf: &[u8], off: usize, width: u32, shift: u32, key: &mut [u64]) {
    if width == 0 {
        return;
    }
    debug_assert!(width + shift <= 64, "field must fit a word");
    let m = mask(width);
    let place = !(m << shift);
    let mut pos = off;
    for v in key.iter_mut() {
        let field = read_bits(buf, pos, width);
        *v = (*v & place) | (field << shift);
        pos += width as usize;
    }
}

/// Compares `key.len()` fields of `width` bits each in the packed run
/// at `off` against bits `shift..shift + width` of `key[d]`, exiting on
/// the first mismatch — the byte-slice sibling of
/// [`crate::BitBuf::eq_key`]. Requires `width + shift <= 64`
/// (debug-asserted).
#[inline]
pub fn eq_key(buf: &[u8], off: usize, width: u32, shift: u32, key: &[u64]) -> bool {
    if width == 0 {
        return true;
    }
    debug_assert!(width + shift <= 64, "field must fit a word");
    let m = mask(width);
    let mut pos = off;
    for &v in key {
        if read_bits(buf, pos, width) != (v >> shift) & m {
            return false;
        }
        pos += width as usize;
    }
    true
}

/// Three-way compare of the `nbits`-bit run at `off` against the
/// packed little-endian bit string in `key` (the byte-slice sibling of
/// [`crate::BitBuf::cmp_range`]): runs are compared word-by-word from
/// the low end, with the **higher** bit positions more significant.
pub fn cmp_range(buf: &[u8], off: usize, key: &[u64], nbits: usize) -> std::cmp::Ordering {
    // Compare from the most-significant chunk down.
    let mut remaining = nbits;
    while remaining > 0 {
        let chunk = if remaining.is_multiple_of(64) {
            64
        } else {
            (remaining % 64) as u32
        };
        remaining -= chunk as usize;
        let stored = read_bits(buf, off + remaining, chunk);
        let probe = (key[remaining / 64] >> (remaining % 64)) & mask(chunk);
        match stored.cmp(&probe) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitBuf;

    /// Serialises a BitBuf the way the packed format stores bit
    /// strings: backing words little-endian, truncated to whole bytes.
    fn to_bytes(b: &BitBuf) -> Vec<u8> {
        let mut out = Vec::with_capacity(b.words().len() * 8);
        for w in b.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(b.len().div_ceil(8));
        out
    }

    fn sample_buf(nbits: usize, seed: u64) -> BitBuf {
        let mut b = BitBuf::zeroed(nbits);
        let mut x = seed | 1;
        for i in 0..nbits {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b.set(i, x >> 60 > 7);
        }
        b
    }

    #[test]
    fn read_bits_matches_bitbuf() {
        let b = sample_buf(517, 42);
        let bytes = to_bytes(&b);
        for off in [0usize, 1, 7, 8, 63, 64, 65, 100, 300, 511] {
            for n in [1u32, 2, 7, 8, 9, 31, 32, 33, 63, 64] {
                if off + n as usize > b.len() {
                    continue;
                }
                assert_eq!(
                    read_bits(&bytes, off, n),
                    b.read_bits(off, n),
                    "off {off} n {n}"
                );
            }
        }
    }

    #[test]
    fn reads_past_end_are_zero() {
        let bytes = [0xFFu8; 4];
        assert_eq!(read_bits(&bytes, 0, 64), 0xFFFF_FFFF);
        assert_eq!(read_bits(&bytes, 30, 10), 0b11);
        assert_eq!(read_bits(&bytes, 32, 8), 0);
        assert_eq!(read_bits(&bytes, 1000, 64), 0);
        assert_eq!(count_ones(&bytes, 0, 4096), 32);
    }

    #[test]
    fn count_ones_matches_bitbuf() {
        let b = sample_buf(700, 9);
        let bytes = to_bytes(&b);
        for (off, n) in [(0usize, 700usize), (3, 130), (64, 64), (65, 63), (699, 1)] {
            assert_eq!(count_ones(&bytes, off, n), b.count_ones(off, n));
        }
    }

    #[test]
    fn key_gather_and_compare_match_bitbuf() {
        let mut b = BitBuf::zeroed(4 * 21 + 11);
        let key = [0xDEAD_BEEF_u64, 0x1234_5678_9ABC_DEF0, 7, u64::MAX];
        b.write_key(11, 21, 3, &key);
        let bytes = to_bytes(&b);

        let mut got_a = [0u64; 4];
        let mut got_b = [0u64; 4];
        b.read_key_into(11, 21, 3, &mut got_a);
        read_key_into(&bytes, 11, 21, 3, &mut got_b);
        assert_eq!(got_a, got_b);

        assert!(eq_key(&bytes, 11, 21, 3, &key));
        let mut off_key = key;
        off_key[2] ^= 1 << 3;
        assert!(!eq_key(&bytes, 11, 21, 3, &off_key));
        // A flip below `shift` is outside the compared field.
        let mut low_key = key;
        low_key[2] ^= 1;
        assert!(eq_key(&bytes, 11, 21, 3, &low_key));
    }

    #[test]
    fn cmp_range_matches_bitbuf() {
        let b = sample_buf(300, 77);
        let bytes = to_bytes(&b);
        for off in [0usize, 5, 64, 130] {
            for nbits in [1usize, 8, 22, 64, 65, 128] {
                if off + nbits > b.len() {
                    continue;
                }
                // Probe with the stored value (Equal) and perturbed
                // values (must agree with BitBuf::cmp_range).
                let words = nbits.div_ceil(64);
                let mut probe = vec![0u64; words];
                for (w, word) in probe.iter_mut().enumerate() {
                    let chunk = (nbits - w * 64).min(64) as u32;
                    *word = b.read_bits(off + w * 64, chunk);
                }
                assert_eq!(
                    cmp_range(&bytes, off, &probe, nbits),
                    std::cmp::Ordering::Equal
                );
                for delta in [1u64, 1 << (nbits.min(64) - 1).min(63)] {
                    let mut p = probe.clone();
                    p[0] = p[0].wrapping_add(delta);
                    if nbits < 64 {
                        p[0] &= (1u64 << nbits) - 1;
                    }
                    assert_eq!(
                        cmp_range(&bytes, off, &p, nbits),
                        b.cmp_range(off, &p, nbits),
                        "off {off} nbits {nbits} delta {delta}"
                    );
                }
            }
        }
    }
}
