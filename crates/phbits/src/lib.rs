//! Bit-stream storage substrate for the PH-tree.
//!
//! The PH-tree (Zäschke et al., SIGMOD 2014) serialises the data of each
//! node — the node's shared prefix ("infix") and the per-entry key
//! remainders ("postfixes") — into a single packed bit string instead of
//! keeping one heap object per value. This crate provides that substrate:
//!
//! * [`BitBuf`] — a growable, packed bit buffer with random-access reads
//!   and writes of up to 64 bits, plus *bit-range insertion* (shift-right)
//!   and *bit-range removal* (shift-left), the two operations the paper
//!   identifies as the cost drivers of node updates (Sect. 3.6 / 4.3.4).
//! * [`hc`] — hypercube address manipulation: extracting the `k`-bit
//!   hypercube address of a key at a given bit depth, and the range-query
//!   mask machinery (`mL`/`mU`) of Sect. 3.5, including the constant-time
//!   "next valid address" successor function.
//! * [`num`] — small numeric helpers (diverging-bit search between keys).
//!
//! The crate is deliberately free of dependencies and `unsafe` code; all
//! operations are word-wise (not bit-by-bit) so shifting an `n`-bit range
//! costs `O(n/64)` word operations.

#![warn(missing_docs)]

mod buf;
pub mod bytes;
pub mod hc;
pub mod num;

pub use buf::BitBuf;
