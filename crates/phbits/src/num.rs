//! Small numeric helpers shared by the PH-tree and the crit-bit baseline.

/// Returns the highest bit position (0..=63) at which any dimension of
/// `a` and `b` differ, or `None` if the keys are equal.
///
/// This is the bit depth at which a new sub-node must split when two keys
/// collide in one hypercube slot.
#[inline]
pub fn max_diverging_bit(a: &[u64], b: &[u64]) -> Option<u32> {
    let mut x = 0u64;
    for (&va, &vb) in a.iter().zip(b) {
        x |= va ^ vb;
    }
    if x == 0 {
        None
    } else {
        Some(63 - x.leading_zeros())
    }
}

/// Returns true if all dimensions of `a` and `b` agree on the bit range
/// `lo..=hi` (inclusive, 0 = LSB).
#[inline]
pub fn bits_equal_in_range(a: &[u64], b: &[u64], lo: u32, hi: u32) -> bool {
    debug_assert!(lo <= hi && hi < 64);
    let width = hi - lo + 1;
    let m = if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    };
    a.iter().zip(b).all(|(&va, &vb)| (va ^ vb) & m == 0)
}

/// Mask with bits `0..nbits` set.
#[inline]
pub fn low_mask(nbits: u32) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

/// Packs one field per dimension of `key` — `width` bits taken at bit
/// position `shift` of each component — back-to-back into the
/// little-endian word array `out`, returning the total bit count
/// (`key.len() * width`).
///
/// This builds the comparand for [`BitBuf::eq_range`] /
/// [`BitBuf::cmp_range`]: the packed form is exactly what the PH-tree
/// node stores for a postfix (`shift == 0`) or infix
/// (`shift == post_len + 1`) run. The first `ceil(total/64)` words of
/// `out` are fully overwritten; since `width <= 63`, a `[u64; K]`
/// scratch always suffices for `K` dimensions.
///
/// [`BitBuf::eq_range`]: crate::BitBuf::eq_range
/// [`BitBuf::cmp_range`]: crate::BitBuf::cmp_range
///
/// # Panics
///
/// Panics if `out` holds fewer than `ceil(total/64)` words. Requires
/// `width + shift <= 64` (debug-asserted).
#[inline]
pub fn pack_key(key: &[u64], shift: u32, width: u32, out: &mut [u64]) -> usize {
    debug_assert!(width + shift <= 64, "field must fit a word");
    let total = width as usize * key.len();
    let nwords = total.div_ceil(64);
    assert!(out.len() >= nwords, "pack_key scratch too small");
    for w in out[..nwords].iter_mut() {
        *w = 0;
    }
    if width == 0 {
        return 0;
    }
    let m = low_mask(width);
    let mut word = 0usize;
    let mut bit = 0u32;
    for &v in key {
        let field = (v >> shift) & m;
        out[word] |= field << bit;
        let have = 64 - bit;
        if width >= have {
            word += 1;
            bit = width - have;
            if bit > 0 {
                out[word] = field >> have;
            }
        } else {
            bit += width;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverging_bit_basic() {
        assert_eq!(max_diverging_bit(&[0b1000], &[0b1001]), Some(0));
        assert_eq!(max_diverging_bit(&[0b1000], &[0b0000]), Some(3));
        assert_eq!(max_diverging_bit(&[5, 5], &[5, 5]), None);
        // Divergence across dimensions takes the max.
        assert_eq!(max_diverging_bit(&[0b001, 0b100], &[0b000, 0b000]), Some(2));
    }

    #[test]
    fn diverging_bit_msb() {
        assert_eq!(max_diverging_bit(&[1 << 63], &[0]), Some(63));
    }

    #[test]
    fn bits_equal_ranges() {
        let a = [0b1010_1010u64];
        let b = [0b1010_0110u64];
        // Bits 4..=7 agree, bits 2..=3 differ.
        assert!(bits_equal_in_range(&a, &b, 4, 7));
        assert!(!bits_equal_in_range(&a, &b, 2, 3));
        assert!(bits_equal_in_range(&a, &b, 0, 1));
        assert!(bits_equal_in_range(&a, &a, 0, 63));
    }

    #[test]
    fn low_mask_widths() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn pack_key_matches_bitbuf_layout() {
        // pack_key must produce exactly the words a BitBuf holds after
        // writing the same fields with write_key.
        let key = [0xDEAD_BEEF_u64, 0x1234_5678, u64::MAX, 0, 0xA5A5];
        for (width, shift) in [(1u32, 0u32), (7, 0), (13, 5), (31, 0), (59, 5), (63, 1)] {
            let total = width as usize * key.len();
            let shifted: Vec<u64> = key.iter().map(|&v| v << shift).collect();
            let mut buf = crate::BitBuf::zeroed(total);
            buf.write_key(0, width, shift, &shifted);
            let mut out = [u64::MAX; 5]; // dirty scratch must be overwritten
            let nbits = pack_key(&key, 0, width, &mut out);
            assert_eq!(nbits, total);
            assert_eq!(&out[..total.div_ceil(64)], buf.words(), "w={width}");
            // shift only selects which source bits are packed.
            let mut out2 = [0u64; 5];
            pack_key(&shifted, shift, width, &mut out2);
            assert_eq!(
                out[..total.div_ceil(64)],
                out2[..total.div_ceil(64)],
                "w={width} s={shift}"
            );
        }
    }

    #[test]
    fn pack_key_zero_width() {
        let mut out = [u64::MAX; 2];
        assert_eq!(pack_key(&[1, 2, 3], 0, 0, &mut out), 0);
    }
}
