//! Small numeric helpers shared by the PH-tree and the crit-bit baseline.

/// Returns the highest bit position (0..=63) at which any dimension of
/// `a` and `b` differ, or `None` if the keys are equal.
///
/// This is the bit depth at which a new sub-node must split when two keys
/// collide in one hypercube slot.
#[inline]
pub fn max_diverging_bit(a: &[u64], b: &[u64]) -> Option<u32> {
    let mut x = 0u64;
    for (&va, &vb) in a.iter().zip(b) {
        x |= va ^ vb;
    }
    if x == 0 {
        None
    } else {
        Some(63 - x.leading_zeros())
    }
}

/// Returns true if all dimensions of `a` and `b` agree on the bit range
/// `lo..=hi` (inclusive, 0 = LSB).
#[inline]
pub fn bits_equal_in_range(a: &[u64], b: &[u64], lo: u32, hi: u32) -> bool {
    debug_assert!(lo <= hi && hi < 64);
    let width = hi - lo + 1;
    let m = if width == 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    };
    a.iter().zip(b).all(|(&va, &vb)| (va ^ vb) & m == 0)
}

/// Mask with bits `0..nbits` set.
#[inline]
pub fn low_mask(nbits: u32) -> u64 {
    if nbits >= 64 {
        u64::MAX
    } else {
        (1u64 << nbits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverging_bit_basic() {
        assert_eq!(max_diverging_bit(&[0b1000], &[0b1001]), Some(0));
        assert_eq!(max_diverging_bit(&[0b1000], &[0b0000]), Some(3));
        assert_eq!(max_diverging_bit(&[5, 5], &[5, 5]), None);
        // Divergence across dimensions takes the max.
        assert_eq!(max_diverging_bit(&[0b001, 0b100], &[0b000, 0b000]), Some(2));
    }

    #[test]
    fn diverging_bit_msb() {
        assert_eq!(max_diverging_bit(&[1 << 63], &[0]), Some(63));
    }

    #[test]
    fn bits_equal_ranges() {
        let a = [0b1010_1010u64];
        let b = [0b1010_0110u64];
        // Bits 4..=7 agree, bits 2..=3 differ.
        assert!(bits_equal_in_range(&a, &b, 4, 7));
        assert!(!bits_equal_in_range(&a, &b, 2, 3));
        assert!(bits_equal_in_range(&a, &b, 0, 1));
        assert!(bits_equal_in_range(&a, &a, 0, 63));
    }

    #[test]
    fn low_mask_widths() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }
}
