//! Dataset and query-workload generators for the PH-tree evaluation
//! (paper Sect. 4.2).
//!
//! Three datasets drive every experiment in the paper:
//!
//! * **CUBE** — up to 10⁸ points uniform in `[0,1]^k` ([`cube`]).
//! * **CLUSTER** — 10 000 evenly spaced clusters of extent `10⁻⁵` along
//!   the line `x ∈ [0,1]`, all other coordinates at a fixed offset
//!   (0.5 in the original, 0.4 in the paper's CLUSTER0.4 variant that
//!   avoids the IEEE exponent boundary) ([`cluster`]).
//! * **TIGER/Line** — 18.4 M unique 2-D points from the US Census
//!   TIGER/Line KML poly-lines. The real dataset is not redistributable
//!   here, so [`tiger_like`] generates a synthetic equivalent: clustered
//!   "counties" over the same bounding box (−125 ≤ x ≤ −65,
//!   24 ≤ y ≤ 50) emitting random-walk poly-line vertices, delivered
//!   county-by-county like the original loader. This preserves the
//!   properties the paper's experiments exercise: strong local
//!   clustering (prefix sharing), bounded coordinates and
//!   spatially-correlated insertion order.
//!
//! All generators are deterministic given a seed. Query workload
//! builders for the point- and range-query experiments live here too.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of clusters in the CLUSTER dataset (paper Sect. 4.2).
pub const CLUSTER_COUNT: usize = 10_000;
/// Extent of each cluster in every dimension (paper Sect. 4.2).
pub const CLUSTER_EXTENT: f64 = 0.00001;

/// TIGER-like bounding box: `x` range (degrees longitude, mainland US).
pub const TIGER_X: (f64, f64) = (-125.0, -65.0);
/// TIGER-like bounding box: `y` range (degrees latitude).
pub const TIGER_Y: (f64, f64) = (24.0, 50.0);

/// The CUBE dataset: `n` points uniform in `[0,1]^K`.
///
/// ```
/// let pts = datasets::cube::<3>(100, 42);
/// assert_eq!(pts.len(), 100);
/// assert!(pts.iter().all(|p| p.iter().all(|&c| (0.0..1.0).contains(&c))));
/// ```
pub fn cube<const K: usize>(n: usize, seed: u64) -> Vec<[f64; K]> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0BE);
    (0..n)
        .map(|_| std::array::from_fn(|_| rng.gen::<f64>()))
        .collect()
}

/// The CLUSTER dataset: `n` points spread over [`CLUSTER_COUNT`] evenly
/// spaced clusters along the x-axis; all other dimensions sit at
/// `offset` (0.5 = the paper's CLUSTER0.5, 0.4 = CLUSTER0.4).
///
/// Each cluster extends [`CLUSTER_EXTENT`] in every dimension, is
/// filled uniformly and is **centred** on its nominal position —
/// Sect. 4.3.6 describes the CLUSTER0.5 clusters as reaching *from
/// 0.49995 to 0.50005*, i.e. straddling 0.5 and therefore the IEEE
/// exponent boundary, which is exactly what triggers the paper's
/// space blow-up. Points are emitted cluster by cluster.
///
/// ```
/// let pts = datasets::cluster::<3>(1000, 0.5, 42);
/// assert_eq!(pts.len(), 1000);
/// assert!(pts.iter().all(|p| (p[1] - 0.5).abs() <= datasets::CLUSTER_EXTENT));
/// // Some points fall below the exponent boundary, some above.
/// assert!(pts.iter().any(|p| p[1] < 0.5) && pts.iter().any(|p| p[1] >= 0.5));
/// ```
pub fn cluster<const K: usize>(n: usize, offset: f64, seed: u64) -> Vec<[f64; K]> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC105);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        // Evenly distribute points over the clusters, keeping cluster
        // locality in the emission order (like a generated file would).
        let c = i * CLUSTER_COUNT / n.max(1);
        let cx = (c.min(CLUSTER_COUNT - 1)) as f64 / CLUSTER_COUNT as f64;
        let p: [f64; K] = std::array::from_fn(|d| {
            let base = if d == 0 { cx } else { offset };
            base + (rng.gen::<f64>() - 0.5) * CLUSTER_EXTENT
        });
        out.push(p);
    }
    out
}

/// A synthetic stand-in for the 2-D TIGER/Line point extract (see the
/// module docs for the substitution rationale).
///
/// `n` unique points are produced from ~3000 "counties": cluster centres
/// drawn non-uniformly over the US-mainland bounding box, each emitting
/// random-walk poly-lines whose vertices become the points. Counties are
/// emitted in sequence, reproducing the original loader's
/// county-by-county insertion order and its irregular kD-tree loading
/// behaviour (paper Sect. 4.3.1).
pub fn tiger_like(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7163);
    let n_counties = 3000.min(n.max(1));
    let mut out = Vec::with_capacity(n);
    // County centres: denser towards the "east" (higher x), mimicking
    // population density, with varying spread.
    let centres: Vec<([f64; 2], f64, usize)> = (0..n_counties)
        .map(|_| {
            let u: f64 = rng.gen();
            let x = TIGER_X.0 + (TIGER_X.1 - TIGER_X.0) * u.sqrt();
            let y = TIGER_Y.0 + (TIGER_Y.1 - TIGER_Y.0) * rng.gen::<f64>();
            let spread = 0.05 + rng.gen::<f64>() * 0.6; // county size, degrees
            let weight = 1 + rng.gen_range(0..10usize); // relative point count
            ([x, y], spread, weight)
        })
        .collect();
    let total_weight: usize = centres.iter().map(|c| c.2).sum();
    for (centre, spread, weight) in &centres {
        let county_points = n * weight / total_weight;
        let mut p;
        let mut emitted = 0;
        while emitted < county_points {
            // One poly-line: a bounded random walk from a fresh start.
            p = [
                (centre[0] + (rng.gen::<f64>() - 0.5) * spread).clamp(TIGER_X.0, TIGER_X.1),
                (centre[1] + (rng.gen::<f64>() - 0.5) * spread).clamp(TIGER_Y.0, TIGER_Y.1),
            ];
            let segs = 5 + rng.gen_range(0..60usize);
            for _ in 0..segs.min(county_points - emitted) {
                p[0] = (p[0] + (rng.gen::<f64>() - 0.5) * 0.01).clamp(TIGER_X.0, TIGER_X.1);
                p[1] = (p[1] + (rng.gen::<f64>() - 0.5) * 0.01).clamp(TIGER_Y.0, TIGER_Y.1);
                out.push(p);
                emitted += 1;
            }
        }
    }
    // Top up rounding losses with extra vertices in the last county.
    while out.len() < n {
        let (centre, spread, _) = centres[out.len() % n_counties];
        out.push([
            (centre[0] + (rng.gen::<f64>() - 0.5) * spread).clamp(TIGER_X.0, TIGER_X.1),
            (centre[1] + (rng.gen::<f64>() - 0.5) * spread).clamp(TIGER_Y.0, TIGER_Y.1),
        ]);
    }
    out.truncate(n);
    out
}

/// Point-query workload (paper Sect. 4.3.2): each query has a 50% chance
/// of hitting an existing point, otherwise it is a random coordinate
/// within `[lo, hi]` per dimension.
pub fn point_query_mix<const K: usize>(
    data: &[[f64; K]],
    n_queries: usize,
    lo: &[f64; K],
    hi: &[f64; K],
    seed: u64,
) -> Vec<[f64; K]> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9907);
    (0..n_queries)
        .map(|_| {
            if !data.is_empty() && rng.gen_bool(0.5) {
                data[rng.gen_range(0..data.len())]
            } else {
                std::array::from_fn(|d| rng.gen_range(lo[d]..=hi[d]))
            }
        })
        .collect()
}

/// Range-query workload for CUBE/TIGER (paper Sect. 4.3.3): axis-aligned
/// boxes inside `[lo, hi]` whose edges have random lengths except one
/// randomly chosen edge, which is adjusted so the box covers `coverage`
/// of the total volume (1% for TIGER, 0.1% for CUBE).
pub fn range_queries<const K: usize>(
    n_queries: usize,
    lo: &[f64; K],
    hi: &[f64; K],
    coverage: f64,
    seed: u64,
) -> Vec<([f64; K], [f64; K])> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
    let span: [f64; K] = std::array::from_fn(|d| hi[d] - lo[d]);
    let mut out = Vec::with_capacity(n_queries);
    while out.len() < n_queries {
        // Edge fractions in (0,1]; one edge absorbs the residual.
        let mut frac: [f64; K] = std::array::from_fn(|_| rng.gen::<f64>().max(1e-6));
        let j = rng.gen_range(0..K);
        let others: f64 = (0..K).filter(|&d| d != j).map(|d| frac[d]).product();
        let fj = coverage / others;
        if fj > 1.0 {
            continue; // resample: cannot reach the coverage with these edges
        }
        frac[j] = fj;
        let min: [f64; K] =
            std::array::from_fn(|d| lo[d] + rng.gen::<f64>() * (1.0 - frac[d]) * span[d]);
        let max: [f64; K] = std::array::from_fn(|d| min[d] + frac[d] * span[d]);
        out.push((min, max));
    }
    out
}

/// Range-query workload for CLUSTER (paper Sect. 4.3.3): boxes covering
/// the full `[0,1]` range in every dimension except `x`, where they
/// extend 0.01% (10⁻⁴) and start at a random position in `[0, 0.1]`.
pub fn cluster_range_queries<const K: usize>(
    n_queries: usize,
    seed: u64,
) -> Vec<([f64; K], [f64; K])> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5);
    (0..n_queries)
        .map(|_| {
            let x0 = rng.gen::<f64>() * 0.1;
            let min: [f64; K] = std::array::from_fn(|d| if d == 0 { x0 } else { 0.0 });
            let max: [f64; K] = std::array::from_fn(|d| if d == 0 { x0 + 1e-4 } else { 1.0 });
            (min, max)
        })
        .collect()
}

/// Removes duplicate points (the paper deduplicates TIGER/Line from
/// 36.8 M to 18.4 M points); order of first occurrence is preserved.
pub fn dedup<const K: usize>(points: Vec<[f64; K]>) -> Vec<[f64; K]> {
    let mut seen = std::collections::HashSet::with_capacity(points.len());
    points
        .into_iter()
        .filter(|p| seen.insert(p.map(f64::to_bits)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_is_deterministic_and_in_range() {
        let a = cube::<4>(500, 7);
        let b = cube::<4>(500, 7);
        assert_eq!(a, b);
        let c = cube::<4>(500, 8);
        assert_ne!(a, c);
        assert!(a.iter().all(|p| p.iter().all(|&v| (0.0..1.0).contains(&v))));
    }

    #[test]
    fn cluster_structure() {
        let pts = cluster::<3>(20_000, 0.4, 1);
        assert_eq!(pts.len(), 20_000);
        for p in &pts {
            assert!((-CLUSTER_EXTENT..=1.0 + CLUSTER_EXTENT).contains(&p[0]));
            assert!((p[1] - 0.4).abs() <= CLUSTER_EXTENT);
            assert!((p[2] - 0.4).abs() <= CLUSTER_EXTENT);
        }
        // Points come in cluster order along x.
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let mut violations = 0;
        for w in xs.windows(2) {
            if w[1] + CLUSTER_EXTENT < w[0] {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "clusters must be emitted left to right");
    }

    #[test]
    fn cluster_uses_all_clusters_when_large() {
        let pts = cluster::<2>(40_000, 0.5, 3);
        let first = pts.first().unwrap()[0];
        let last = pts.last().unwrap()[0];
        assert!(first < 0.001);
        assert!(last > 0.99);
    }

    #[test]
    fn tiger_like_bbox_and_count() {
        let pts = tiger_like(50_000, 5);
        assert_eq!(pts.len(), 50_000);
        for p in &pts {
            assert!((TIGER_X.0..=TIGER_X.1).contains(&p[0]), "{p:?}");
            assert!((TIGER_Y.0..=TIGER_Y.1).contains(&p[1]), "{p:?}");
        }
        // Clustered: consecutive points are usually close (poly-lines).
        let mut close = 0;
        for w in pts.windows(2) {
            if (w[0][0] - w[1][0]).abs() < 0.5 && (w[0][1] - w[1][1]).abs() < 0.5 {
                close += 1;
            }
        }
        assert!(close as f64 > 0.9 * (pts.len() - 1) as f64);
    }

    #[test]
    fn point_query_mix_hits_and_misses() {
        let data = cube::<2>(1000, 11);
        let qs = point_query_mix(&data, 2000, &[0.0, 0.0], &[1.0, 1.0], 13);
        assert_eq!(qs.len(), 2000);
        let set: std::collections::HashSet<_> = data.iter().map(|p| p.map(f64::to_bits)).collect();
        let hits = qs
            .iter()
            .filter(|q| set.contains(&q.map(f64::to_bits)))
            .count();
        // Roughly half should hit (binomial, wide tolerance).
        assert!(hits > 800 && hits < 1200, "hits = {hits}");
    }

    #[test]
    fn range_query_coverage() {
        let qs = range_queries::<3>(200, &[0.0; 3], &[1.0; 3], 0.001, 17);
        assert_eq!(qs.len(), 200);
        for (min, max) in &qs {
            let vol: f64 = (0..3).map(|d| max[d] - min[d]).product();
            assert!((vol - 0.001).abs() < 1e-9, "vol = {vol}");
            for d in 0..3 {
                assert!(min[d] >= -1e-12 && max[d] <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn cluster_range_query_shape() {
        let qs = cluster_range_queries::<4>(50, 23);
        for (min, max) in &qs {
            assert!((max[0] - min[0] - 1e-4).abs() < 1e-12);
            assert!(min[0] >= 0.0 && min[0] <= 0.1);
            for d in 1..4 {
                assert_eq!(min[d], 0.0);
                assert_eq!(max[d], 1.0);
            }
        }
    }

    #[test]
    fn dedup_removes_duplicates() {
        let pts = vec![[1.0, 2.0], [3.0, 4.0], [1.0, 2.0], [5.0, 6.0]];
        let d = dedup(pts);
        assert_eq!(d, vec![[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    #[test]
    fn all_generators_are_seed_deterministic() {
        assert_eq!(tiger_like(5000, 9), tiger_like(5000, 9));
        assert_eq!(cluster::<4>(5000, 0.5, 9), cluster::<4>(5000, 0.5, 9));
        assert_eq!(
            point_query_mix(&cube::<2>(100, 1), 500, &[0.0; 2], &[1.0; 2], 3),
            point_query_mix(&cube::<2>(100, 1), 500, &[0.0; 2], &[1.0; 2], 3)
        );
        assert_eq!(
            range_queries::<3>(50, &[0.0; 3], &[1.0; 3], 0.01, 5),
            range_queries::<3>(50, &[0.0; 3], &[1.0; 3], 0.01, 5)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(cube::<2>(100, 1), cube::<2>(100, 2));
        assert_ne!(tiger_like(1000, 1), tiger_like(1000, 2));
    }

    #[test]
    fn cluster_offsets_differ_only_off_axis() {
        let a = cluster::<3>(1000, 0.4, 7);
        let b = cluster::<3>(1000, 0.5, 7);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa[0], pb[0], "x-axis identical across offsets");
            assert!(((pa[1] + 0.1) - pb[1]).abs() < 1e-9);
        }
    }
}
