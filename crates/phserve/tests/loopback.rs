//! Loopback integration: real TCP, concurrent clients, abrupt
//! disconnects, the shed path, and model equivalence — the served
//! tree's final contents must equal a single-threaded replay of
//! exactly the acked ops.

use phmetrics::Registry;
use phserve::load::{run_scenario, LoadConfig, Scenario};
use phserve::server::{spawn, ServerConfig};
use phserve::{Client, ErrorCode, Request, Response};
use phshard::{DurableSharded, ShardedTree};
use phstore::vfs::StdVfs;
use phstore::DurableConfig;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const K: usize = 3;

fn mem_server(cfg: ServerConfig) -> phserve::ServerHandle {
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(8, 2, &registry));
    spawn(backend, "127.0.0.1:0", None, registry, cfg).expect("spawn server")
}

/// N concurrent clients drive mixed ops; every connection's acked-op
/// model must match the server exactly, and the server's total entry
/// count must equal the sum of the disjoint per-connection models.
#[test]
fn concurrent_mixed_ops_match_acked_model() {
    let server = mem_server(ServerConfig::default());
    let cfg = LoadConfig {
        conns: 4,
        ops_per_conn: 800,
        pipeline: 32,
        seed: 7,
    };
    let mut model_total = 0u64;
    for sc in [
        Scenario::PointHeavy,
        Scenario::WindowHeavy,
        Scenario::IngestBurst,
        Scenario::ReadUnderWrite95,
        Scenario::ReadUnderWrite50,
    ] {
        let report = run_scenario(server.addr(), sc, &cfg).expect("scenario");
        assert_eq!(
            report.errors, 0,
            "{}: unexpected error replies",
            report.scenario
        );
        assert_eq!(
            report.verify_failures, 0,
            "{}: server disagrees with the acked-op model",
            report.scenario
        );
        assert!(report.verified_keys > 0);
        model_total += report.model_entries;
    }
    let mut c: Client<K> = Client::connect(server.addr()).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.entries, model_total,
        "server entry count must equal the union of acked client models"
    );
    server.stop();
}

/// Plain HTTP GET against the sidecar; returns the raw response
/// (status line + headers + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::Read;
    let mut s = TcpStream::connect(addr).expect("connect sidecar");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

/// `/healthz` and `/livez` answer liveness with no backend dependency;
/// `/readyz` reports backend kind, writability, shard topology and
/// rebalancer state as JSON; the `/debug` endpoints answer `[]` when
/// no flight recorder is installed.
#[test]
fn liveness_and_readiness_split() {
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(8, 2, &registry));
    let server = spawn(
        backend,
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
        registry,
        ServerConfig::default(),
    )
    .expect("spawn server");
    let maddr = server.metrics_addr().expect("sidecar running");

    for live_path in ["/healthz", "/livez"] {
        let resp = http_get(maddr, live_path);
        assert!(resp.starts_with("HTTP/1.1 200"), "{live_path}: {resp}");
        assert!(resp.ends_with("ok\n"), "{live_path}: {resp}");
    }

    let resp = http_get(maddr, "/readyz");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("Content-Type: application/json"), "{resp}");
    let body = resp.split_once("\r\n\r\n").expect("headers end").1;
    for needle in [
        "\"ready\":true",
        "\"kind\":\"in-memory\"",
        "\"writable\":true",
        "\"shards\":8",
        "\"rebalancer\"",
        "\"routing_epoch\":",
        "\"migration_inflight\":",
    ] {
        assert!(body.contains(needle), "readyz missing {needle}: {body}");
    }

    for dbg in ["/debug/slow", "/debug/trace?n=8", "/debug/dumps"] {
        let resp = http_get(maddr, dbg);
        assert!(resp.starts_with("HTTP/1.1 200"), "{dbg}: {resp}");
        let body = resp.split_once("\r\n\r\n").expect("headers end").1;
        assert_eq!(body.trim(), "[]", "{dbg} should be empty, got {body}");
    }
    server.stop();
}

/// Abrupt disconnects — clients dropping mid-pipeline with replies
/// unread, and one peer writing garbage — must not take the server
/// down or poison other connections.
#[test]
fn abrupt_disconnects_leave_server_healthy() {
    let server = mem_server(ServerConfig::default());

    // 8 clients send pipelined work and vanish without reading replies.
    for round in 0..8u64 {
        let mut c: Client<K> = Client::connect(server.addr()).unwrap();
        for i in 0..64u64 {
            c.send(&Request::Insert {
                key: [round, i, i],
                value: i,
            })
            .unwrap();
        }
        c.flush().unwrap();
        drop(c); // socket closes with 64 replies in flight
    }

    // One peer speaks garbage and dies.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&[0xDE; 64]).unwrap();
        drop(s);
    }

    // The server must still answer a fresh, well-behaved client.
    let mut c: Client<K> = Client::connect(server.addr()).unwrap();
    c.ping().expect("server should survive abrupt disconnects");
    assert!(matches!(c.insert([99, 99, 99], 1).unwrap(), Response::Ack));
    assert_eq!(c.get([99, 99, 99]).unwrap(), Some(1));

    let snap = server.registry().snapshot();
    assert!(
        snap.counter("phserve_protocol_errors_total").unwrap_or(0) >= 1,
        "the garbage frame must be counted as a protocol error"
    );
    server.stop();
}

/// A malformed frame closes exactly its own connection; a concurrent
/// well-formed connection keeps working.
#[test]
fn malformed_frame_closes_only_its_connection() {
    let server = mem_server(ServerConfig::default());
    let mut good: Client<K> = Client::connect(server.addr()).unwrap();
    good.ping().unwrap();

    // Evil connection: valid length prefix, corrupt checksum.
    let mut evil = TcpStream::connect(server.addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&9u32.to_le_bytes());
    frame.extend_from_slice(&0xBAD_C0DEu64.to_le_bytes());
    frame.extend_from_slice(&[0u8; 9]);
    evil.write_all(&frame).unwrap();
    // The server replies with a typed error then closes; reading drains
    // to EOF rather than hanging.
    evil.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut drained = Vec::new();
    let _ = std::io::Read::read_to_end(&mut evil, &mut drained);

    // The good connection is unaffected.
    good.ping().expect("well-formed connection must survive");
    assert!(matches!(good.insert([1, 2, 3], 4).unwrap(), Response::Ack));
    server.stop();
}

/// Overload: a tiny queue with a slow backend sheds with typed
/// `Overloaded` replies, the queue depth stays bounded, and the final
/// contents equal the acked-op model — nothing shed was applied,
/// nothing acked was lost.
#[test]
fn shed_path_is_typed_bounded_and_consistent() {
    let queue_cap = 16;
    let server = mem_server(ServerConfig {
        queue_cap,
        batch_max: 4,
        workers: 1,
        shed_wait: Duration::from_micros(200),
        op_delay: Some(Duration::from_millis(1)),
    });
    let mut c: Client<K> = Client::connect(server.addr()).unwrap();

    // Blast 600 pipelined inserts with unique keys.
    let ids: Vec<(u64, [u64; K], u64)> = (0..600u64)
        .map(|i| {
            let key = [i, i.rotate_left(7), 3];
            let id = c.send(&Request::Insert { key, value: i }).unwrap();
            (id, key, i)
        })
        .collect();
    let mut model: HashMap<[u64; K], u64> = HashMap::new();
    let mut shed = 0u64;
    for (id, key, value) in ids {
        match c.recv(id).unwrap() {
            Response::Ack => {
                model.insert(key, value);
            }
            Response::Error {
                code: ErrorCode::Overloaded,
                detail,
            } => {
                assert!(!detail.is_empty());
                shed += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(shed > 0, "the tiny queue must shed under a 600-deep blast");
    assert!(!model.is_empty(), "some inserts must still get through");

    // Bounded queue: the depth gauge's high-water mark respects the cap.
    let snap = server.registry().snapshot();
    let peak = snap
        .gauges
        .iter()
        .find(|g| g.name == "phserve_queue_depth")
        .map(|g| g.high_water)
        .expect("queue depth gauge");
    assert!(
        peak as usize <= queue_cap,
        "queue depth peaked at {peak}, above the {queue_cap} bound"
    );
    assert_eq!(
        snap.counter("phserve_shed_total"),
        Some(shed),
        "server-side shed count must match the typed replies we received"
    );

    // Model equivalence under shedding (retry gets that are themselves
    // shed — the reply is typed and the op is safe to retry).
    for i in 0..600u64 {
        let key = [i, i.rotate_left(7), 3];
        let got = loop {
            match c.call(&Request::Get { key }).unwrap() {
                Response::Value(v) => break v,
                Response::Error {
                    code: ErrorCode::Overloaded,
                    ..
                } => std::thread::sleep(Duration::from_millis(2)),
                other => panic!("unexpected reply {other:?}"),
            }
        };
        assert_eq!(
            got,
            model.get(&key).copied(),
            "key {key:?}: shed ops must not be applied, acked ops must not be lost"
        );
    }
    server.stop();
}

/// The durable backend serves over TCP and its acked writes survive a
/// server stop and store reopen (WAL replay).
#[test]
fn durable_backend_acked_writes_survive_restart() {
    let dir = std::env::temp_dir().join(format!("phserve-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let registry = Registry::new();
    let backend = Arc::new(
        DurableSharded::<u64, K>::open_with(Arc::new(StdVfs), &dir, 4, DurableConfig::default())
            .unwrap(),
    );
    let server = spawn(
        backend,
        "127.0.0.1:0",
        None,
        registry,
        ServerConfig::default(),
    )
    .unwrap();

    let mut c: Client<K> = Client::connect(server.addr()).unwrap();
    assert!(matches!(c.insert([1, 2, 3], 10).unwrap(), Response::Ack));
    let items: Vec<([u64; K], u64)> = (0..200u64).map(|i| ([i, i, 9], i)).collect();
    assert!(matches!(
        c.bulk_load(items).unwrap(),
        Response::Loaded { new: 200 }
    ));
    assert!(matches!(
        c.remove([1, 2, 3]).unwrap(),
        Response::Value(Some(10))
    ));
    let wire_knn = c.knn([5, 5, 9], 3).unwrap();
    assert_eq!(wire_knn.len(), 3);
    assert_eq!(
        wire_knn[0].0,
        [5, 5, 9],
        "knn over the wire finds the exact point"
    );
    drop(c);
    server.stop();

    // Reopen the store directly: acked state must have been journaled.
    let reopened =
        DurableSharded::<u64, K>::open_with(Arc::new(StdVfs), &dir, 4, DurableConfig::default())
            .unwrap();
    assert_eq!(reopened.stats().entries, 200);
    assert_eq!(reopened.get_with(&[1, 2, 3], |v| *v), None);
    assert_eq!(reopened.get_with(&[7, 7, 9], |v| *v), Some(7));
    let _ = std::fs::remove_dir_all(&dir);
}
