//! Property tests hardening the frame codec: truncated, oversized,
//! bit-flipped and garbage frames must come back as typed
//! [`ProtoError`]s — never a panic, never silently-wrong data. The
//! server's contract is that a malformed frame closes only its own
//! connection; these properties pin the decoder half of that.

use phserve::proto::{
    decode_request, decode_response, encode_request, encode_response, frame, read_frame, ErrorCode,
    ProtoError, Request, Response, StatsReply, HEADER_LEN, MAX_FRAME,
};
use proptest::prelude::*;

const K: usize = 3;

fn key() -> impl Strategy<Value = [u64; K]> {
    [any::<u64>(), any::<u64>(), any::<u64>()]
}

fn request() -> impl Strategy<Value = Request<K>> {
    prop_oneof![
        (key(), any::<u64>()).prop_map(|(key, value)| Request::Insert { key, value }),
        key().prop_map(|key| Request::Get { key }),
        key().prop_map(|key| Request::Remove { key }),
        (key(), key()).prop_map(|(min, max)| Request::Query { min, max }),
        (key(), 0u32..64).prop_map(|(center, n)| Request::Knn { center, n }),
        proptest::collection::vec((key(), any::<u64>()), 0..16)
            .prop_map(|items| Request::BulkLoad { items }),
        (0u8..1).prop_map(|_| Request::Stats),
        (0u8..1).prop_map(|_| Request::Ping),
    ]
}

fn response() -> impl Strategy<Value = Response<K>> {
    prop_oneof![
        (0u8..1).prop_map(|_| Response::Ack),
        (any::<u64>(), 0u8..2).prop_map(|(v, tag)| Response::Value((tag == 1).then_some(v))),
        proptest::collection::vec((key(), any::<u64>()), 0..16).prop_map(Response::Entries),
        proptest::collection::vec((key(), any::<u64>(), 0u64..1 << 52), 0..8).prop_map(|hits| {
            Response::Neighbors(hits.into_iter().map(|(k, v, d)| (k, v, d as f64)).collect())
        }),
        any::<u32>().prop_map(|new| Response::Loaded { new }),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(shards, entries, epoch)| {
            Response::Stats(StatsReply {
                shards,
                entries,
                epoch,
                skew: 1.5,
            })
        }),
        (0u8..1).prop_map(|_| Response::Pong),
        proptest::collection::vec(0u8..128, 0..40).prop_map(|bytes| Response::Error {
            code: ErrorCode::Overloaded,
            detail: String::from_utf8(bytes).unwrap(),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any request survives encode → frame → read_frame → decode.
    #[test]
    fn request_roundtrip(req in request(), id in any::<u64>()) {
        let body = encode_request(id, &req);
        let framed = frame(&body);
        let read = read_frame(&mut &framed[..]).unwrap().unwrap();
        let (rid, back) = decode_request::<K>(&read).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(back, req);
    }

    /// Any response survives the same loop (float distances use exact
    /// integer-valued doubles so equality is well-defined).
    #[test]
    fn response_roundtrip(resp in response(), id in any::<u64>()) {
        let body = encode_response(id, &resp);
        let framed = frame(&body);
        let read = read_frame(&mut &framed[..]).unwrap().unwrap();
        let (rid, back) = decode_response::<K>(&read).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(back, resp);
    }

    /// Cutting a frame anywhere mid-stream is a typed error (Truncated),
    /// and cutting at offset 0 is a clean EOF — never a panic either way.
    #[test]
    fn truncation_is_typed(req in request(), cut in 0usize..4096) {
        let framed = frame(&encode_request(7, &req));
        let cut = cut % framed.len();
        match read_frame(&mut &framed[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
            Err(ProtoError::Truncated) => prop_assert!(cut > 0),
            other => return Err(TestCaseError::Fail(format!("expected Truncated, got {other:?}"))),
        }
    }

    /// A single flipped bit in the checksum or body is always detected:
    /// FNV-1a chains a bijection per byte, so any one-byte change in the
    /// body changes the hash, and a crc-field change breaks the match.
    #[test]
    fn bit_flips_are_detected(req in request(), bit in 0usize..1 << 16) {
        let framed = frame(&encode_request(9, &req));
        // Flip only past the length prefix: crc field or body.
        let span_bits = (framed.len() - 4) * 8;
        let bit = bit % span_bits;
        let mut evil = framed.clone();
        evil[4 + bit / 8] ^= 1 << (bit % 8);
        match read_frame(&mut &evil[..]) {
            Err(ProtoError::BadCrc { .. }) => {}
            other => return Err(TestCaseError::Fail(format!("expected BadCrc, got {other:?}"))),
        }
    }

    /// Flipping bits in the length prefix never panics and never yields
    /// a frame that decodes as valid: the reader sees a typed error
    /// (oversized, truncated, empty-frame, or checksum mismatch).
    #[test]
    fn length_flips_are_typed(req in request(), bit in 0usize..32) {
        let framed = frame(&encode_request(11, &req));
        let mut evil = framed.clone();
        evil[bit / 8] ^= 1 << (bit % 8);
        match read_frame(&mut &evil[..]) {
            Err(_) => {}
            Ok(body) => {
                return Err(TestCaseError::Fail(format!(
                    "length flip produced a readable frame: {body:?}"
                )))
            }
        }
    }

    /// Arbitrary garbage bytes: the reader drains to a typed error or a
    /// clean EOF, and anything it does hand over never panics decode.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = &bytes[..];
        loop {
            match read_frame(&mut r) {
                Ok(None) | Err(_) => break,
                Ok(Some(body)) => {
                    // A garbage frame that happens to checksum is fine —
                    // decode must still be typed, not a panic.
                    let _ = decode_request::<K>(&body);
                    let _ = decode_response::<K>(&body);
                }
            }
        }
    }

    /// Counts inside a checksummed body are still validated against the
    /// body length (a lying count is Malformed, not an allocation).
    #[test]
    fn lying_bulk_count_is_malformed(n in 2u32..1 << 20) {
        // Hand-build: valid header, bulk opcode, dims, huge count, one item.
        let mut body = Vec::new();
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(0x06); // OP_BULK
        body.push(K as u8);
        body.extend_from_slice(&n.to_le_bytes());
        for _ in 0..K + 1 {
            body.extend_from_slice(&5u64.to_le_bytes());
        }
        match decode_request::<K>(&body) {
            Err(ProtoError::Malformed(_)) => {}
            other => return Err(TestCaseError::Fail(format!("expected Malformed, got {other:?}"))),
        }
    }
}

/// The length bound itself: a frame body at MAX_FRAME passes, one byte
/// over is rejected before allocation.
#[test]
fn max_frame_boundary() {
    let body = vec![0xABu8; MAX_FRAME];
    let framed = frame(&body);
    assert_eq!(framed.len(), HEADER_LEN + MAX_FRAME);
    assert_eq!(read_frame(&mut &framed[..]).unwrap().unwrap(), body);

    let mut over = Vec::new();
    over.extend_from_slice(&((MAX_FRAME + 1) as u32).to_le_bytes());
    over.extend_from_slice(&0u64.to_le_bytes());
    match read_frame(&mut &over[..]) {
        Err(ProtoError::Oversized { len, max }) => {
            assert_eq!(len, MAX_FRAME + 1);
            assert_eq!(max, MAX_FRAME);
        }
        other => panic!("expected Oversized, got {other:?}"),
    }
}
