//! The serving tier's observability contract: every phserve gauge and
//! counter — including the shed/queue-depth/connection series the
//! backpressure design depends on — must appear in the `/metrics`
//! Prometheus exposition, with live values, and the backend's
//! `ShardError::Overloaded` shed path must surface as its own series.

use phmetrics::Registry;
use phserve::server::{spawn, ServerConfig};
use phserve::{Client, ErrorCode, Request, Response};
use phshard::ShardedTree;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const K: usize = 3;

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

/// Every serving instrument appears on the sidecar with the values the
/// traffic implies: op counters per label, connection gauges, queue
/// depth with its peak, batch and byte counters, and the shed series.
#[test]
fn metrics_endpoint_exposes_serving_instruments() {
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(4, 2, &registry));
    let server = spawn(
        backend,
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
        registry,
        ServerConfig::default(),
    )
    .unwrap();
    let maddr = server.metrics_addr().unwrap();

    // Drive one op of every type.
    let mut c: Client<K> = Client::connect(server.addr()).unwrap();
    c.insert([1, 2, 3], 7).unwrap();
    c.get([1, 2, 3]).unwrap();
    c.remove([1, 2, 3]).unwrap();
    c.query([0, 0, 0], [9, 9, 9]).unwrap();
    c.bulk_load(vec![([4, 4, 4], 1), ([5, 5, 5], 2)]).unwrap();
    c.knn([4, 4, 4], 1).unwrap();
    c.stats().unwrap();
    c.ping().unwrap();

    let resp = http_get(maddr, "/metrics");
    assert!(resp.starts_with("HTTP/1.1 200 OK"), "got: {resp}");
    let body = resp.split_once("\r\n\r\n").unwrap().1;

    // Per-op request counters, labelled.
    for op in [
        "insert",
        "get",
        "remove",
        "query",
        "knn",
        "bulk_load",
        "stats",
        "ping",
    ] {
        let name = format!("phserve_requests_total{{op=\"{op}\"}}");
        let v = metric_value(body, &name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(v >= 1.0, "{name} should have counted, got {v}");
        assert!(
            body.contains(&format!(
                "phserve_request_latency_ns_bucket{{op=\"{op}\",le="
            )),
            "missing latency histogram for {op}"
        );
    }

    // Connection and queue gauges (with peaks), plus the shed series
    // the backpressure contract is built on.
    for name in [
        "phserve_connections",
        "phserve_connections_peak",
        "phserve_connections_total",
        "phserve_queue_depth",
        "phserve_queue_depth_peak",
        "phserve_shed_total",
        "phserve_backend_overloaded_total",
        "phserve_batches_total",
        "phserve_coalesced_inserts_total",
        "phserve_protocol_errors_total",
        "phserve_bytes_read_total",
        "phserve_bytes_written_total",
    ] {
        assert!(
            metric_value(body, name).is_some(),
            "missing {name} in /metrics"
        );
    }
    assert!(metric_value(body, "phserve_connections_total").unwrap() >= 1.0);
    assert!(metric_value(body, "phserve_bytes_read_total").unwrap() > 0.0);
    assert!(metric_value(body, "phserve_batches_total").unwrap() >= 1.0);

    // The backend's own instruments share the registry and the page.
    assert!(
        body.contains("phshard_pool_queue_depth"),
        "shard pool gauges should ride the same sidecar"
    );

    // /healthz answers; unknown paths 404.
    assert!(http_get(maddr, "/healthz").starts_with("HTTP/1.1 200"));
    assert!(http_get(maddr, "/nope").starts_with("HTTP/1.1 404"));
    server.stop();
}

/// Admission shedding shows up as non-zero `phserve_shed_total` and a
/// bounded `phserve_queue_depth_peak` on the scrape — the evidence the
/// overload scenario's claims rest on.
#[test]
fn shed_counters_reach_the_scrape() {
    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(4, 1, &registry));
    let queue_cap = 8;
    let server = spawn(
        backend,
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
        registry,
        ServerConfig {
            queue_cap,
            batch_max: 4,
            workers: 1,
            shed_wait: Duration::from_micros(100),
            op_delay: Some(Duration::from_millis(2)),
        },
    )
    .unwrap();

    let mut c: Client<K> = Client::connect(server.addr()).unwrap();
    let ids: Vec<u64> = (0..256u64)
        .map(|i| {
            c.send(&Request::Insert {
                key: [i, i, i],
                value: i,
            })
            .unwrap()
        })
        .collect();
    let mut shed = 0u64;
    for id in ids {
        if matches!(
            c.recv(id).unwrap(),
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            }
        ) {
            shed += 1;
        }
    }
    assert!(shed > 0);

    let resp = http_get(server.metrics_addr().unwrap(), "/metrics");
    let body = resp.split_once("\r\n\r\n").unwrap().1;
    assert_eq!(
        metric_value(body, "phserve_shed_total"),
        Some(shed as f64),
        "scraped shed counter must match the typed replies received"
    );
    let peak = metric_value(body, "phserve_queue_depth_peak").unwrap();
    assert!(
        peak <= queue_cap as f64,
        "queue depth peak {peak} exceeds the {queue_cap} bound"
    );
    server.stop();
}
