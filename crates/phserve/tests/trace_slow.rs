//! Loopback slow-query integration (cargo feature `trace`): a
//! deliberately slow query against a real TCP server must land in the
//! slow-query log — and in `GET /debug/slow` on the sidecar — with the
//! client's request id, non-zero queue/fan-out/descent phases, and a
//! per-phase breakdown that covers its wall time to within 10%.
//!
//! One test function: the phtrace recorder is a process-global
//! `OnceLock`, so this binary installs exactly one configuration.

#![cfg(feature = "trace")]

use phmetrics::Registry;
use phserve::server::{spawn, ServerConfig};
use phserve::{Client, Request, Response};
use phshard::ShardedTree;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const K: usize = 3;

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect sidecar");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf
}

#[test]
fn slow_query_breakdown_reaches_debug_slow() {
    // Sample everything, call anything over 5ms slow; the server's
    // 25ms artificial op delay guarantees every request qualifies.
    assert!(
        phserve::trace::init(phserve::trace::TraceConfig {
            sample_every: 1,
            slow_threshold: phserve::trace::SlowThreshold::FixedNs(5_000_000),
            ..Default::default()
        }),
        "test binary must be built with --features trace"
    );
    assert!(!phtrace::slow_threshold_is_auto());
    assert_eq!(phtrace::slow_threshold_ns(), 5_000_000);

    let registry = Registry::new();
    let backend: Arc<ShardedTree<u64, K>> = Arc::new(ShardedTree::with_metrics(8, 2, &registry));
    let cfg = ServerConfig {
        op_delay: Some(Duration::from_millis(25)),
        ..ServerConfig::default()
    };
    let server =
        spawn(backend, "127.0.0.1:0", Some("127.0.0.1:0"), registry, cfg).expect("spawn server");
    let mut client: Client<K> = Client::connect(server.addr()).expect("connect");

    // Request ids 1..=64: seed data (synchronous, one per batch).
    for i in 0..64u64 {
        match client
            .call(&Request::Insert {
                key: [i; K],
                value: i,
            })
            .expect("insert")
        {
            Response::Ack => {}
            other => panic!("insert answered {other:?}"),
        }
    }
    // Request id 65: the deliberately slow full-window query.
    let query_req_id = 65u64;
    match client
        .call(&Request::Query {
            min: [0; K],
            max: [u64::MAX; K],
        })
        .expect("query")
    {
        Response::Entries(es) => assert_eq!(es.len(), 64),
        other => panic!("query answered {other:?}"),
    }

    let slow = phtrace::recent_slow();
    assert!(!slow.is_empty(), "nothing reached the slow log");
    let q = slow
        .iter()
        .rev()
        .find(|s| s.req_id == query_req_id && matches!(s.op, phtrace::TraceOp::Query))
        .expect("slow entry carrying the query's req_id");

    let queue = q.phase_ns[phtrace::Phase::Queue as usize];
    let fanout = q.phase_ns[phtrace::Phase::FanOut as usize];
    let descent = q.phase_ns[phtrace::Phase::Descent as usize];
    assert!(
        queue >= 20_000_000,
        "queue phase must absorb the 25ms op delay, got {queue}ns"
    );
    assert!(fanout > 0, "fan-out phase missing from the breakdown");
    assert!(descent > 0, "descent phase missing from the breakdown");
    assert!(q.counters.fanout > 0, "fan-out width not recorded");
    assert!(q.spans >= 3, "breakdown too thin: {} spans", q.spans);

    let wall = q.wall_ns as f64;
    let covered = q.covered_ns as f64;
    assert!(
        covered >= wall * 0.9 && covered <= wall * 1.1,
        "phases cover {covered:.0}ns of {wall:.0}ns wall (want within 10%)"
    );

    // The same entry must come back over the sidecar, as JSON.
    let maddr = server.metrics_addr().expect("sidecar running");
    let resp = http_get(maddr, "/debug/slow");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("Content-Type: application/json"), "{resp}");
    let body = resp.split_once("\r\n\r\n").expect("headers end").1;
    assert!(
        body.contains(&format!("\"req_id\":{query_req_id}")),
        "/debug/slow is missing the query: {body}"
    );
    assert!(body.contains("\"phases\":{\"queue\":"), "{body}");

    // The flight recorder itself is browsable too.
    let resp = http_get(maddr, "/debug/trace?n=16");
    let body = resp.split_once("\r\n\r\n").expect("headers end").1;
    assert!(body.contains("\"phase\""), "/debug/trace empty: {body}");

    let st = phtrace::stats();
    assert!(st.installed);
    assert!(st.sampled_requests >= 65);
    assert!(st.slow_queries >= 1);

    server.stop();
}
