//! The phserve wire protocol: length-prefixed, CRC-checked binary
//! frames over TCP.
//!
//! ## Frame layout
//!
//! ```text
//! len   u32 LE   body length in bytes (0 < len <= MAX_FRAME)
//! crc   u64 LE   FNV-1a of the body (same checksum discipline as the
//!                phstore WAL frames)
//! body  len bytes
//! ```
//!
//! A request body is `req_id u64 LE | opcode u8 | payload`; a response
//! body is `req_id u64 LE | opcode u8 | payload` with the request's id
//! echoed back, so clients may pipeline arbitrarily many requests on
//! one connection and match replies by id. Key-carrying ops embed a
//! dimension byte so a server can reject a client compiled for a
//! different `K` with a typed error instead of misreading key bytes.
//!
//! Every decode failure is a typed [`ProtoError`] — truncated,
//! oversized, bit-flipped and garbage frames must never panic the
//! peer; the server closes (only) the offending connection.

use phstore::fnv1a;
use std::io::{self, Read, Write};

/// Hard bound on a frame body. Larger `len` prefixes are rejected with
/// [`ProtoError::Oversized`] *before* any allocation, so a corrupt or
/// hostile length prefix cannot OOM the server.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes of `len` + `crc` preceding every body.
pub const HEADER_LEN: usize = 12;

// Request opcodes.
const OP_INSERT: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_REMOVE: u8 = 0x03;
const OP_QUERY: u8 = 0x04;
const OP_KNN: u8 = 0x05;
const OP_BULK: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_PING: u8 = 0x08;

// Response opcodes (high bit set).
const RP_ACK: u8 = 0x81;
const RP_VALUE: u8 = 0x82;
const RP_ENTRIES: u8 = 0x84;
const RP_NEIGHBORS: u8 = 0x85;
const RP_LOADED: u8 = 0x86;
const RP_STATS: u8 = 0x87;
const RP_PONG: u8 = 0x88;
const RP_ERROR: u8 = 0xE0;

/// Everything that can go wrong turning bytes into frames and frames
/// into ops. One variant per failure mode so the server's protocol
/// error counter and the tests can tell them apart.
#[derive(Debug)]
pub enum ProtoError {
    /// The stream ended (or the body was shorter than a field needs)
    /// mid-frame — a torn frame, not a clean close.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Length the prefix claimed.
        len: usize,
        /// The enforced bound.
        max: usize,
    },
    /// Body bytes do not match the frame checksum.
    BadCrc {
        /// Checksum carried by the frame.
        expect: u64,
        /// Checksum of the bytes actually received.
        got: u64,
    },
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Key-carrying op for a different dimension count than this
    /// server/client was built for.
    BadDims {
        /// Dimension byte in the frame.
        got: u8,
        /// Dimension count of this endpoint.
        want: u8,
    },
    /// Structurally invalid payload (bad tag, trailing bytes, count
    /// that disagrees with the body length, …).
    Malformed(&'static str),
    /// The underlying transport failed.
    Io(io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            ProtoError::BadCrc { expect, got } => {
                write!(
                    f,
                    "frame checksum mismatch (frame {expect:#x}, body {got:#x})"
                )
            }
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadDims { got, want } => {
                write!(f, "frame is {got}-dimensional, this endpoint serves {want}")
            }
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Error codes a server can attach to an [`Response::Error`] reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue (or a migrating shard's backlog) is past
    /// its high-water mark; the op was **not** applied and is safe to
    /// retry. The serving-layer contract of
    /// `phshard::ShardError::Overloaded` carried over the wire.
    Overloaded,
    /// The request was well-formed at the frame level but unserviceable
    /// (e.g. dimension mismatch).
    BadRequest,
    /// The backend failed (store I/O, corruption). Not retryable
    /// blindly.
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::BadRequest),
            3 => Ok(ErrorCode::Internal),
            _ => Err(ProtoError::Malformed("unknown error code")),
        }
    }
}

/// One client request. Values are `u64` — the serving tier stores ids,
/// not payloads (the paper's PH-tree maps keys to references).
#[derive(Debug, Clone, PartialEq)]
pub enum Request<const K: usize> {
    /// Upsert `key` → `value`. Acked without the previous value so the
    /// server may coalesce pipelined insert runs into one bulk load.
    Insert {
        /// Key to upsert.
        key: [u64; K],
        /// Value to store.
        value: u64,
    },
    /// Point lookup.
    Get {
        /// Key to look up.
        key: [u64; K],
    },
    /// Remove `key`, returning the removed value.
    Remove {
        /// Key to remove.
        key: [u64; K],
    },
    /// Window query over the axis-aligned box `[min, max]` (inclusive).
    Query {
        /// Lower corner.
        min: [u64; K],
        /// Upper corner.
        max: [u64; K],
    },
    /// `n` nearest neighbours of `center`.
    Knn {
        /// Query point.
        center: [u64; K],
        /// Neighbour count.
        n: u32,
    },
    /// Batch upsert, routed through the backend's bulk-admission seam.
    BulkLoad {
        /// Key/value pairs (last write wins on duplicates).
        items: Vec<([u64; K], u64)>,
    },
    /// Server statistics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
}

impl<const K: usize> Request<K> {
    /// Short op label for metrics/latency series.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Insert { .. } => "insert",
            Request::Get { .. } => "get",
            Request::Remove { .. } => "remove",
            Request::Query { .. } => "query",
            Request::Knn { .. } => "knn",
            Request::BulkLoad { .. } => "bulk_load",
            Request::Stats => "stats",
            Request::Ping => "ping",
        }
    }
}

/// Statistics payload of a [`Response::Stats`] reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Live shard count.
    pub shards: u32,
    /// Total entries.
    pub entries: u64,
    /// Routing epoch (bumps on every committed hot-shard split).
    pub epoch: u64,
    /// Max-to-mean shard occupancy (1.0 = balanced).
    pub skew: f64,
}

/// One server reply. Carries the request's id on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Response<const K: usize> {
    /// Insert applied.
    Ack,
    /// Get / remove result.
    Value(Option<u64>),
    /// Window query hits, in global Z-order.
    Entries(Vec<([u64; K], u64)>),
    /// kNN hits, nearest first, with distances.
    Neighbors(Vec<([u64; K], u64, f64)>),
    /// Bulk load applied; `new` keys were not previously present.
    Loaded {
        /// Newly inserted key count.
        new: u32,
    },
    /// Statistics snapshot.
    Stats(StatsReply),
    /// Liveness reply.
    Pong,
    /// Typed failure; see [`ErrorCode`].
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable context.
        detail: String,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_key<const K: usize>(out: &mut Vec<u8>, key: &[u64; K]) {
    for d in key {
        out.extend_from_slice(&d.to_le_bytes());
    }
}

/// Encodes a request body (no frame header).
pub fn encode_request<const K: usize>(req_id: u64, req: &Request<K>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + K * 8);
    out.extend_from_slice(&req_id.to_le_bytes());
    match req {
        Request::Insert { key, value } => {
            out.push(OP_INSERT);
            out.push(K as u8);
            put_key(&mut out, key);
            out.extend_from_slice(&value.to_le_bytes());
        }
        Request::Get { key } => {
            out.push(OP_GET);
            out.push(K as u8);
            put_key(&mut out, key);
        }
        Request::Remove { key } => {
            out.push(OP_REMOVE);
            out.push(K as u8);
            put_key(&mut out, key);
        }
        Request::Query { min, max } => {
            out.push(OP_QUERY);
            out.push(K as u8);
            put_key(&mut out, min);
            put_key(&mut out, max);
        }
        Request::Knn { center, n } => {
            out.push(OP_KNN);
            out.push(K as u8);
            put_key(&mut out, center);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Request::BulkLoad { items } => {
            out.push(OP_BULK);
            out.push(K as u8);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for (k, v) in items {
                put_key(&mut out, k);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Request::Stats => out.push(OP_STATS),
        Request::Ping => out.push(OP_PING),
    }
    out
}

/// Encodes a response body (no frame header).
pub fn encode_response<const K: usize>(req_id: u64, resp: &Response<K>) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&req_id.to_le_bytes());
    match resp {
        Response::Ack => out.push(RP_ACK),
        Response::Value(v) => {
            out.push(RP_VALUE);
            match v {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Response::Entries(entries) => {
            out.push(RP_ENTRIES);
            out.push(K as u8);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                put_key(&mut out, k);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Neighbors(hits) => {
            out.push(RP_NEIGHBORS);
            out.push(K as u8);
            out.extend_from_slice(&(hits.len() as u32).to_le_bytes());
            for (k, v, d) in hits {
                put_key(&mut out, k);
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
        }
        Response::Loaded { new } => {
            out.push(RP_LOADED);
            out.extend_from_slice(&new.to_le_bytes());
        }
        Response::Stats(s) => {
            out.push(RP_STATS);
            out.extend_from_slice(&s.shards.to_le_bytes());
            out.extend_from_slice(&s.entries.to_le_bytes());
            out.extend_from_slice(&s.epoch.to_le_bytes());
            out.extend_from_slice(&s.skew.to_bits().to_le_bytes());
        }
        Response::Pong => out.push(RP_PONG),
        Response::Error { code, detail } => {
            out.push(RP_ERROR);
            out.push(code.to_byte());
            let bytes = detail.as_bytes();
            let n = bytes.len().min(u16::MAX as usize);
            out.extend_from_slice(&(n as u16).to_le_bytes());
            out.extend_from_slice(&bytes[..n]);
        }
    }
    out
}

/// Wraps a body in the length + checksum frame header.
pub fn frame(body: &[u8]) -> Vec<u8> {
    debug_assert!(!body.is_empty() && body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Byte cursor over one frame body; every read is bounds-checked into
/// [`ProtoError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let s = self
            .buf
            .get(self.pos..self.pos.checked_add(n).ok_or(ProtoError::Truncated)?)
            .ok_or(ProtoError::Truncated)?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn key<const K: usize>(&mut self) -> Result<[u64; K], ProtoError> {
        let mut key = [0u64; K];
        for d in key.iter_mut() {
            *d = self.u64()?;
        }
        Ok(key)
    }

    fn dims<const K: usize>(&mut self) -> Result<(), ProtoError> {
        let got = self.u8()?;
        if got as usize != K {
            return Err(ProtoError::BadDims { got, want: K as u8 });
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(ProtoError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

/// Decodes one request body into `(req_id, request)`.
pub fn decode_request<const K: usize>(body: &[u8]) -> Result<(u64, Request<K>), ProtoError> {
    let mut c = Cursor::new(body);
    let req_id = c.u64()?;
    let op = c.u8()?;
    let req = match op {
        OP_INSERT => {
            c.dims::<K>()?;
            Request::Insert {
                key: c.key()?,
                value: c.u64()?,
            }
        }
        OP_GET => {
            c.dims::<K>()?;
            Request::Get { key: c.key()? }
        }
        OP_REMOVE => {
            c.dims::<K>()?;
            Request::Remove { key: c.key()? }
        }
        OP_QUERY => {
            c.dims::<K>()?;
            Request::Query {
                min: c.key()?,
                max: c.key()?,
            }
        }
        OP_KNN => {
            c.dims::<K>()?;
            Request::Knn {
                center: c.key()?,
                n: c.u32()?,
            }
        }
        OP_BULK => {
            c.dims::<K>()?;
            let n = c.u32()? as usize;
            // An item is K coordinates + a value; a count that cannot
            // fit the remaining body is a lie, not an allocation hint.
            if n.checked_mul((K + 1) * 8)
                .is_none_or(|need| need > body.len() - c.pos)
            {
                return Err(ProtoError::Malformed("bulk count exceeds body"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((c.key()?, c.u64()?));
            }
            Request::BulkLoad { items }
        }
        OP_STATS => Request::Stats,
        OP_PING => Request::Ping,
        other => return Err(ProtoError::BadOpcode(other)),
    };
    c.finish()?;
    Ok((req_id, req))
}

/// Decodes one response body into `(req_id, response)`.
pub fn decode_response<const K: usize>(body: &[u8]) -> Result<(u64, Response<K>), ProtoError> {
    let mut c = Cursor::new(body);
    let req_id = c.u64()?;
    let op = c.u8()?;
    let resp = match op {
        RP_ACK => Response::Ack,
        RP_VALUE => match c.u8()? {
            0 => Response::Value(None),
            1 => Response::Value(Some(c.u64()?)),
            _ => return Err(ProtoError::Malformed("bad value tag")),
        },
        RP_ENTRIES => {
            c.dims::<K>()?;
            let n = c.u32()? as usize;
            if n.checked_mul((K + 1) * 8)
                .is_none_or(|need| need > body.len() - c.pos)
            {
                return Err(ProtoError::Malformed("entry count exceeds body"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((c.key()?, c.u64()?));
            }
            Response::Entries(entries)
        }
        RP_NEIGHBORS => {
            c.dims::<K>()?;
            let n = c.u32()? as usize;
            if n.checked_mul((K + 2) * 8)
                .is_none_or(|need| need > body.len() - c.pos)
            {
                return Err(ProtoError::Malformed("neighbor count exceeds body"));
            }
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                hits.push((c.key()?, c.u64()?, f64::from_bits(c.u64()?)));
            }
            Response::Neighbors(hits)
        }
        RP_LOADED => Response::Loaded { new: c.u32()? },
        RP_STATS => Response::Stats(StatsReply {
            shards: c.u32()?,
            entries: c.u64()?,
            epoch: c.u64()?,
            skew: f64::from_bits(c.u64()?),
        }),
        RP_PONG => Response::Pong,
        RP_ERROR => {
            let code = ErrorCode::from_byte(c.u8()?)?;
            let n = c.u16()? as usize;
            let detail = std::str::from_utf8(c.take(n)?)
                .map_err(|_| ProtoError::Malformed("error detail not utf-8"))?
                .to_string();
            Response::Error { code, detail }
        }
        other => return Err(ProtoError::BadOpcode(other)),
    };
    c.finish()?;
    Ok((req_id, resp))
}

// ---------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------

/// Reads one frame from `r`, verifying length bound and checksum.
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary
/// (the peer closed between requests); EOF anywhere else is
/// [`ProtoError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    let crc = u64::from_le_bytes(header[4..12].try_into().unwrap());
    if len == 0 {
        return Err(ProtoError::Malformed("empty frame body"));
    }
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len];
    if let Err(e) = r.read_exact(&mut body) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Truncated
        } else {
            ProtoError::Io(e)
        });
    }
    let got = fnv1a(&body);
    if got != crc {
        return Err(ProtoError::BadCrc { expect: crc, got });
    }
    Ok(Some(body))
}

/// Writes one framed body to `w`.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&frame(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_op() {
        let reqs: Vec<Request<3>> = vec![
            Request::Insert {
                key: [1, 2, u64::MAX],
                value: 9,
            },
            Request::Get { key: [0; 3] },
            Request::Remove { key: [5; 3] },
            Request::Query {
                min: [0; 3],
                max: [10; 3],
            },
            Request::Knn {
                center: [7; 3],
                n: 4,
            },
            Request::BulkLoad {
                items: vec![([1, 1, 1], 1), ([2, 2, 2], 2)],
            },
            Request::Stats,
            Request::Ping,
        ];
        for (i, req) in reqs.into_iter().enumerate() {
            let body = encode_request(i as u64, &req);
            let (id, back) = decode_request::<3>(&body).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(back, req);
        }
        let resps: Vec<Response<3>> = vec![
            Response::Ack,
            Response::Value(None),
            Response::Value(Some(3)),
            Response::Entries(vec![([1, 2, 3], 4)]),
            Response::Neighbors(vec![([1, 2, 3], 4, 2.5)]),
            Response::Loaded { new: 17 },
            Response::Stats(StatsReply {
                shards: 8,
                entries: 100,
                epoch: 2,
                skew: 1.25,
            }),
            Response::Pong,
            Response::Error {
                code: ErrorCode::Overloaded,
                detail: "queue full".into(),
            },
        ];
        for (i, resp) in resps.into_iter().enumerate() {
            let body = encode_response(i as u64, &resp);
            let (id, back) = decode_response::<3>(&body).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn framed_stream_roundtrip_and_clean_eof() {
        let a = encode_request(1, &Request::<3>::Ping);
        let b = encode_request(2, &Request::<3>::Stats);
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn dims_mismatch_is_typed() {
        let body = encode_request(1, &Request::<3>::Get { key: [1, 2, 3] });
        match decode_request::<4>(&body) {
            Err(ProtoError::BadDims { got: 3, want: 4 }) => {}
            other => panic!("expected BadDims, got {other:?}"),
        }
    }

    #[test]
    fn oversized_len_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Err(ProtoError::Oversized { .. }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
