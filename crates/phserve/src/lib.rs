//! # phserve — a TCP serving front end for the sharded PH-tree
//!
//! The stack below this crate already serves concurrent in-process
//! callers: `phshard` routes keys to shards by Z-order prefix, splits
//! hot shards online, and (durably) journals per shard; `phmetrics`
//! instruments all of it. This crate puts a network edge on top:
//!
//! * [`proto`] — a length-prefixed, FNV-1a-checksummed binary protocol
//!   (the same checksum discipline as the phstore WAL) carrying the
//!   full op surface: insert, get, remove, window query, kNN,
//!   bulk-ingest, stats, ping. Requests carry ids, so one connection
//!   can pipeline arbitrarily many.
//! * [`server`] — std-only connection-per-thread accept loop feeding a
//!   **shared bounded admission queue**. Workers pop batches; runs of
//!   pipelined inserts coalesce into one `bulk_load` through the
//!   backend's batch-admission seam, reads fan out through the
//!   existing shard scatter. At the queue's high-water mark admission
//!   first *blocks* the reader (backpressure via TCP flow control),
//!   then sheds with a typed `Overloaded` reply — the same
//!   not-applied, safe-to-retry contract `phshard` uses for migration
//!   backlog shedding. A Prometheus sidecar answers `GET /metrics`.
//! * [`backend`] — one trait over [`phshard::ShardedTree`],
//!   [`phshard::DurableSharded`] and the read-only
//!   [`backend::PackedBackend`] (a `phpack` packed checkpoint),
//!   flag-selected at startup.
//! * [`trace`] — bootstrap for the `phtrace` flight recorder: with the
//!   `trace` cargo feature every request carries a trace context from
//!   the wire through admission, fan-out, descent, WAL and page cache;
//!   the sidecar answers `GET /debug/slow`, `/debug/trace?n=` and
//!   `/debug/dumps`, and `/healthz` splits into `/livez` + `/readyz`.
//! * [`client`] — a blocking pipelining client.
//! * [`load`] — the `phload` scenario engine: four standard mixes plus
//!   an overload run, exact per-op percentiles, and an acked-ops model
//!   check proving no write is lost or applied without an ack.
//!
//! Binaries: `phserve` (the server) and `phload` (the load generator).

#![warn(missing_docs)]

pub mod backend;
pub mod client;
pub mod load;
mod metrics;
pub mod proto;
pub mod server;
pub mod trace;

pub use backend::{Backend, PackedBackend, ReadView};
pub use client::Client;
pub use load::{LoadConfig, Scenario, ScenarioReport, SERVE_DIMS};
pub use proto::{ErrorCode, ProtoError, Request, Response, StatsReply};
pub use server::{spawn, ServerConfig, ServerHandle};
