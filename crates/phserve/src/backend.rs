//! The storage seam the server speaks to: one trait over the
//! in-memory [`ShardedTree`], the WAL-backed [`DurableSharded`], and
//! the read-only [`PackedBackend`] (a `phpack` packed checkpoint),
//! selected by a `phserve` flag at startup.
//!
//! Values are fixed to `u64` at the serving tier (the paper's PH-tree
//! stores references, not payloads), which keeps the wire protocol
//! single-shaped. Fallible writes surface `phshard`'s typed
//! [`ShardError`] so the server can translate `Overloaded` into the
//! protocol's shed reply instead of flattening every failure into one
//! opaque error — and reads are fallible too, because a packed
//! checkpoint verifies page checksums lazily: corruption discovered
//! mid-query must become a typed `Internal` wire error, never a panic
//! and never a silently short result.

use phshard::{DurableSharded, PackedShards, ShardError, ShardStats, ShardedTree, Snapshot};
use std::sync::Arc;

/// A pinned, consistent read view: either a live cross-shard
/// [`Snapshot`] or a packed checkpoint (which is *always* one
/// consistent cut — it was frozen from a snapshot and never changes).
///
/// The server answers a maximal run of pipelined reads from one
/// `ReadView`, so the whole run observes a single write-history cut
/// and pays the cut protocol (or nothing, for packed) once.
pub enum ReadView<const K: usize> {
    /// A live MVCC snapshot pinned from the mutable backends.
    Live(Snapshot<u64, K>),
    /// A packed read-only checkpoint; reads verify checksums lazily
    /// and therefore can fail with a typed store error.
    Packed(Arc<PackedShards<u64, K>>),
}

impl<const K: usize> ReadView<K> {
    /// Point lookup.
    pub fn get(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        match self {
            ReadView::Live(s) => Ok(s.get(key).copied()),
            ReadView::Packed(p) => p.get(key).map_err(ShardError::from),
        }
    }

    /// Window query over `[min, max]`, inclusive, in global Z-order.
    pub fn query(
        &self,
        min: &[u64; K],
        max: &[u64; K],
    ) -> Result<Vec<([u64; K], u64)>, ShardError> {
        match self {
            ReadView::Live(s) => Ok(s.query(min, max)),
            ReadView::Packed(p) => p.query(min, max).map_err(ShardError::from),
        }
    }

    /// `n` nearest neighbours of `center`, nearest first.
    pub fn knn(
        &self,
        center: &[u64; K],
        n: usize,
    ) -> Result<Vec<([u64; K], u64, f64)>, ShardError> {
        match self {
            ReadView::Live(s) => Ok(s.knn(center, n)),
            ReadView::Packed(p) => p.knn(center, n).map_err(ShardError::from),
        }
    }

    /// Per-shard statistics of the pinned view.
    pub fn stats(&self) -> ShardStats {
        match self {
            ReadView::Live(s) => s.stats(),
            ReadView::Packed(p) => p.stats(),
        }
    }
}

/// Storage operations the server needs, `&self` and thread-safe —
/// every connection worker calls straight into the same backend.
pub trait Backend<const K: usize>: Send + Sync + 'static {
    /// Upserts `key` → `value`.
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError>;
    /// Point lookup.
    fn get(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError>;
    /// Removes `key`, returning the removed value.
    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError>;
    /// Window query over `[min, max]`, inclusive, in global Z-order.
    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Result<Vec<([u64; K], u64)>, ShardError>;
    /// `n` nearest neighbours of `center`, nearest first.
    fn knn(&self, center: &[u64; K], n: usize) -> Result<Vec<([u64; K], u64, f64)>, ShardError>;
    /// Batch upsert through the bulk-admission seam; returns the count
    /// of new keys. Must be all-or-nothing with respect to
    /// [`ShardError::Overloaded`]: a shed batch applies nothing.
    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError>;
    /// Per-shard statistics snapshot.
    fn stats(&self) -> ShardStats;
    /// Pins a consistent cross-shard view (see [`ReadView`]). The
    /// server serves runs of read requests from one view, so a
    /// pipelined read batch observes a single write-history cut and
    /// pays the cut protocol once.
    fn read_view(&self) -> ReadView<K>;
    /// Stable backend-kind label for the readiness endpoint
    /// (`in-memory` / `durable` / `packed-readonly`).
    fn kind(&self) -> &'static str {
        "unknown"
    }
    /// Whether the backend accepts writes (readiness reports it so
    /// operators can tell a packed replica from a serving primary).
    fn writable(&self) -> bool {
        true
    }
}

impl<const K: usize> Backend<K> for ShardedTree<u64, K> {
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError> {
        ShardedTree::insert(self, key, value);
        Ok(())
    }

    fn get(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        Ok(ShardedTree::get(self, key))
    }

    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        Ok(ShardedTree::remove(self, key))
    }

    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Result<Vec<([u64; K], u64)>, ShardError> {
        Ok(ShardedTree::query(self, min, max))
    }

    fn knn(&self, center: &[u64; K], n: usize) -> Result<Vec<([u64; K], u64, f64)>, ShardError> {
        Ok(ShardedTree::knn(self, center, n))
    }

    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError> {
        Ok(ShardedTree::bulk_load(self, items))
    }

    fn stats(&self) -> ShardStats {
        ShardedTree::stats(self)
    }

    fn read_view(&self) -> ReadView<K> {
        ReadView::Live(ShardedTree::snapshot(self))
    }

    fn kind(&self) -> &'static str {
        "in-memory"
    }
}

impl<const K: usize> Backend<K> for DurableSharded<u64, K> {
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError> {
        DurableSharded::insert(self, key, value).map(|_| ())
    }

    fn get(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        Ok(self.get_with(key, |v| *v))
    }

    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        DurableSharded::remove(self, key)
    }

    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Result<Vec<([u64; K], u64)>, ShardError> {
        Ok(DurableSharded::query(self, min, max))
    }

    fn knn(&self, center: &[u64; K], n: usize) -> Result<Vec<([u64; K], u64, f64)>, ShardError> {
        Ok(DurableSharded::knn(self, center, n))
    }

    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError> {
        DurableSharded::bulk_load(self, items)
    }

    fn stats(&self) -> ShardStats {
        DurableSharded::stats(self)
    }

    fn read_view(&self) -> ReadView<K> {
        ReadView::Live(DurableSharded::snapshot(self))
    }

    fn kind(&self) -> &'static str {
        "durable"
    }
}

/// A read-only backend serving a packed checkpoint (`phserve
/// --packed DIR`): the build-once serve-forever artifact. Every write
/// op answers the typed [`ShardError::ReadOnly`] — structurally
/// impossible, not transiently unavailable — and reads go straight to
/// the zero-copy packed shards.
pub struct PackedBackend<const K: usize>(pub Arc<PackedShards<u64, K>>);

impl<const K: usize> Backend<K> for PackedBackend<K> {
    fn insert(&self, _key: [u64; K], _value: u64) -> Result<(), ShardError> {
        Err(ShardError::ReadOnly)
    }

    fn get(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        self.0.get(key).map_err(ShardError::from)
    }

    fn remove(&self, _key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        Err(ShardError::ReadOnly)
    }

    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Result<Vec<([u64; K], u64)>, ShardError> {
        self.0.query(min, max).map_err(ShardError::from)
    }

    fn knn(&self, center: &[u64; K], n: usize) -> Result<Vec<([u64; K], u64, f64)>, ShardError> {
        self.0.knn(center, n).map_err(ShardError::from)
    }

    fn bulk_load(&self, _items: Vec<([u64; K], u64)>) -> Result<usize, ShardError> {
        Err(ShardError::ReadOnly)
    }

    fn stats(&self) -> ShardStats {
        self.0.stats()
    }

    fn read_view(&self) -> ReadView<K> {
        ReadView::Packed(Arc::clone(&self.0))
    }

    fn kind(&self) -> &'static str {
        "packed-readonly"
    }

    fn writable(&self) -> bool {
        false
    }
}
