//! The storage seam the server speaks to: one trait over the
//! in-memory [`ShardedTree`] and the WAL-backed [`DurableSharded`],
//! selected by a `phserve` flag at startup.
//!
//! Values are fixed to `u64` at the serving tier (the paper's PH-tree
//! stores references, not payloads), which keeps the wire protocol
//! single-shaped. Fallible writes surface `phshard`'s typed
//! [`ShardError`] so the server can translate `Overloaded` into the
//! protocol's shed reply instead of flattening every failure into one
//! opaque error.

use phshard::{DurableSharded, ShardError, ShardStats, ShardedTree, Snapshot};

/// Storage operations the server needs, `&self` and thread-safe —
/// every connection worker calls straight into the same backend.
pub trait Backend<const K: usize>: Send + Sync + 'static {
    /// Upserts `key` → `value`.
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError>;
    /// Point lookup.
    fn get(&self, key: &[u64; K]) -> Option<u64>;
    /// Removes `key`, returning the removed value.
    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError>;
    /// Window query over `[min, max]`, inclusive, in global Z-order.
    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], u64)>;
    /// `n` nearest neighbours of `center`, nearest first.
    fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], u64, f64)>;
    /// Batch upsert through the bulk-admission seam; returns the count
    /// of new keys. Must be all-or-nothing with respect to
    /// [`ShardError::Overloaded`]: a shed batch applies nothing.
    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError>;
    /// Per-shard statistics snapshot.
    fn stats(&self) -> ShardStats;
    /// Pins a consistent cross-shard view (see [`Snapshot`]). The
    /// server serves runs of read requests from one snapshot, so a
    /// pipelined read batch observes a single write-history cut and
    /// pays the cut protocol once.
    fn snapshot(&self) -> Snapshot<u64, K>;
}

impl<const K: usize> Backend<K> for ShardedTree<u64, K> {
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError> {
        ShardedTree::insert(self, key, value);
        Ok(())
    }

    fn get(&self, key: &[u64; K]) -> Option<u64> {
        ShardedTree::get(self, key)
    }

    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        Ok(ShardedTree::remove(self, key))
    }

    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], u64)> {
        ShardedTree::query(self, min, max)
    }

    fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], u64, f64)> {
        ShardedTree::knn(self, center, n)
    }

    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError> {
        Ok(ShardedTree::bulk_load(self, items))
    }

    fn stats(&self) -> ShardStats {
        ShardedTree::stats(self)
    }

    fn snapshot(&self) -> Snapshot<u64, K> {
        ShardedTree::snapshot(self)
    }
}

impl<const K: usize> Backend<K> for DurableSharded<u64, K> {
    fn insert(&self, key: [u64; K], value: u64) -> Result<(), ShardError> {
        DurableSharded::insert(self, key, value).map(|_| ())
    }

    fn get(&self, key: &[u64; K]) -> Option<u64> {
        self.get_with(key, |v| *v)
    }

    fn remove(&self, key: &[u64; K]) -> Result<Option<u64>, ShardError> {
        DurableSharded::remove(self, key)
    }

    fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], u64)> {
        DurableSharded::query(self, min, max)
    }

    fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], u64, f64)> {
        DurableSharded::knn(self, center, n)
    }

    fn bulk_load(&self, items: Vec<([u64; K], u64)>) -> Result<usize, ShardError> {
        DurableSharded::bulk_load(self, items)
    }

    fn stats(&self) -> ShardStats {
        DurableSharded::stats(self)
    }

    fn snapshot(&self) -> Snapshot<u64, K> {
        DurableSharded::snapshot(self)
    }
}
