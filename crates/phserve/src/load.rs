//! Scenario load generation for `phload`.
//!
//! Each scenario opens several connections, drives a pipelined op mix
//! against a phserve endpoint, and records per-op latencies. Every
//! connection keeps a client-side **model** of its acked writes (key
//! namespaces are disjoint per scenario × connection, so models never
//! interfere); a verification pass then re-reads every touched key and
//! checks the server agrees with the model exactly — acked writes are
//! present with the acked value, shed writes are absent. That is the
//! "zero unacked-but-applied, zero acked-but-lost" contract measured
//! end to end over real TCP.
//!
//! Latency claims are single-host honest: percentiles are exact (from
//! the full per-op sample vector, not histogram buckets) and the
//! report records `host_cores` so a 1-core CI run is never mistaken
//! for a parallel-speedup measurement.

use crate::client::Client;
use crate::proto::{ErrorCode, ProtoError, Request, Response};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::Path;
use std::time::Instant;

/// Dimension count both binaries are compiled for.
pub const SERVE_DIMS: usize = 3;
const K: usize = SERVE_DIMS;

/// One scenario mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// 10% insert, 80% point lookup, 5% remove, 5% kNN.
    PointHeavy,
    /// 25% insert, 65% window query, 10% point lookup.
    WindowHeavy,
    /// Long pipelined insert runs (exercises coalescing into
    /// `bulk_load`) with periodic explicit bulk frames and stats.
    IngestBurst,
    /// Clustered keys with one hot cluster — drives routing skew and,
    /// with the rebalancer on, hot-shard splits under traffic.
    SkewedClustered,
    /// Deeply pipelined pure inserts against a deliberately small
    /// admission queue: measures the shed path, not throughput.
    Overload,
    /// MVCC-lite read-under-write at a 95/5 reader mix: connection 0 is
    /// a dedicated writer churning its namespace (overwrites, fresh
    /// inserts, removes) while every other connection runs 95% reads
    /// (get / window / kNN over its own seeded working set). Measures
    /// reader latency while the write path is publishing roots
    /// underneath — the figure the lock-free read path exists for.
    ReadUnderWrite95,
    /// The same shape at a 50/50 reader mix — the reader connections
    /// themselves add write pressure, so root swaps are constant.
    ReadUnderWrite50,
    /// Pure reads against a `phserve --packed` server holding the
    /// deterministic [`packed_dataset`] (written by
    /// `phload --prepare-packed`). Every connection regenerates the
    /// dataset from the seed, so gets verify exact values, near-miss
    /// gets verify absences, and the verification pass re-reads the
    /// *whole* dataset — the packed artifact must agree byte for byte.
    PackedRead,
}

impl Scenario {
    /// The standard mixes (overload runs against its own,
    /// deliberately undersized, server).
    pub fn standard() -> [Scenario; 6] {
        [
            Scenario::PointHeavy,
            Scenario::WindowHeavy,
            Scenario::IngestBurst,
            Scenario::SkewedClustered,
            Scenario::ReadUnderWrite95,
            Scenario::ReadUnderWrite50,
        ]
    }

    /// Stable name used on the CLI and in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::PointHeavy => "point_heavy",
            Scenario::WindowHeavy => "window_heavy",
            Scenario::IngestBurst => "ingest_burst",
            Scenario::SkewedClustered => "skewed_clustered",
            Scenario::Overload => "overload",
            Scenario::ReadUnderWrite95 => "read_under_write_95",
            Scenario::ReadUnderWrite50 => "read_under_write_50",
            Scenario::PackedRead => "packed_read",
        }
    }

    /// Parses a CLI scenario name.
    pub fn parse(s: &str) -> Option<Scenario> {
        match s {
            "point_heavy" => Some(Scenario::PointHeavy),
            "window_heavy" => Some(Scenario::WindowHeavy),
            "ingest_burst" => Some(Scenario::IngestBurst),
            "skewed_clustered" => Some(Scenario::SkewedClustered),
            "overload" => Some(Scenario::Overload),
            "read_under_write_95" => Some(Scenario::ReadUnderWrite95),
            "read_under_write_50" => Some(Scenario::ReadUnderWrite50),
            "packed_read" => Some(Scenario::PackedRead),
            _ => None,
        }
    }

    /// Namespace tag keeping this scenario's keys disjoint from every
    /// other scenario's.
    fn id(self) -> u64 {
        match self {
            Scenario::PointHeavy => 1,
            Scenario::WindowHeavy => 2,
            Scenario::IngestBurst => 3,
            Scenario::SkewedClustered => 4,
            Scenario::Overload => 5,
            Scenario::ReadUnderWrite95 => 6,
            Scenario::ReadUnderWrite50 => 7,
            Scenario::PackedRead => 8,
        }
    }

    /// Pipeline depth override — overload wants the queue saturated.
    fn pipeline(self, base: usize) -> usize {
        match self {
            Scenario::Overload => base.max(256),
            _ => base,
        }
    }
}

/// Entries in the deterministic packed-scenario dataset.
pub const PACKED_DATASET_ENTRIES: usize = 2_000;

/// The dataset `--prepare-packed` freezes and [`Scenario::PackedRead`]
/// verifies — reproducible from the seed alone, so the load generator
/// needs no side channel to know what the read-only server holds.
pub fn packed_dataset(seed: u64) -> Vec<([u64; K], u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7061_636B); // "pack"
    let mut seen: HashSet<[u64; K]> = HashSet::new();
    let mut out = Vec::with_capacity(PACKED_DATASET_ENTRIES);
    while out.len() < PACKED_DATASET_ENTRIES {
        let mut k = [0u64; K];
        for d in k.iter_mut() {
            *d = rng.gen_range(0u64..1 << 40);
        }
        if seen.insert(k) {
            out.push((k, rng.gen::<u64>()));
        }
    }
    out
}

/// Builds the packed checkpoint `phserve --packed` serves: bulk-loads
/// the deterministic dataset into a sharded tree and freezes one
/// snapshot into `dir`. Returns `(shards, entries)` packed.
pub fn prepare_packed(dir: &Path, seed: u64) -> io::Result<(usize, u64)> {
    let tree: phshard::ShardedTree<u64, K> = phshard::ShardedTree::new(4);
    tree.bulk_load(packed_dataset(seed));
    let ck = phshard::write_packed_checkpoint(&tree.snapshot(), &phstore::vfs::StdVfs, dir)
        .map_err(io::Error::other)?;
    Ok((ck.shards, ck.entries))
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections per scenario.
    pub conns: usize,
    /// Ops issued per connection.
    pub ops_per_conn: usize,
    /// Max in-flight (unanswered) requests per connection.
    pub pipeline: usize,
    /// RNG seed; runs are deterministic per (seed, scenario, conn).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            conns: 4,
            ops_per_conn: 5000,
            pipeline: 64,
            seed: 42,
        }
    }
}

impl LoadConfig {
    /// Scaled-down variant for CI smoke runs.
    pub fn quick() -> Self {
        LoadConfig {
            conns: 2,
            ops_per_conn: 600,
            pipeline: 32,
            seed: 42,
        }
    }
}

/// Latency summary for one op type. Percentiles are exact.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Op label (`insert`, `get`, …).
    pub op: String,
    /// Replies received (including typed errors).
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Connections driven.
    pub conns: usize,
    /// Requests issued.
    pub ops_total: u64,
    /// Requests acknowledged (non-error reply).
    pub acked: u64,
    /// Requests refused with a typed `Overloaded` reply.
    pub shed: u64,
    /// Other error replies (should be zero).
    pub errors: u64,
    /// Wall-clock seconds for the op phase (excludes verification).
    pub elapsed_s: f64,
    /// Replies per second over the op phase.
    pub throughput_ops_s: f64,
    /// Per-op latency summaries.
    pub per_op: Vec<OpStats>,
    /// Keys re-read in the verification pass.
    pub verified_keys: u64,
    /// Verification mismatches (must be zero: acked-but-lost or
    /// unacked-but-applied writes).
    pub verify_failures: u64,
    /// Sum of per-connection model sizes (keys the clients believe are
    /// live) — comparable against server `stats.entries`.
    pub model_entries: u64,
}

/// Semantic effect a reply has on the connection's model.
enum Effect {
    Write([u64; K], u64),
    Remove([u64; K]),
    Bulk(Vec<([u64; K], u64)>),
    Read,
}

fn effect_of(req: &Request<K>) -> Effect {
    match req {
        Request::Insert { key, value } => Effect::Write(*key, *value),
        Request::Remove { key } => Effect::Remove(*key),
        Request::BulkLoad { items } => Effect::Bulk(items.clone()),
        _ => Effect::Read,
    }
}

/// Deterministic op plan for one connection. `ns` is the high-bits
/// namespace tag baked into `key[0]`; `base_seed` is the run-wide seed
/// (the packed scenario regenerates the shared dataset from it).
fn plan_ops(sc: Scenario, rng: &mut StdRng, ns: u64, n: usize, base_seed: u64) -> Vec<Request<K>> {
    let coord = |rng: &mut StdRng| rng.gen_range(0u64..1 << 32);
    let fresh = |rng: &mut StdRng| -> [u64; K] {
        let mut k = [0u64; K];
        k[0] = ns | coord(rng);
        for d in k.iter_mut().skip(1) {
            *d = coord(rng);
        }
        k
    };
    let mut existing: Vec<[u64; K]> = Vec::new();
    let pick = |rng: &mut StdRng, existing: &Vec<[u64; K]>| -> [u64; K] {
        if existing.is_empty() {
            fresh(rng)
        } else {
            existing[rng.gen_range(0usize..existing.len())]
        }
    };
    let mut ops = Vec::with_capacity(n);
    match sc {
        Scenario::PointHeavy => {
            for _ in 0..n {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.10 {
                    let key = fresh(rng);
                    existing.push(key);
                    ops.push(Request::Insert {
                        key,
                        value: rng.gen::<u64>(),
                    });
                } else if roll < 0.90 {
                    ops.push(Request::Get {
                        key: pick(rng, &existing),
                    });
                } else if roll < 0.95 {
                    ops.push(Request::Remove {
                        key: pick(rng, &existing),
                    });
                } else {
                    ops.push(Request::Knn {
                        center: pick(rng, &existing),
                        n: 3,
                    });
                }
            }
        }
        Scenario::WindowHeavy => {
            for _ in 0..n {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.25 {
                    let key = fresh(rng);
                    existing.push(key);
                    ops.push(Request::Insert {
                        key,
                        value: rng.gen::<u64>(),
                    });
                } else if roll < 0.90 {
                    let c = pick(rng, &existing);
                    let ext = rng.gen_range(1u64..1 << 20);
                    let mut min = c;
                    let mut max = c;
                    for d in 0..K {
                        min[d] = c[d].saturating_sub(ext);
                        max[d] = c[d].saturating_add(ext);
                    }
                    // Window must stay inside the namespace so hits
                    // belong to this connection only.
                    min[0] = min[0].max(ns);
                    max[0] = max[0].min(ns | ((1 << 48) - 1));
                    ops.push(Request::Query { min, max });
                } else {
                    ops.push(Request::Get {
                        key: pick(rng, &existing),
                    });
                }
            }
        }
        Scenario::IngestBurst => {
            for i in 0..n {
                if i % 80 == 79 {
                    ops.push(Request::Stats);
                } else if i % 211 == 137 {
                    let items: Vec<([u64; K], u64)> =
                        (0..64).map(|_| (fresh(rng), rng.gen::<u64>())).collect();
                    ops.push(Request::BulkLoad { items });
                } else {
                    ops.push(Request::Insert {
                        key: fresh(rng),
                        value: rng.gen::<u64>(),
                    });
                }
            }
        }
        Scenario::SkewedClustered => {
            let centers: Vec<[u64; K]> = (0..4).map(|_| fresh(rng)).collect();
            let near = |rng: &mut StdRng| -> [u64; K] {
                // 80% of traffic lands on cluster 0: a hot region the
                // rebalancer should split under load.
                let c = if rng.gen_bool(0.8) {
                    centers[0]
                } else {
                    centers[rng.gen_range(1usize..centers.len())]
                };
                let mut k = c;
                for d in k.iter_mut() {
                    *d = d.wrapping_add(rng.gen_range(0u64..4096));
                }
                k[0] = ns | (k[0] & ((1 << 48) - 1));
                k
            };
            for _ in 0..n {
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.50 {
                    let key = near(rng);
                    existing.push(key);
                    ops.push(Request::Insert {
                        key,
                        value: rng.gen::<u64>(),
                    });
                } else if roll < 0.90 {
                    ops.push(Request::Get {
                        key: pick(rng, &existing),
                    });
                } else {
                    let c = near(rng);
                    let mut min = c;
                    let mut max = c;
                    for d in 0..K {
                        min[d] = c[d].saturating_sub(8192);
                        max[d] = c[d].saturating_add(8192);
                    }
                    min[0] = min[0].max(ns);
                    max[0] = max[0].min(ns | ((1 << 48) - 1));
                    ops.push(Request::Query { min, max });
                }
            }
        }
        Scenario::Overload => {
            for _ in 0..n {
                ops.push(Request::Insert {
                    key: fresh(rng),
                    value: rng.gen::<u64>(),
                });
            }
        }
        Scenario::ReadUnderWrite95 | Scenario::ReadUnderWrite50 => {
            let read_frac = if sc == Scenario::ReadUnderWrite95 {
                0.95
            } else {
                0.50
            };
            // Connection index lives in bits 48..56 of the namespace
            // (conn + 1): connection 0 is the dedicated churn writer,
            // the rest are the measured readers.
            let writer = (ns >> 48) & 0xFF == 1;
            // Seed a working set first so the measured reads hit data.
            let seed_n = (n / 10).clamp(1, 500).min(n);
            for _ in 0..seed_n {
                let key = fresh(rng);
                existing.push(key);
                ops.push(Request::Insert {
                    key,
                    value: rng.gen::<u64>(),
                });
            }
            for _ in seed_n..n {
                let churn = if writer {
                    true
                } else {
                    rng.gen_range(0.0..1.0) >= read_frac
                };
                if churn {
                    // Overwrites dominate — every one forces a root
                    // publish the readers must never block on.
                    let roll: f64 = rng.gen_range(0.0..1.0);
                    if roll < 0.50 {
                        ops.push(Request::Insert {
                            key: pick(rng, &existing),
                            value: rng.gen::<u64>(),
                        });
                    } else if roll < 0.80 {
                        let key = fresh(rng);
                        existing.push(key);
                        ops.push(Request::Insert {
                            key,
                            value: rng.gen::<u64>(),
                        });
                    } else {
                        ops.push(Request::Remove {
                            key: pick(rng, &existing),
                        });
                    }
                } else {
                    let roll: f64 = rng.gen_range(0.0..1.0);
                    if roll < 0.80 {
                        ops.push(Request::Get {
                            key: pick(rng, &existing),
                        });
                    } else if roll < 0.95 {
                        let c = pick(rng, &existing);
                        let ext = rng.gen_range(1u64..1 << 16);
                        let mut min = c;
                        let mut max = c;
                        for d in 0..K {
                            min[d] = c[d].saturating_sub(ext);
                            max[d] = c[d].saturating_add(ext);
                        }
                        min[0] = min[0].max(ns);
                        max[0] = max[0].min(ns | ((1 << 48) - 1));
                        ops.push(Request::Query { min, max });
                    } else {
                        ops.push(Request::Knn {
                            center: pick(rng, &existing),
                            n: 3,
                        });
                    }
                }
            }
        }
        Scenario::PackedRead => {
            // Pure reads over the shared frozen dataset: point hits,
            // near-miss probes (one bit off a stored key — must answer
            // None), windows, kNN, periodic stats. No writes: the
            // server is read-only and every write would answer a typed
            // error.
            let data = packed_dataset(base_seed);
            let pick_e = |rng: &mut StdRng| data[rng.gen_range(0usize..data.len())].0;
            for i in 0..n {
                if i % 97 == 96 {
                    ops.push(Request::Stats);
                    continue;
                }
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.60 {
                    ops.push(Request::Get { key: pick_e(rng) });
                } else if roll < 0.75 {
                    let mut k = pick_e(rng);
                    k[K - 1] ^= 1;
                    ops.push(Request::Get { key: k });
                } else if roll < 0.92 {
                    let c = pick_e(rng);
                    let ext = rng.gen_range(1u64..1 << 36);
                    let mut min = c;
                    let mut max = c;
                    for d in 0..K {
                        min[d] = c[d].saturating_sub(ext);
                        max[d] = c[d].saturating_add(ext);
                    }
                    ops.push(Request::Query { min, max });
                } else {
                    ops.push(Request::Knn {
                        center: pick_e(rng),
                        n: 3,
                    });
                }
            }
        }
    }
    ops
}

/// Per-connection run outcome.
struct ConnOutcome {
    lat_ns: HashMap<&'static str, Vec<u64>>,
    acked: u64,
    shed: u64,
    errors: u64,
    verified_keys: u64,
    verify_failures: u64,
    model_entries: u64,
}

fn apply_reply(
    resp: &Response<K>,
    effect: &Effect,
    model: &mut HashMap<[u64; K], u64>,
    out: &mut ConnOutcome,
) {
    match resp {
        Response::Error { code, .. } => {
            if *code == ErrorCode::Overloaded {
                out.shed += 1;
            } else {
                out.errors += 1;
            }
        }
        _ => {
            out.acked += 1;
            match effect {
                Effect::Write(k, v) => {
                    model.insert(*k, *v);
                }
                Effect::Remove(k) => {
                    model.remove(k);
                }
                Effect::Bulk(items) => {
                    for (k, v) in items {
                        model.insert(*k, *v);
                    }
                }
                Effect::Read => {}
            }
        }
    }
}

fn conn_worker(
    addr: std::net::SocketAddr,
    sc: Scenario,
    cfg: &LoadConfig,
    conn: usize,
) -> Result<ConnOutcome, ProtoError> {
    let ns = (sc.id() << 56) | ((conn as u64 + 1) << 48);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ns.rotate_left(17)));
    let ops = plan_ops(sc, &mut rng, ns, cfg.ops_per_conn, cfg.seed);
    let pipeline = sc.pipeline(cfg.pipeline);

    let mut client: Client<K> = Client::connect(addr)?;
    let mut out = ConnOutcome {
        lat_ns: HashMap::new(),
        acked: 0,
        shed: 0,
        errors: 0,
        verified_keys: 0,
        verify_failures: 0,
        model_entries: 0,
    };
    let mut model: HashMap<[u64; K], u64> = HashMap::new();
    let mut attempted: HashSet<[u64; K]> = HashSet::new();
    if sc == Scenario::PackedRead {
        // The server is read-only and pre-filled with the frozen
        // dataset: seed the model from the seed-reproducible dataset so
        // the verification pass re-reads every stored key (plus a
        // near-miss probe per key, which must answer absent) against
        // the packed artifact.
        for (k, v) in packed_dataset(cfg.seed) {
            model.insert(k, v);
            attempted.insert(k);
            let mut miss = k;
            miss[K - 1] ^= 1;
            attempted.insert(miss);
        }
    }
    let mut inflight: VecDeque<(u64, &'static str, Effect, Instant)> = VecDeque::new();

    for req in &ops {
        if inflight.len() >= pipeline {
            let (id, label, effect, sent) = inflight.pop_front().unwrap();
            let resp = client.recv(id)?;
            out.lat_ns
                .entry(label)
                .or_default()
                .push(sent.elapsed().as_nanos() as u64);
            apply_reply(&resp, &effect, &mut model, &mut out);
        }
        let effect = effect_of(req);
        match &effect {
            Effect::Write(k, _) | Effect::Remove(k) => {
                attempted.insert(*k);
            }
            Effect::Bulk(items) => {
                for (k, _) in items {
                    attempted.insert(*k);
                }
            }
            Effect::Read => {}
        }
        let id = client.send(req)?;
        inflight.push_back((id, req.label(), effect, Instant::now()));
    }
    while let Some((id, label, effect, sent)) = inflight.pop_front() {
        let resp = client.recv(id)?;
        out.lat_ns
            .entry(label)
            .or_default()
            .push(sent.elapsed().as_nanos() as u64);
        apply_reply(&resp, &effect, &mut model, &mut out);
    }

    // Verification: every key any write touched must match the model —
    // acked value present, shed/removed keys absent.
    let mut keys: Vec<[u64; K]> = attempted.into_iter().collect();
    keys.sort_unstable();
    // An overloaded server may shed verification gets too — that is the
    // typed, safe-to-retry contract, so retry shed keys until they land.
    while !keys.is_empty() {
        let mut retry: Vec<[u64; K]> = Vec::new();
        for chunk in keys.chunks(32) {
            let ids: Vec<(u64, [u64; K])> = chunk
                .iter()
                .map(|k| client.send(&Request::Get { key: *k }).map(|id| (id, *k)))
                .collect::<Result<_, _>>()?;
            for (id, key) in ids {
                match client.recv(id)? {
                    Response::Value(got) => {
                        out.verified_keys += 1;
                        if got != model.get(&key).copied() {
                            out.verify_failures += 1;
                        }
                    }
                    Response::Error {
                        code: ErrorCode::Overloaded,
                        ..
                    } => retry.push(key),
                    _ => {
                        return Err(ProtoError::Malformed(
                            "unexpected reply to verification get",
                        ))
                    }
                }
            }
        }
        if !retry.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        keys = retry;
    }
    out.model_entries = model.len() as u64;
    Ok(out)
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1000.0
}

/// Runs one scenario against `addr` and aggregates every connection's
/// outcome. Returns an error if any connection hit a transport or
/// protocol failure.
pub fn run_scenario(
    addr: std::net::SocketAddr,
    sc: Scenario,
    cfg: &LoadConfig,
) -> io::Result<ScenarioReport> {
    let started = Instant::now();
    let outcomes: Vec<Result<ConnOutcome, ProtoError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.conns)
            .map(|conn| {
                let cfg = cfg.clone();
                s.spawn(move || conn_worker(addr, sc, &cfg, conn))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut lat: HashMap<&'static str, Vec<u64>> = HashMap::new();
    let mut report = ScenarioReport {
        scenario: sc.name().to_string(),
        conns: cfg.conns,
        ops_total: (cfg.conns * cfg.ops_per_conn) as u64,
        acked: 0,
        shed: 0,
        errors: 0,
        elapsed_s,
        throughput_ops_s: 0.0,
        per_op: Vec::new(),
        verified_keys: 0,
        verify_failures: 0,
        model_entries: 0,
    };
    for o in outcomes {
        let o = o.map_err(|e| io::Error::other(format!("{}: {e}", sc.name())))?;
        report.acked += o.acked;
        report.shed += o.shed;
        report.errors += o.errors;
        report.verified_keys += o.verified_keys;
        report.verify_failures += o.verify_failures;
        report.model_entries += o.model_entries;
        for (label, mut v) in o.lat_ns {
            lat.entry(label).or_default().append(&mut v);
        }
    }
    report.throughput_ops_s = report.ops_total as f64 / elapsed_s.max(1e-9);
    let mut labels: Vec<&&str> = lat.keys().collect();
    labels.sort();
    let labels: Vec<&str> = labels.into_iter().copied().collect();
    for label in labels {
        let v = lat.get_mut(label).unwrap();
        v.sort_unstable();
        let mean_us = v.iter().sum::<u64>() as f64 / (v.len() as f64) / 1000.0;
        report.per_op.push(OpStats {
            op: label.to_string(),
            count: v.len() as u64,
            p50_us: percentile_us(v, 0.50),
            p99_us: percentile_us(v, 0.99),
            mean_us,
        });
    }
    Ok(report)
}

/// Logical cores on this host — stamped into the report so claims are
/// read in context (CI runs on 1 core: no parallel-speedup claims).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn json_f(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

/// Renders the report set as the `results/phserve.json` document.
pub fn to_json(reports: &[ScenarioReport], backend: &str, host_cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(&format!("  \"backend\": \"{backend}\",\n"));
    out.push_str(&format!("  \"dims\": {SERVE_DIMS},\n"));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"scenario\": \"{}\",\n", r.scenario));
        out.push_str(&format!("      \"conns\": {},\n", r.conns));
        out.push_str(&format!("      \"ops_total\": {},\n", r.ops_total));
        out.push_str(&format!("      \"acked\": {},\n", r.acked));
        out.push_str(&format!("      \"shed\": {},\n", r.shed));
        out.push_str(&format!("      \"errors\": {},\n", r.errors));
        out.push_str(&format!(
            "      \"shed_rate\": {},\n",
            json_f(r.shed as f64 / (r.ops_total as f64).max(1.0))
        ));
        out.push_str(&format!("      \"elapsed_s\": {},\n", json_f(r.elapsed_s)));
        out.push_str(&format!(
            "      \"throughput_ops_s\": {},\n",
            json_f(r.throughput_ops_s)
        ));
        out.push_str(&format!("      \"verified_keys\": {},\n", r.verified_keys));
        out.push_str(&format!(
            "      \"verify_failures\": {},\n",
            r.verify_failures
        ));
        out.push_str(&format!("      \"model_entries\": {},\n", r.model_entries));
        out.push_str("      \"per_op\": [\n");
        for (j, op) in r.per_op.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"op\": \"{}\", \"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}}}{}\n",
                op.op,
                op.count,
                json_f(op.p50_us),
                json_f(op.p99_us),
                json_f(op.mean_us),
                if j + 1 == r.per_op.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Inserts a top-level `"trace"` object into a [`to_json`] report —
/// the `phload --trace` overhead record (A/B throughput of the same
/// scenario with the flight recorder off and on).
pub fn inject_trace_json(
    json: &str,
    enabled: bool,
    sample_every: u32,
    baseline_ops_s: f64,
    traced_ops_s: f64,
) -> String {
    let overhead_pct = if traced_ops_s > 0.0 && enabled {
        (baseline_ops_s / traced_ops_s - 1.0) * 100.0
    } else {
        0.0
    };
    let block = format!(
        "  \"trace\": {{\"enabled\": {enabled}, \"sample_every\": {sample_every}, \
         \"baseline_ops_s\": {}, \"traced_ops_s\": {}, \"overhead_pct\": {}}},\n",
        json_f(baseline_ops_s),
        json_f(traced_ops_s),
        json_f(overhead_pct),
    );
    // to_json always opens with "{\n" — splice right after it.
    json.replacen("{\n", &format!("{{\n{block}"), 1)
}

/// Human-readable results table (also the source of the README table).
pub fn render_table(reports: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("| scenario | ops | throughput (op/s) | shed | op | p50 (µs) | p99 (µs) |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in reports {
        for (i, op) in r.per_op.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!(
                    "| {} | {} | {:.0} | {} | {} | {:.1} | {:.1} |\n",
                    r.scenario,
                    r.ops_total,
                    r.throughput_ops_s,
                    r.shed,
                    op.op,
                    op.p50_us,
                    op.p99_us
                ));
            } else {
                out.push_str(&format!(
                    "| | | | | {} | {:.1} | {:.1} |\n",
                    op.op, op.p50_us, op.p99_us
                ));
            }
        }
    }
    out
}
