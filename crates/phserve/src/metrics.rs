//! Server-side instrument wiring, following the `phshard`/`phstore`
//! convention: handles are issued once at spawn time from a
//! [`phmetrics::Registry`]; a disabled registry hands out no-op
//! handles, so the hot path records unconditionally.
//!
//! Instrument catalogue (Prometheus names):
//!
//! * `phserve_connections` (+`_peak`) — currently open client
//!   connections (gauge).
//! * `phserve_connections_total` — connections ever accepted.
//! * `phserve_requests_total{op=...}` — replies sent per op type
//!   (including typed error replies).
//! * `phserve_request_latency_ns{op=...}` — log₂ latency histogram
//!   from admission to reply encode.
//! * `phserve_queue_depth` (+`_peak`) — admission queue depth; the
//!   peak proves the queue stayed bounded under overload.
//! * `phserve_shed_total` — requests refused at admission with a typed
//!   `Overloaded` reply (queue past high water).
//! * `phserve_backend_overloaded_total` — requests refused by the
//!   backend's own shed path (`ShardError::Overloaded` from a
//!   migrating shard's backlog).
//! * `phserve_batches_total` / `phserve_batch_size` — admission-queue
//!   batches popped by workers, and their size distribution.
//! * `phserve_coalesced_inserts_total` — pipelined inserts that rode a
//!   bulk load instead of the per-key path.
//! * `phserve_protocol_errors_total` — malformed frames (each closes
//!   exactly its own connection).
//! * `phserve_bytes_read_total` / `phserve_bytes_written_total` —
//!   payload traffic.

use phmetrics::{Counter, Gauge, Histogram, Registry};

/// Op labels with dedicated counter/latency series, in opcode order.
pub(crate) const OP_LABELS: [&str; 8] = [
    "insert",
    "get",
    "remove",
    "query",
    "knn",
    "bulk_load",
    "stats",
    "ping",
];

/// One op's counter + latency pair.
#[derive(Clone)]
pub(crate) struct OpInstruments {
    pub(crate) total: Counter,
    pub(crate) latency_ns: Histogram,
}

/// Every instrument the server records.
#[derive(Clone)]
pub(crate) struct ServeMetrics {
    pub(crate) connections: Gauge,
    pub(crate) connections_total: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) shed: Counter,
    pub(crate) backend_overloaded: Counter,
    pub(crate) batches: Counter,
    pub(crate) batch_size: Histogram,
    pub(crate) coalesced_inserts: Counter,
    pub(crate) protocol_errors: Counter,
    pub(crate) bytes_read: Counter,
    pub(crate) bytes_written: Counter,
    ops: Vec<OpInstruments>,
}

impl ServeMetrics {
    pub(crate) fn new(reg: &Registry) -> Self {
        ServeMetrics {
            connections: reg.gauge("phserve_connections"),
            connections_total: reg.counter("phserve_connections_total"),
            queue_depth: reg.gauge("phserve_queue_depth"),
            shed: reg.counter("phserve_shed_total"),
            backend_overloaded: reg.counter("phserve_backend_overloaded_total"),
            batches: reg.counter("phserve_batches_total"),
            batch_size: reg.histogram("phserve_batch_size"),
            coalesced_inserts: reg.counter("phserve_coalesced_inserts_total"),
            protocol_errors: reg.counter("phserve_protocol_errors_total"),
            bytes_read: reg.counter("phserve_bytes_read_total"),
            bytes_written: reg.counter("phserve_bytes_written_total"),
            ops: OP_LABELS
                .iter()
                .map(|op| OpInstruments {
                    total: reg.counter(&format!("phserve_requests_total{{op=\"{op}\"}}")),
                    latency_ns: reg
                        .histogram(&format!("phserve_request_latency_ns{{op=\"{op}\"}}")),
                })
                .collect(),
        }
    }

    /// p99 of the merged per-op request-latency distribution, ns — the
    /// input to the slow-query threshold autotune (trailing p99 × 4).
    /// 0 until any request has completed or when metrics are disabled.
    pub(crate) fn merged_latency_p99_ns(&self) -> u64 {
        let mut merged = self.ops[0].latency_ns.load();
        for op in &self.ops[1..] {
            merged.merge(&op.latency_ns.load());
        }
        merged.p99()
    }

    /// Instruments for the op labelled `label` (one of [`OP_LABELS`]).
    pub(crate) fn op(&self, label: &str) -> &OpInstruments {
        let i = OP_LABELS
            .iter()
            .position(|&l| l == label)
            .expect("unknown op label");
        &self.ops[i]
    }
}
