//! The TCP server: connection-per-thread readers feeding a shared
//! bounded admission queue, batching workers, and load-shedding.
//!
//! ## Data flow
//!
//! ```text
//! accept loop ──▶ conn reader ──▶ admission queue ──▶ worker(s)
//!                 (1 thread/conn)  (bounded, shared)   (batch pop)
//!                      │                                   │
//!                 conn writer ◀──── framed replies ◀───────┘
//! ```
//!
//! Each connection gets a reader thread (decodes frames, admits
//! requests) and a writer thread (serialises framed replies from an
//! mpsc channel). Workers pop up to [`ServerConfig::batch_max`]
//! requests per lock acquisition — pipelined clients therefore batch
//! naturally: the deeper the queue, the bigger the pop. A maximal run
//! of consecutive `Insert` requests in a batch is coalesced into one
//! [`Backend::bulk_load`] call (the phshard batch-admission seam); a
//! maximal run of consecutive reads (`Get`/`Query`/`Knn`/`Stats`) is
//! answered from **one** pinned [`Backend::read_view`] — a single
//! consistent cross-shard cut per run, with zero lock acquisitions on
//! the tree read path.
//!
//! ## Backpressure and shedding
//!
//! The admission queue is bounded by [`ServerConfig::queue_cap`] — the
//! high-water mark. A reader that finds the queue at high water first
//! *blocks* for up to [`ServerConfig::shed_wait`] (backpressure: the
//! connection stops reading, TCP flow control pushes back on the
//! client); if the queue is still at high water it replies with a
//! typed `Overloaded` error — the same contract as
//! `phshard::ShardError::Overloaded`: the op was not applied and is
//! safe to retry. Queue depth is therefore *provably* bounded: depth
//! never exceeds `queue_cap`, and the `phserve_queue_depth_peak` gauge
//! exposes the observed maximum.
//!
//! ## Ordering
//!
//! With the default single worker, replies on one connection preserve
//! request order. With `workers > 1`, batches may complete out of
//! order across batch boundaries — every reply carries its request id,
//! so pipelined clients match by id (per-key linearizability still
//! comes from the backend's shard locks).
//!
//! A malformed frame (bad checksum, oversized length, unknown opcode,
//! torn body) yields a typed [`ProtoError`], a best-effort error
//! reply, and closes **only that connection** — the server never
//! panics on input bytes.

use crate::backend::{Backend, ReadView};
use crate::metrics::ServeMetrics;
use crate::proto::{self, ErrorCode, ProtoError, Request, Response, StatsReply};
use phmetrics::{OpTimer, Registry};
use phshard::{ShardError, ShardStats};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning. Defaults suit a small host; the load generator and
/// tests shrink the queue to force the shed path deterministically.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission-queue high-water mark (hard depth bound). A reader
    /// finding the queue here blocks for [`ServerConfig::shed_wait`],
    /// then sheds with a typed `Overloaded` reply.
    pub queue_cap: usize,
    /// Maximum requests a worker pops per lock acquisition.
    pub batch_max: usize,
    /// Worker threads draining the admission queue. 1 (the default)
    /// preserves per-connection reply order.
    pub workers: usize,
    /// How long an admission blocks on a full queue before shedding.
    pub shed_wait: Duration,
    /// Artificial per-backend-call service delay — a load-testing aid
    /// to emulate an expensive backend on fast loopback hardware (the
    /// overload scenario and the shed tests use it). `None` in
    /// production.
    pub op_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_cap: 1024,
            batch_max: 64,
            workers: 1,
            shed_wait: Duration::from_millis(2),
            op_delay: None,
        }
    }
}

/// One admitted request awaiting a worker.
struct Job<const K: usize> {
    req_id: u64,
    req: Request<K>,
    timer: OpTimer,
    reply: mpsc::Sender<Vec<u8>>,
    /// Trace context created at the wire layer (ZST when the `trace`
    /// feature is off).
    ctx: phtrace::TraceCtx,
    /// Admission timestamp on the trace clock (0 untraced) — the root
    /// span's start, and the queue-wait span's start.
    enq_ns: u64,
    /// Queue depth observed at admission, recorded on the queue span.
    depth: u32,
}

/// State shared by every server thread.
struct Shared<B: Backend<K>, const K: usize> {
    backend: Arc<B>,
    cfg: ServerConfig,
    metrics: ServeMetrics,
    queue: Mutex<VecDeque<Job<K>>>,
    /// Signals workers: the queue gained jobs (or stop flipped).
    work: Condvar,
    /// Signals blocked readers: the queue drained below high water.
    space: Condvar,
    stop: AtomicBool,
    /// Live connection sockets (by connection id) so shutdown can
    /// unblock their reader threads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl<B: Backend<K>, const K: usize> Shared<B, K> {
    /// Admits `job` or sheds it with a typed `Overloaded` reply after
    /// the bounded backpressure wait. Never blocks unboundedly.
    fn admit(&self, mut job: Job<K>) {
        let mut q = self.queue.lock().unwrap();
        if q.len() >= self.cfg.queue_cap {
            let (guard, _) = self
                .space
                .wait_timeout_while(q, self.cfg.shed_wait, |q| {
                    q.len() >= self.cfg.queue_cap && !self.stop.load(Ordering::Relaxed)
                })
                .unwrap();
            q = guard;
            if q.len() >= self.cfg.queue_cap {
                drop(q);
                self.metrics.shed.inc();
                let cap = self.cfg.queue_cap;
                phtrace::trigger_dump(&format!(
                    "admission shed: op {} (req {}) with queue at high water ({cap})",
                    job.req.label(),
                    job.req_id,
                ));
                self.respond(
                    job,
                    &Response::Error {
                        code: ErrorCode::Overloaded,
                        detail: format!("admission queue at high water ({cap})"),
                    },
                );
                return;
            }
        }
        job.depth = q.len() as u32;
        q.push_back(job);
        self.metrics.queue_depth.set(q.len() as i64);
        drop(q);
        self.work.notify_one();
    }

    /// Encodes, frames and sends the reply, then closes out the op's
    /// latency/counter instruments. Send failures (peer gone) are
    /// ignored — the op already happened; the client just never hears.
    ///
    /// The reply encode/send rides a `Reply` trace span, and this is
    /// where the request's root span closes: if admission→now crossed
    /// the slow threshold, `finish_root` assembles the per-phase
    /// breakdown into the slow-query log.
    fn respond(&self, job: Job<K>, resp: &Response<K>) {
        {
            let _t = job.ctx.attach();
            let reply_span = phtrace::span(phtrace::Phase::Reply);
            let body = proto::encode_response(job.req_id, resp);
            let framed = proto::frame(&body);
            self.metrics.bytes_written.add(framed.len() as u64);
            let _ = job.reply.send(framed);
            drop(reply_span);
            phtrace::finish_root(job.ctx, job.enq_ns);
        }
        let inst = self.metrics.op(job.req.label());
        inst.total.inc();
        inst.latency_ns.finish(job.timer);
    }

    /// Opens the executing side of a job's trace on the calling worker:
    /// records the queue-wait span (admission → now — spanning
    /// head-of-line wait, any configured op delay, and batch position)
    /// and attaches the request context so spans opened below belong
    /// to it. Keep the guard alive across the backend call.
    fn begin_exec(job: &Job<K>) -> phtrace::CtxGuard {
        phtrace::record_queue_wait(job.ctx, job.enq_ns, job.depth);
        job.ctx.attach()
    }

    /// Maps a backend failure to its wire error, counting backend
    /// sheds separately from admission sheds.
    fn err_response(&self, e: &ShardError) -> Response<K> {
        let code = match e {
            ShardError::Overloaded { .. } => {
                self.metrics.backend_overloaded.inc();
                ErrorCode::Overloaded
            }
            // Structurally unserviceable (packed read-only backend),
            // not a backend failure: don't retry, don't page anyone.
            ShardError::ReadOnly => ErrorCode::BadRequest,
            _ => ErrorCode::Internal,
        };
        Response::Error {
            code,
            detail: e.to_string(),
        }
    }

    fn stats_reply(s: &ShardStats) -> StatsReply {
        StatsReply {
            shards: s.shards as u32,
            entries: s.entries as u64,
            epoch: s.epoch,
            skew: s.skew(),
        }
    }

    /// Executes one non-coalesced request against the backend.
    fn handle_one(&self, job: Job<K>) {
        if let Some(d) = self.cfg.op_delay {
            std::thread::sleep(d);
        }
        let _t = Self::begin_exec(&job);
        let resp = match &job.req {
            Request::Insert { key, value } => match self.backend.insert(*key, *value) {
                Ok(()) => Response::Ack,
                Err(e) => self.err_response(&e),
            },
            Request::Get { key } => match self.backend.get(key) {
                Ok(v) => Response::Value(v),
                Err(e) => self.err_response(&e),
            },
            Request::Remove { key } => match self.backend.remove(key) {
                Ok(prev) => Response::Value(prev),
                Err(e) => self.err_response(&e),
            },
            Request::Query { min, max } => match self.backend.query(min, max) {
                Ok(entries) => Response::Entries(entries),
                Err(e) => self.err_response(&e),
            },
            Request::Knn { center, n } => match self.backend.knn(center, *n as usize) {
                Ok(nbs) => Response::Neighbors(nbs),
                Err(e) => self.err_response(&e),
            },
            Request::BulkLoad { items } => match self.backend.bulk_load(items.clone()) {
                Ok(new) => Response::Loaded { new: new as u32 },
                Err(e) => self.err_response(&e),
            },
            Request::Stats => Response::Stats(Self::stats_reply(&self.backend.stats())),
            Request::Ping => Response::Pong,
        };
        self.respond(job, &resp);
    }

    /// Whether a request can be answered from a pinned [`ReadView`].
    fn is_read(req: &Request<K>) -> bool {
        matches!(
            req,
            Request::Get { .. } | Request::Query { .. } | Request::Knn { .. } | Request::Stats
        )
    }

    /// Answers one read request from a pinned read view.
    fn handle_read(&self, job: Job<K>, view: &ReadView<K>) {
        let _t = Self::begin_exec(&job);
        let resp = match &job.req {
            Request::Get { key } => match view.get(key) {
                Ok(v) => Response::Value(v),
                Err(e) => self.err_response(&e),
            },
            Request::Query { min, max } => match view.query(min, max) {
                Ok(entries) => Response::Entries(entries),
                Err(e) => self.err_response(&e),
            },
            Request::Knn { center, n } => match view.knn(center, *n as usize) {
                Ok(nbs) => Response::Neighbors(nbs),
                Err(e) => self.err_response(&e),
            },
            Request::Stats => Response::Stats(Self::stats_reply(&view.stats())),
            _ => unreachable!("read run contains only reads"),
        };
        self.respond(job, &resp);
    }

    /// Processes one popped batch: maximal runs of consecutive inserts
    /// ride one bulk load (all acked, or all shed — the backend's bulk
    /// admission is all-or-nothing for `Overloaded`); maximal runs of
    /// consecutive reads are answered from **one** pinned backend
    /// read view (a single consistent cut for the whole run, and one
    /// cut-protocol round instead of one per request — the view is
    /// pinned after every request in the run was admitted, so each get
    /// still sees every write acknowledged before it was sent);
    /// everything else executes in order.
    fn process(&self, batch: Vec<Job<K>>) {
        let mut rest: VecDeque<Job<K>> = batch.into();
        while let Some(first) = rest.pop_front() {
            if Self::is_read(&first.req) && rest.front().is_some_and(|j| Self::is_read(&j.req)) {
                let mut run = vec![first];
                while rest.front().is_some_and(|j| Self::is_read(&j.req)) {
                    run.push(rest.pop_front().unwrap());
                }
                if let Some(d) = self.cfg.op_delay {
                    std::thread::sleep(d);
                }
                let view = self.backend.read_view();
                for job in run {
                    self.handle_read(job, &view);
                }
                continue;
            }
            let run_starts = matches!(first.req, Request::Insert { .. })
                && matches!(rest.front().map(|j| &j.req), Some(Request::Insert { .. }));
            if !run_starts {
                self.handle_one(first);
                continue;
            }
            let mut run = vec![first];
            while matches!(rest.front().map(|j| &j.req), Some(Request::Insert { .. })) {
                run.push(rest.pop_front().unwrap());
            }
            let items: Vec<([u64; K], u64)> = run
                .iter()
                .map(|j| match &j.req {
                    Request::Insert { key, value } => (*key, *value),
                    _ => unreachable!("run contains only inserts"),
                })
                .collect();
            self.metrics.coalesced_inserts.add(run.len() as u64);
            if let Some(d) = self.cfg.op_delay {
                std::thread::sleep(d);
            }
            // Every job in the run gets its queue-wait span; the
            // coalesced bulk load executes once, so its fan-out and
            // descent spans are attributed to the run's first sampled
            // request (the rest still carry queue + reply phases).
            for job in &run {
                phtrace::record_queue_wait(job.ctx, job.enq_ns, job.depth);
            }
            let exec_ctx = run
                .iter()
                .map(|j| j.ctx)
                .find(|c| c.sampled())
                .unwrap_or_else(phtrace::TraceCtx::off);
            let resp = {
                let _t = exec_ctx.attach();
                match self.backend.bulk_load(items) {
                    Ok(_) => Response::Ack,
                    Err(e) => self.err_response(&e),
                }
            };
            for job in run {
                self.respond(job, &resp);
            }
        }
    }

    fn worker_loop(&self) {
        let mut batches_done: u64 = 0;
        loop {
            let batch: Vec<Job<K>> = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.stop.load(Ordering::Relaxed) {
                        return; // queue drained, shutting down
                    }
                    q = self
                        .work
                        .wait_timeout(q, Duration::from_millis(50))
                        .unwrap()
                        .0;
                }
                let take = q.len().min(self.cfg.batch_max);
                let batch = q.drain(..take).collect();
                self.metrics.queue_depth.set(q.len() as i64);
                batch
            };
            self.space.notify_all();
            self.metrics.batches.inc();
            self.metrics.batch_size.record(batch.len() as u64);
            self.process(batch);
            batches_done += 1;
            // Retune the Auto slow-query threshold from live traffic:
            // trailing merged p99 × 4 (1ms floor so fast loopback
            // latencies don't flag every request), every 64 batches.
            if batches_done.is_multiple_of(64) && phtrace::slow_threshold_is_auto() {
                let p99 = self.metrics.merged_latency_p99_ns();
                if p99 > 0 {
                    phtrace::set_slow_threshold_ns(p99.saturating_mul(4).max(1_000_000));
                }
            }
        }
    }

    /// Reader half of one connection. Returns when the peer closes,
    /// the frame stream turns malformed, or the server stops.
    fn serve_conn(&self, stream: TcpStream, conn_id: u64) {
        let _ = stream.set_nodelay(true);
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let writer = std::thread::Builder::new()
            .name(format!("phserve-wr-{conn_id}"))
            .spawn(move || {
                let mut w = BufWriter::new(write_half);
                while let Ok(frame) = rx.recv() {
                    if w.write_all(&frame).is_err() {
                        break;
                    }
                    // Drain whatever else is ready before paying the
                    // flush: pipelined replies coalesce into one write.
                    let mut dead = false;
                    while let Ok(frame) = rx.try_recv() {
                        if w.write_all(&frame).is_err() {
                            dead = true;
                            break;
                        }
                    }
                    if dead || w.flush().is_err() {
                        break;
                    }
                }
            })
            .expect("spawn connection writer");

        let mut r = BufReader::new(stream);
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            match proto::read_frame(&mut r) {
                Ok(None) => break, // clean close at a frame boundary
                Ok(Some(body)) => {
                    self.metrics
                        .bytes_read
                        .add((proto::HEADER_LEN + body.len()) as u64);
                    match proto::decode_request::<K>(&body) {
                        Ok((req_id, req)) => {
                            let timer = self.metrics.op(req.label()).latency_ns.start();
                            let ctx = phtrace::start_request(
                                req_id,
                                phtrace::TraceOp::from_label(req.label()),
                            );
                            self.admit(Job {
                                req_id,
                                req,
                                timer,
                                reply: tx.clone(),
                                ctx,
                                enq_ns: phtrace::now_ns(),
                                depth: 0,
                            });
                        }
                        Err(e) => {
                            self.protocol_error(&tx, &e);
                            break;
                        }
                    }
                }
                Err(ProtoError::Io(_)) => break, // reset / our own shutdown
                Err(e) => {
                    if !self.stop.load(Ordering::Relaxed) {
                        self.protocol_error(&tx, &e);
                    }
                    break;
                }
            }
        }
        drop(tx);
        let _ = writer.join();
        self.conns.lock().unwrap().remove(&conn_id);
        self.metrics.connections.add(-1);
    }

    /// The `/readyz` payload: what this process is actually serving —
    /// backend kind and writability, the current shard topology, and
    /// the rebalancer / in-flight-migration state read back from the
    /// registry (those series exist only when the backend records
    /// them, i.e. with `phshard/metrics`; absent series render `null`).
    fn readiness_json(&self, registry: &Registry) -> String {
        let stats = self.backend.stats();
        let snap = registry.snapshot();
        let opt = |v: Option<i64>| match v {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let skew = stats.skew();
        let skew = if skew.is_finite() { skew } else { 0.0 };
        format!(
            concat!(
                "{{\"ready\":{},\"backend\":{{\"kind\":\"{}\",\"writable\":{}}},",
                "\"shards\":{},\"entries\":{},\"epoch\":{},\"skew\":{:.4},",
                "\"queue_depth\":{},",
                "\"rebalancer\":{{\"routing_epoch\":{},\"splits_total\":{},",
                "\"migration_inflight\":{}}}}}",
            ),
            !self.stop.load(Ordering::Relaxed),
            self.backend.kind(),
            self.backend.writable(),
            stats.shards,
            stats.entries,
            stats.epoch,
            skew,
            self.queue.lock().unwrap().len(),
            opt(snap.gauge("phshard_routing_epoch").map(|g| g.value)),
            opt(snap
                .counter("phshard_rebalance_splits_total")
                .map(|c| c as i64)),
            opt(snap.gauge("phshard_migration_inflight").map(|g| g.value)),
        )
    }

    /// Counts a malformed frame and best-effort sends a typed error
    /// reply (request id 0 — the frame's id is untrustworthy) before
    /// the caller closes the connection.
    fn protocol_error(&self, tx: &mpsc::Sender<Vec<u8>>, e: &ProtoError) {
        self.metrics.protocol_errors.inc();
        phtrace::trigger_dump(&format!("protocol error: {e}"));
        let resp: Response<K> = Response::Error {
            code: ErrorCode::BadRequest,
            detail: e.to_string(),
        };
        let _ = tx.send(proto::frame(&proto::encode_response(0, &resp)));
    }
}

/// A running server. Dropping the handle stops it; [`ServerHandle::stop`]
/// does the same explicitly and joins every thread.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    registry: Registry,
    stop_fn: Option<Box<dyn FnOnce() + Send>>,
    threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Address the server accepted on (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address of the Prometheus sidecar, if one was started.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The registry every server instrument records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Stops accepting, unblocks and joins every thread. Queued
    /// requests are drained (and answered) before workers exit.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(f) = self.stop_fn.take() {
            f();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_threads.lock().unwrap());
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds `addr` (use port 0 for an ephemeral port), spawns the accept
/// loop, `cfg.workers` queue workers and — when `metrics_addr` is
/// given — an HTTP sidecar answering `GET /metrics` (Prometheus text
/// exposition from `registry`), `/healthz` + `/livez` (liveness),
/// `/readyz` (readiness JSON) and the `/debug/slow`, `/debug/trace`,
/// `/debug/dumps` tracing endpoints (see [`serve_http_once`]).
pub fn spawn<B: Backend<K>, const K: usize>(
    backend: Arc<B>,
    addr: &str,
    metrics_addr: Option<&str>,
    registry: Registry,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        backend,
        metrics: ServeMetrics::new(&registry),
        cfg: cfg.clone(),
        queue: Mutex::new(VecDeque::with_capacity(cfg.queue_cap.min(4096))),
        work: Condvar::new(),
        space: Condvar::new(),
        stop: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn: AtomicU64::new(0),
    });

    let mut threads = Vec::new();
    for w in 0..cfg.workers.max(1) {
        let sh = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("phserve-worker-{w}"))
                .spawn(move || sh.worker_loop())
                .expect("spawn worker"),
        );
    }

    let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let sh = Arc::clone(&shared);
        let ct = Arc::clone(&conn_threads);
        threads.push(
            std::thread::Builder::new()
                .name("phserve-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if sh.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        sh.metrics.connections_total.inc();
                        sh.metrics.connections.add(1);
                        let conn_id = sh.next_conn.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            sh.conns.lock().unwrap().insert(conn_id, clone);
                        }
                        let conn_shared = Arc::clone(&sh);
                        let handle = std::thread::Builder::new()
                            .name(format!("phserve-conn-{conn_id}"))
                            .spawn(move || conn_shared.serve_conn(stream, conn_id))
                            .expect("spawn connection thread");
                        let mut ct = ct.lock().unwrap();
                        // Reap finished connection threads so a
                        // long-lived server doesn't hoard handles.
                        let (done, live): (Vec<_>, Vec<_>) =
                            ct.drain(..).partition(|h| h.is_finished());
                        for h in done {
                            let _ = h.join();
                        }
                        *ct = live;
                        ct.push(handle);
                    }
                })
                .expect("spawn accept loop"),
        );
    }

    let metrics_local = match metrics_addr {
        Some(maddr) => {
            let mlistener = TcpListener::bind(maddr)?;
            let mlocal = mlistener.local_addr()?;
            let reg = registry.clone();
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("phserve-metrics".into())
                    .spawn(move || {
                        for stream in mlistener.incoming() {
                            if sh.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            if let Ok(mut s) = stream {
                                serve_http_once(&mut s, &reg, &sh);
                            }
                        }
                    })
                    .expect("spawn metrics sidecar"),
            );
            Some(mlocal)
        }
        None => None,
    };

    let stop_shared = Arc::clone(&shared);
    let stop_fn = Box::new(move || {
        stop_shared.stop.store(true, Ordering::SeqCst);
        stop_shared.work.notify_all();
        stop_shared.space.notify_all();
        for s in stop_shared.conns.lock().unwrap().values() {
            let _ = s.shutdown(Shutdown::Both);
        }
        // Wake the (blocking) accept loops.
        let _ = TcpStream::connect(local);
        if let Some(m) = metrics_local {
            let _ = TcpStream::connect(m);
        }
    });

    Ok(ServerHandle {
        addr: local,
        metrics_addr: metrics_local,
        registry,
        stop_fn: Some(stop_fn),
        threads,
        conn_threads,
    })
}

/// Answers exactly one HTTP request on `s`. Routes:
///
/// * `GET /metrics` — Prometheus text exposition.
/// * `GET /healthz`, `GET /livez` — liveness: `ok` whenever the
///   process is up and the sidecar thread is serving (no dependency
///   on the backend — a wedged backend must not make the orchestrator
///   restart-loop the process).
/// * `GET /readyz` — readiness as JSON: backend kind/writability,
///   shard topology, rebalancer + in-flight migration state.
/// * `GET /debug/slow` — the slow-query log (JSON; `[]` untraced).
/// * `GET /debug/trace?n=N` — the N most recent flight-recorder
///   records (default 256).
/// * `GET /debug/dumps` — retained trigger-dump snapshots.
///
/// Anything else 404. Connection: close — scrapers reconnect per
/// scrape.
fn serve_http_once<B: Backend<K>, const K: usize>(
    s: &mut TcpStream,
    registry: &Registry,
    shared: &Shared<B, K>,
) {
    let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut filled = 0usize;
    while filled < buf.len() {
        match s.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    let path = head
        .lines()
        .next()
        .and_then(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("GET"), Some(p)) => Some(p.to_string()),
                _ => None,
            }
        })
        .unwrap_or_default();
    const TEXT: &str = "text/plain; version=0.0.4";
    const JSON: &str = "application/json";
    let (status, ctype, body) = match path.as_str() {
        "/metrics" => ("200 OK", TEXT, registry.render_prometheus()),
        "/healthz" | "/livez" => ("200 OK", TEXT, "ok\n".to_string()),
        "/readyz" => ("200 OK", JSON, shared.readiness_json(registry)),
        "/debug/slow" => ("200 OK", JSON, phtrace::slow_json()),
        "/debug/dumps" => ("200 OK", JSON, phtrace::dumps_json()),
        p if p.starts_with("/debug/trace") => {
            let n = p
                .split_once("?n=")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(256);
            ("200 OK", JSON, phtrace::trace_json(n))
        }
        _ => ("404 Not Found", TEXT, "not found\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = s.write_all(resp.as_bytes());
    let _ = s.flush();
}
