//! `phload` — scenario load generator for phserve.
//!
//! Two modes:
//!
//! * **Spawn mode** (default): starts in-process servers on ephemeral
//!   loopback ports, drives the six standard mixes (including both
//!   read-under-write mixes with a churning writer) against a
//!   default-tuned server, then the overload mix against a deliberately
//!   undersized one (tiny admission queue + artificial per-op delay),
//!   verifies every connection's acked-op model against the server,
//!   checks server `stats.entries` equals the sum of client models,
//!   finishes with a back-to-back traced/untraced `point_heavy` A/B
//!   (the `"trace"` key), and writes `results/phserve.json` stamped
//!   with `host_cores`.
//!
//!   ```text
//!   phload [--quick] [--durable] [--out results/phserve.json]
//!   ```
//!
//! * **External mode**: drives scenarios against an already-running
//!   server (CI's serve-smoke job).
//!
//!   ```text
//!   phload --addr HOST:PORT --scenario point_heavy [--quick]
//!   ```
//!
//! * **Prepare mode**: freezes the deterministic packed dataset into a
//!   checkpoint directory for `phserve --packed DIR`; the
//!   `packed_read` scenario (external mode) then verifies the running
//!   read-only server against the same seed-reproduced dataset.
//!
//!   ```text
//!   phload --prepare-packed DIR [--seed N]
//!   ```
//!
//! * **Trace mode**: A/B overhead measurement for the flight recorder
//!   (`point_heavy` untraced, then traced at 1-in-64 sampling) plus a
//!   slow-query round trip through `/debug/slow`; the overhead lands
//!   in the JSON report's `"trace"` key. Degrades gracefully in a
//!   binary built without `--features trace`.
//!
//!   ```text
//!   phload --trace [--quick] [--out results/phserve.json]
//!   ```
//!
//! Spawn mode also runs `packed_read` end to end by itself: it packs
//! the dataset, serves it read-only in process, checks a write answers
//! the typed read-only error, and verifies every stored key.
//!
//! Exit code is non-zero on any verification failure, unexpected error
//! reply, or (spawn mode) missing shed evidence in the overload run.

use phmetrics::Registry;
use phpack::CacheMode;
use phserve::backend::PackedBackend;
use phserve::load::{
    host_cores, inject_trace_json, prepare_packed, render_table, run_scenario, to_json, LoadConfig,
    Scenario, ScenarioReport, SERVE_DIMS,
};
use phserve::proto::{ErrorCode, Request, Response};
use phserve::server::{spawn, ServerConfig, ServerHandle};
use phserve::Client;
use phshard::{DurableSharded, PackedShards, RebalancePolicy, Rebalancer, ShardedTree};
use phstore::vfs::StdVfs;
use phstore::DurableConfig;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const K: usize = SERVE_DIMS;

fn usage() -> ! {
    eprintln!(
        "usage: phload [--quick] [--durable] [--out PATH]\n\
         \x20      phload --addr HOST:PORT --scenario NAME [--quick]\n\
         \x20      phload --prepare-packed DIR [--seed N]\n\
         \x20      phload --trace [--quick] [--out PATH]"
    );
    std::process::exit(2);
}

/// Plain-std HTTP GET against the metrics sidecar.
fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: phload\r\nConnection: close\r\n\r\n"
    )?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    match buf.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(buf),
    }
}

/// Extracts a metric's value from Prometheus text exposition.
fn metric_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

fn fail(msg: &str) -> ! {
    eprintln!("phload: FAIL: {msg}");
    std::process::exit(1);
}

/// Runs one scenario and enforces the invariants every scenario must
/// uphold: zero non-shed error replies and a model-exact verification.
fn run_checked(addr: SocketAddr, sc: Scenario, cfg: &LoadConfig) -> ScenarioReport {
    eprintln!(
        "phload: running {} ({} conns x {} ops)...",
        sc.name(),
        cfg.conns,
        cfg.ops_per_conn
    );
    let report =
        run_scenario(addr, sc, cfg).unwrap_or_else(|e| fail(&format!("{} failed: {e}", sc.name())));
    if report.errors > 0 {
        fail(&format!(
            "{}: {} unexpected error replies",
            report.scenario, report.errors
        ));
    }
    if report.verify_failures > 0 {
        fail(&format!(
            "{}: {} of {} verified keys disagree with the acked-op model",
            report.scenario, report.verify_failures, report.verified_keys
        ));
    }
    eprintln!(
        "phload: {}: {:.0} op/s, {} acked, {} shed, {} keys verified",
        report.scenario, report.throughput_ops_s, report.acked, report.shed, report.verified_keys
    );
    report
}

/// Spawns a server (+rebalancer) over a fresh backend; the returned
/// path, if any, is the durable store directory to clean up after.
fn launch(
    durable: bool,
    cfg: ServerConfig,
    tag: &str,
) -> (ServerHandle, Rebalancer, Option<PathBuf>) {
    let registry = Registry::new();
    if durable {
        let dir = std::env::temp_dir().join(format!("phload-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = Arc::new(
            DurableSharded::<u64, K>::open_observed(
                Arc::new(StdVfs),
                &dir,
                8,
                DurableConfig::default(),
                &registry,
            )
            .unwrap_or_else(|e| fail(&format!("open durable store: {e}"))),
        );
        let reb = Rebalancer::spawn(Arc::clone(&backend), RebalancePolicy::default());
        let handle = spawn(
            Arc::clone(&backend),
            "127.0.0.1:0",
            Some("127.0.0.1:0"),
            registry,
            cfg,
        )
        .unwrap_or_else(|e| fail(&format!("bind: {e}")));
        (handle, reb, Some(dir))
    } else {
        let backend = Arc::new(ShardedTree::<u64, K>::with_metrics(8, 2, &registry));
        let reb = Rebalancer::spawn(Arc::clone(&backend), RebalancePolicy::default());
        let handle = spawn(
            Arc::clone(&backend),
            "127.0.0.1:0",
            Some("127.0.0.1:0"),
            registry,
            cfg,
        )
        .unwrap_or_else(|e| fail(&format!("bind: {e}")));
        (handle, reb, None)
    }
}

fn spawn_mode(quick: bool, durable: bool, out: &str) {
    let cfg = if quick {
        LoadConfig::quick()
    } else {
        LoadConfig::default()
    };
    let mut reports: Vec<ScenarioReport> = Vec::new();

    // --- The standard mixes against a default-tuned server. ---
    let (handle, reb, cleanup) = launch(durable, ServerConfig::default(), "main");
    let addr = handle.addr();
    for sc in Scenario::standard() {
        reports.push(run_checked(addr, sc, &cfg));
    }

    // Cross-check: the server's entry count must equal the sum of the
    // per-connection models (namespaces are disjoint and the server
    // started empty) — acked writes all landed, shed writes none.
    let model_total: u64 = reports.iter().map(|r| r.model_entries).sum();
    let mut client: Client<K> = Client::connect(addr).unwrap_or_else(|e| fail(&e.to_string()));
    let stats = client.stats().unwrap_or_else(|e| fail(&e.to_string()));
    if stats.entries != model_total {
        fail(&format!(
            "server holds {} entries but client models ack {model_total}",
            stats.entries
        ));
    }
    eprintln!(
        "phload: consistency: server entries {} == sum of client models (epoch {}, skew {:.2})",
        stats.entries, stats.epoch, stats.skew
    );

    // The sidecar must expose live serving metrics.
    let maddr = handle.metrics_addr().expect("sidecar running");
    let text = scrape(maddr, "/metrics").unwrap_or_else(|e| fail(&format!("scrape: {e}")));
    for required in [
        "phserve_connections_total",
        "phserve_batches_total",
        "phserve_queue_depth_peak",
    ] {
        if metric_value(&text, required).is_none() {
            fail(&format!("/metrics is missing {required}"));
        }
    }
    drop(client);
    handle.stop();
    let splits = reb.stop();
    eprintln!(
        "phload: rebalancer performed {} split(s) under traffic",
        splits.len()
    );
    if let Some(dir) = cleanup {
        let _ = std::fs::remove_dir_all(dir);
    }

    // --- Overload against an undersized queue with a slow backend. ---
    let over_server = ServerConfig {
        queue_cap: 64,
        batch_max: 16,
        workers: 1,
        shed_wait: Duration::from_micros(500),
        op_delay: Some(Duration::from_micros(200)),
    };
    let over_cfg = LoadConfig {
        conns: 2,
        ops_per_conn: if quick { 1200 } else { 4000 },
        pipeline: 256,
        seed: cfg.seed,
    };
    let (handle, reb, cleanup) = launch(durable, over_server.clone(), "overload");
    let report = run_checked(handle.addr(), Scenario::Overload, &over_cfg);
    if report.shed == 0 {
        fail("overload scenario shed nothing — the queue never reached high water");
    }
    let maddr = handle.metrics_addr().expect("sidecar running");
    let text = scrape(maddr, "/metrics").unwrap_or_else(|e| fail(&format!("scrape: {e}")));
    let peak = metric_value(&text, "phserve_queue_depth_peak")
        .unwrap_or_else(|| fail("no queue depth peak exposed"));
    if peak > over_server.queue_cap as f64 {
        fail(&format!(
            "queue depth peaked at {peak}, above the {} bound",
            over_server.queue_cap
        ));
    }
    eprintln!(
        "phload: overload: queue depth peak {peak} stayed within the {} bound; {} of {} ops shed",
        over_server.queue_cap, report.shed, report.ops_total
    );
    reports.push(report);
    handle.stop();
    reb.stop();
    if let Some(dir) = cleanup {
        let _ = std::fs::remove_dir_all(dir);
    }

    // --- Packed read-only serving over a frozen checkpoint. ---
    let pdir = std::env::temp_dir().join(format!("phload-{}-packed", std::process::id()));
    let _ = std::fs::remove_dir_all(&pdir);
    let (pshards, pentries) =
        prepare_packed(&pdir, cfg.seed).unwrap_or_else(|e| fail(&format!("prepare packed: {e}")));
    eprintln!(
        "phload: packed checkpoint ready at {} ({pshards} shards, {pentries} entries)",
        pdir.display()
    );
    let registry = Registry::new();
    let packed = PackedShards::<u64, K>::open(&pdir, CacheMode::Resident)
        .unwrap_or_else(|e| fail(&format!("open packed checkpoint: {e}")));
    let backend = Arc::new(PackedBackend(Arc::new(packed)));
    let handle = spawn(
        backend,
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
        registry,
        ServerConfig::default(),
    )
    .unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let report = run_checked(handle.addr(), Scenario::PackedRead, &cfg);
    // A write against the packed server must answer the typed
    // read-only error — refused, not applied, not a connection kill.
    let mut client: Client<K> =
        Client::connect(handle.addr()).unwrap_or_else(|e| fail(&e.to_string()));
    match client.call(&Request::Insert {
        key: [1; K],
        value: 1,
    }) {
        Ok(Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }) => {}
        other => fail(&format!(
            "write against packed server answered {other:?}, want typed BadRequest"
        )),
    }
    if client
        .get([1; K])
        .unwrap_or_else(|e| fail(&e.to_string()))
        .is_some()
    {
        fail("refused write was applied to the packed server");
    }
    eprintln!("phload: packed_read: writes refused with typed error, reads verified");
    reports.push(report);
    drop(client);
    handle.stop();
    let _ = std::fs::remove_dir_all(&pdir);

    // --- Tracing overhead (in-memory runs): rerun point_heavy with
    // the flight recorder live at the production 1-in-64 sampling rate
    // and record the A/B against the untraced standard-pass run, so
    // the canonical results file carries the overhead number. In a
    // binary built without the `trace` feature the rerun measures
    // noise and the overhead is recorded as 0 with "enabled": false.
    let mut trace_ab: Option<(bool, f64, f64)> = None;
    if !durable {
        const SAMPLE_EVERY: u32 = 64;
        // Back-to-back A/B on an equally warm process — the standard
        // pass above ran on a cold one, which would bias the baseline.
        let (handle, reb, _) = launch(false, ServerConfig::default(), "trace-base");
        let base = run_checked(handle.addr(), Scenario::PointHeavy, &cfg);
        handle.stop();
        reb.stop();
        let base_ops = base.throughput_ops_s;
        let live = phserve::trace::init(phserve::trace::TraceConfig {
            sample_every: SAMPLE_EVERY,
            slow_threshold: phserve::trace::SlowThreshold::FixedNs(10_000_000),
            ..Default::default()
        });
        let (handle, reb, _) = launch(false, ServerConfig::default(), "trace-on");
        let mut traced = run_checked(handle.addr(), Scenario::PointHeavy, &cfg);
        traced.scenario = "point_heavy_traced".into();
        handle.stop();
        reb.stop();
        if live && phtrace::stats().sampled_requests == 0 {
            fail("tracing is live but no request was sampled");
        }
        let overhead_pct = if traced.throughput_ops_s > 0.0 {
            (base_ops / traced.throughput_ops_s - 1.0) * 100.0
        } else {
            0.0
        };
        eprintln!(
            "phload: trace overhead (1-in-{SAMPLE_EVERY}): {:.0} -> {:.0} op/s ({overhead_pct:+.2}%)",
            base_ops, traced.throughput_ops_s
        );
        trace_ab = Some((live, base_ops, traced.throughput_ops_s));
        reports.push(traced);
    }

    // --- Report. ---
    let backend_name = if durable { "durable" } else { "in-memory" };
    let mut json = to_json(&reports, backend_name, host_cores());
    if let Some((live, base_ops, traced_ops)) = trace_ab {
        json = inject_trace_json(&json, live, 64, base_ops, traced_ops);
    }
    if let Some(parent) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(out, &json).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!("{}", render_table(&reports));
    println!("phload: wrote {out} (host_cores={})", host_cores());
}

/// `phload --trace`: the flight recorder's A/B overhead measurement
/// plus a slow-query round trip. Runs `point_heavy` against an
/// untraced server, installs the recorder at the production 1-in-64
/// sampling rate, reruns the same scenario traced, then drops the slow
/// threshold to the floor and verifies a deliberately slow query shows
/// up in `/debug/slow` with a per-phase breakdown that covers its wall
/// time. The overhead record lands in the JSON report's `"trace"` key.
///
/// In a binary built without the `trace` feature every probe is a ZST
/// no-op: the A/B still runs (it then measures noise) and the overhead
/// is recorded as 0 with `"enabled": false` — the mode degrades to a
/// plain double run instead of failing, so one CI recipe works on both
/// builds.
fn trace_mode(quick: bool, out: &str) {
    const SAMPLE_EVERY: u32 = 64;
    let cfg = if quick {
        LoadConfig::quick()
    } else {
        LoadConfig::default()
    };

    // A: untraced baseline (the recorder is not installed yet, so even
    // a trace-built binary runs every probe against a dead recorder).
    let (handle, reb, _) = launch(false, ServerConfig::default(), "trace-base");
    let base = run_checked(handle.addr(), Scenario::PointHeavy, &cfg);
    handle.stop();
    reb.stop();

    // B: same scenario with the recorder live at the production rate.
    // The threshold is *pinned* (not Auto): the server autotunes an
    // Auto threshold from its own trailing p99 every 64 batches, which
    // would override the floor-threshold trick the slow-query check
    // below relies on. 10ms keeps the A/B run itself slow-free.
    let live = phserve::trace::init(phserve::trace::TraceConfig {
        sample_every: SAMPLE_EVERY,
        slow_threshold: phserve::trace::SlowThreshold::FixedNs(10_000_000),
        ..Default::default()
    });
    if !live {
        eprintln!(
            "phload: built without the `trace` feature; overhead recorded as 0 \
             (rebuild with --features trace for a live measurement)"
        );
    }
    let (handle, reb, _) = launch(false, ServerConfig::default(), "trace-on");
    let mut traced = run_checked(handle.addr(), Scenario::PointHeavy, &cfg);
    traced.scenario = "point_heavy_traced".into();
    let overhead_pct = if traced.throughput_ops_s > 0.0 {
        (base.throughput_ops_s / traced.throughput_ops_s - 1.0) * 100.0
    } else {
        0.0
    };
    eprintln!(
        "phload: trace overhead (1-in-{SAMPLE_EVERY}): {:.0} -> {:.0} op/s ({overhead_pct:+.2}%)",
        base.throughput_ops_s, traced.throughput_ops_s
    );

    if live {
        let st = phtrace::stats();
        if st.sampled_requests == 0 {
            fail("tracing is live but no request was sampled");
        }
        eprintln!(
            "phload: recorder sampled {} requests into {} ring(s) ({} records)",
            st.sampled_requests, st.rings, st.records
        );

        // Deliberately slow query: with the threshold at the floor
        // every sampled query is "slow"; 2×SAMPLE_EVERY attempts
        // guarantee at least one sampled one.
        phtrace::set_slow_threshold_ns(1_000);
        let mut client: Client<K> =
            Client::connect(handle.addr()).unwrap_or_else(|e| fail(&e.to_string()));
        for i in 0..512u64 {
            let key = [i.wrapping_mul(0x9e37_79b9); K];
            match client.call(&Request::Insert { key, value: i }) {
                Ok(Response::Ack) => {}
                other => fail(&format!("seed insert answered {other:?}")),
            }
        }
        for _ in 0..(2 * SAMPLE_EVERY) {
            match client.call(&Request::Query {
                min: [0; K],
                max: [u64::MAX; K],
            }) {
                Ok(Response::Entries(_)) => {}
                other => fail(&format!("slow query answered {other:?}")),
            }
        }
        let slow = phtrace::recent_slow();
        let q = slow
            .iter()
            .rev()
            .find(|s| matches!(s.op, phtrace::TraceOp::Query))
            .unwrap_or_else(|| fail("no sampled query reached the slow log"));
        if q.spans < 3 || q.covered_ns == 0 {
            fail(&format!(
                "slow query breakdown too thin: {} spans, covered {}ns",
                q.spans, q.covered_ns
            ));
        }
        let wall = q.wall_ns as f64;
        let covered = q.covered_ns as f64;
        if covered < wall * 0.9 || covered > wall * 1.1 {
            fail(&format!(
                "slow query phases cover {covered:.0}ns of {wall:.0}ns wall (want within 10%)"
            ));
        }
        eprintln!(
            "phload: slow query req {} — wall {}us, queue {}us fanout {}us descent {}us \
             reply {}us ({} spans, fanout {})",
            q.req_id,
            q.wall_ns / 1_000,
            q.phase_ns[phtrace::Phase::Queue as usize] / 1_000,
            q.phase_ns[phtrace::Phase::FanOut as usize] / 1_000,
            q.phase_ns[phtrace::Phase::Descent as usize] / 1_000,
            q.phase_ns[phtrace::Phase::Reply as usize] / 1_000,
            q.spans,
            q.counters.fanout,
        );

        // The same entry must come back over the sidecar.
        let maddr = handle.metrics_addr().expect("sidecar running");
        let body = scrape(maddr, "/debug/slow").unwrap_or_else(|e| fail(&format!("scrape: {e}")));
        if !body.contains("\"req_id\"") || !body.contains("\"phases\"") {
            fail(&format!("/debug/slow returned no slow queries: {body}"));
        }
        let mtext = scrape(maddr, "/metrics").unwrap_or_else(|e| fail(&format!("scrape: {e}")));
        if metric_value(&mtext, "phserve_protocol_errors_total").unwrap_or(0.0) != 0.0 {
            fail("protocol errors during the traced run");
        }
        eprintln!("phload: /debug/slow serves the breakdown; zero protocol errors");
    }
    handle.stop();
    reb.stop();

    let reports = [base, traced];
    let json = to_json(&reports, "in-memory", host_cores());
    let json = inject_trace_json(
        &json,
        live,
        SAMPLE_EVERY,
        reports[0].throughput_ops_s,
        reports[1].throughput_ops_s,
    );
    if let Some(parent) = std::path::Path::new(out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(out, &json).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    println!("{}", render_table(&reports));
    println!("phload: wrote {out} (trace overhead {overhead_pct:+.2}%)");
}

fn external_mode(addr: &str, scenario: &str, quick: bool, out: Option<&str>, seed: u64) {
    let addr: SocketAddr = addr
        .parse()
        .unwrap_or_else(|_| fail(&format!("bad --addr {addr}")));
    let sc =
        Scenario::parse(scenario).unwrap_or_else(|| fail(&format!("unknown scenario {scenario}")));
    let mut cfg = if quick {
        LoadConfig::quick()
    } else {
        LoadConfig::default()
    };
    cfg.seed = seed;
    if sc == Scenario::Overload {
        cfg.pipeline = 256;
    }
    let report = run_checked(addr, sc, &cfg);
    let reports = [report];
    if let Some(out) = out {
        let json = to_json(&reports, "external", host_cores());
        if let Some(parent) = std::path::Path::new(out).parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(out, &json).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    }
    println!("{}", render_table(&reports));
}

fn main() {
    let mut quick = false;
    let mut durable = false;
    let mut trace = false;
    let mut out: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut scenario: Option<String> = None;
    let mut prepare: Option<PathBuf> = None;
    let mut seed = LoadConfig::default().seed;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => quick = true,
            "--durable" => durable = true,
            "--trace" => trace = true,
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--addr" => addr = Some(it.next().unwrap_or_else(|| usage())),
            "--scenario" => scenario = Some(it.next().unwrap_or_else(|| usage())),
            "--prepare-packed" => {
                prepare = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if let Some(dir) = prepare {
        let (shards, entries) =
            prepare_packed(&dir, seed).unwrap_or_else(|e| fail(&format!("prepare packed: {e}")));
        println!(
            "phload: packed checkpoint written to {} ({shards} shards, {entries} entries, seed {seed})",
            dir.display()
        );
        return;
    }
    if trace {
        if addr.is_some() || scenario.is_some() {
            usage();
        }
        trace_mode(quick, out.as_deref().unwrap_or("results/phserve.json"));
        return;
    }
    match (addr, scenario) {
        (Some(a), Some(s)) => external_mode(&a, &s, quick, out.as_deref(), seed),
        (None, None) => spawn_mode(
            quick,
            durable,
            out.as_deref().unwrap_or("results/phserve.json"),
        ),
        _ => usage(),
    }
}
