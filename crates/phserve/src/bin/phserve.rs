//! `phserve` — the PH-tree TCP server.
//!
//! ```text
//! phserve [--addr 127.0.0.1:7070] [--metrics-addr 127.0.0.1:7071]
//!         [--durable DIR | --packed DIR] [--shards 8] [--threads N]
//!         [--queue-cap 1024] [--batch-max 64] [--workers 1]
//!         [--shed-wait-us 2000] [--op-delay-us 0] [--no-rebalance]
//!         [--lru-pages N] [--trace] [--trace-sample 64] [--slow-us N]
//! ```
//!
//! Serves the in-memory `ShardedTree` by default; `--durable DIR`
//! swaps in the WAL-backed `DurableSharded` (crash-recovering from
//! `DIR` on start); `--packed DIR` serves a packed checkpoint
//! (written by `phload --prepare-packed` or
//! `DurableSharded::checkpoint_packed`) **read-only** — writes answer
//! a typed error, opens take milliseconds, and `--lru-pages N` caps
//! the page cache instead of mapping everything resident. The PR 6
//! rebalancer runs in the background unless `--no-rebalance`. Bind
//! port 0 for an ephemeral port — the actual addresses are printed as
//! `phserve listening on ...` / `phserve metrics on ...` lines for
//! scripts to parse.
//!
//! `--trace` turns the flight recorder on (requires building with
//! `--features trace`; warns and serves untraced otherwise):
//! `--trace-sample N` records one request in N (default 64), and
//! `--slow-us N` pins the slow-query threshold instead of the default
//! auto policy (trailing p99 × 4). Read results back from the metrics
//! sidecar at `/debug/slow`, `/debug/trace?n=`, `/debug/dumps`.

use phmetrics::Registry;
use phpack::CacheMode;
use phserve::backend::PackedBackend;
use phserve::load::SERVE_DIMS;
use phserve::server::{spawn, ServerConfig};
use phshard::{DurableSharded, PackedShards, RebalancePolicy, Rebalancer, ShardedTree};
use phstore::vfs::StdVfs;
use phstore::DurableConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const K: usize = SERVE_DIMS;

struct Args {
    addr: String,
    metrics_addr: String,
    durable: Option<PathBuf>,
    packed: Option<PathBuf>,
    lru_pages: Option<usize>,
    shards: usize,
    threads: usize,
    cfg: ServerConfig,
    rebalance: bool,
    trace: bool,
    trace_sample: u32,
    slow_us: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: phserve [--addr A] [--metrics-addr A] [--durable DIR | --packed DIR] \
         [--lru-pages N] [--shards N] [--threads N] [--queue-cap N] [--batch-max N] \
         [--workers N] [--shed-wait-us N] [--op-delay-us N] [--no-rebalance] \
         [--trace] [--trace-sample N] [--slow-us N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7070".into(),
        metrics_addr: "127.0.0.1:7071".into(),
        durable: None,
        packed: None,
        lru_pages: None,
        shards: 8,
        threads: 0,
        cfg: ServerConfig::default(),
        rebalance: true,
        trace: false,
        trace_sample: 64,
        slow_us: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr"),
            "--metrics-addr" => args.metrics_addr = val("--metrics-addr"),
            "--durable" => args.durable = Some(PathBuf::from(val("--durable"))),
            "--packed" => args.packed = Some(PathBuf::from(val("--packed"))),
            "--lru-pages" => {
                args.lru_pages = Some(val("--lru-pages").parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => args.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => {
                args.cfg.queue_cap = val("--queue-cap").parse().unwrap_or_else(|_| usage())
            }
            "--batch-max" => {
                args.cfg.batch_max = val("--batch-max").parse().unwrap_or_else(|_| usage())
            }
            "--workers" => args.cfg.workers = val("--workers").parse().unwrap_or_else(|_| usage()),
            "--shed-wait-us" => {
                let us: u64 = val("--shed-wait-us").parse().unwrap_or_else(|_| usage());
                args.cfg.shed_wait = Duration::from_micros(us);
            }
            "--op-delay-us" => {
                let us: u64 = val("--op-delay-us").parse().unwrap_or_else(|_| usage());
                args.cfg.op_delay = (us > 0).then(|| Duration::from_micros(us));
            }
            "--no-rebalance" => args.rebalance = false,
            "--trace" => args.trace = true,
            "--trace-sample" => {
                args.trace_sample = val("--trace-sample").parse().unwrap_or_else(|_| usage())
            }
            "--slow-us" => {
                args.slow_us = Some(val("--slow-us").parse().unwrap_or_else(|_| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    if args.trace {
        let cfg = phserve::trace::TraceConfig {
            sample_every: args.trace_sample,
            slow_threshold: match args.slow_us {
                Some(us) => phserve::trace::SlowThreshold::FixedNs(us.saturating_mul(1000)),
                None => phserve::trace::SlowThreshold::Auto,
            },
            ..phserve::trace::TraceConfig::default()
        };
        if phserve::trace::init(cfg) {
            println!(
                "phserve tracing on (sample 1-in-{}, slow threshold {})",
                args.trace_sample.max(1),
                match args.slow_us {
                    Some(us) => format!("{us}us"),
                    None => "auto (trailing p99 x 4)".into(),
                },
            );
        } else {
            eprintln!(
                "phserve: --trace requested but this binary was built without the \
                 `trace` feature; serving untraced (rebuild with --features trace)"
            );
        }
    }

    let registry = Registry::new();
    let threads = if args.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        args.threads
    };

    if args.packed.is_some() && args.durable.is_some() {
        eprintln!("phserve: --packed and --durable are mutually exclusive");
        usage();
    }

    // The backend is generic but the binary must pick one concrete
    // type per branch; each branch owns its server + rebalancer pair.
    let mut serving_shards = args.shards;
    let (_handle, _rebalancer) = if let Some(dir) = &args.packed {
        let mode = match args.lru_pages {
            Some(pages) => CacheMode::Lru { pages },
            None => CacheMode::Resident,
        };
        let shards = PackedShards::<u64, K>::open(dir, mode).unwrap_or_else(|e| {
            eprintln!(
                "phserve: cannot open packed checkpoint at {}: {e}",
                dir.display()
            );
            std::process::exit(1);
        });
        serving_shards = shards.stats().shards;
        let backend = Arc::new(PackedBackend(Arc::new(shards)));
        let handle = spawn(
            backend,
            &args.addr,
            Some(&args.metrics_addr),
            registry,
            args.cfg.clone(),
        )
        .unwrap_or_else(|e| {
            eprintln!("phserve: bind failed: {e}");
            std::process::exit(1);
        });
        // A packed checkpoint never splits: no rebalancer.
        (handle, None)
    } else {
        match &args.durable {
            Some(dir) => {
                let backend = Arc::new(
                    DurableSharded::<u64, K>::open_observed(
                        Arc::new(StdVfs),
                        dir,
                        args.shards,
                        DurableConfig::default(),
                        &registry,
                    )
                    .unwrap_or_else(|e| {
                        eprintln!(
                            "phserve: cannot open durable store at {}: {e}",
                            dir.display()
                        );
                        std::process::exit(1);
                    }),
                );
                let reb = args
                    .rebalance
                    .then(|| Rebalancer::spawn(Arc::clone(&backend), RebalancePolicy::default()));
                let handle = spawn(
                    backend,
                    &args.addr,
                    Some(&args.metrics_addr),
                    registry,
                    args.cfg.clone(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("phserve: bind failed: {e}");
                    std::process::exit(1);
                });
                (handle, reb)
            }
            None => {
                let backend = Arc::new(ShardedTree::<u64, K>::with_metrics(
                    args.shards,
                    threads,
                    &registry,
                ));
                let reb = args
                    .rebalance
                    .then(|| Rebalancer::spawn(Arc::clone(&backend), RebalancePolicy::default()));
                let handle = spawn(
                    backend,
                    &args.addr,
                    Some(&args.metrics_addr),
                    registry,
                    args.cfg.clone(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("phserve: bind failed: {e}");
                    std::process::exit(1);
                });
                (handle, reb)
            }
        }
    };

    println!("phserve listening on {}", _handle.addr());
    if let Some(m) = _handle.metrics_addr() {
        println!("phserve metrics on {m}");
    }
    println!(
        "phserve serving {} dims={K} shards={} workers={} queue_cap={}",
        if args.packed.is_some() {
            "packed-readonly"
        } else if args.durable.is_some() {
            "durable"
        } else {
            "in-memory"
        },
        serving_shards,
        args.cfg.workers,
        args.cfg.queue_cap,
    );

    // Serve until killed (CI tears the process down with SIGTERM).
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
