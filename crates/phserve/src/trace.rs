//! Server-side tracing bootstrap: installs the `phtrace` recorder and
//! (with the `trace` cargo feature) bridges `phtree`'s `TreeSink`
//! probe seam into the active span, so descent spans carry
//! `nodes_visited` without touching the tree's hot paths.
//!
//! The recorder is process-global (`phserve --trace` and the `phload
//! --trace` harness both go through here); [`init`] is idempotent —
//! the first configuration wins, matching `phtrace::install` and
//! `phtree::telemetry::set_sink`.

pub use phtrace::{SlowThreshold, TraceConfig};

/// Installs the flight recorder (first call wins) and, when compiled
/// with the `trace` feature, the `TreeSink` forwarding probe. Returns
/// whether tracing is actually live: `false` means the binary was
/// built without the `trace` feature (all probes are ZST no-ops) or a
/// recorder was already installed.
pub fn init(cfg: TraceConfig) -> bool {
    let installed = phtrace::install(cfg);
    #[cfg(feature = "trace")]
    if installed {
        // First-wins, like the recorder: a test or embedding app may
        // already have claimed the sink — counts then flow there
        // instead, which is fine (the seam is process-global by
        // design, see phtree::telemetry).
        let _ = phtree::telemetry::set_sink(&SpanSink);
    }
    installed && cfg!(feature = "trace")
}

/// Forwards per-op probe reports into the innermost open span of the
/// reporting thread. An unsampled request has no open span, so the
/// report is dropped at the cost of one thread-local branch.
#[cfg(feature = "trace")]
struct SpanSink;

#[cfg(feature = "trace")]
impl phtree::telemetry::TreeSink for SpanSink {
    fn op(&self, _op: phtree::telemetry::TreeOp, nodes_visited: u32) {
        phtrace::add_nodes(nodes_visited as u64);
    }
}
