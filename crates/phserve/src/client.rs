//! A blocking, pipelining client for the phserve wire protocol.
//!
//! [`Client::send`] queues a framed request and returns its id without
//! waiting; [`Client::recv`] reads frames until the wanted id arrives,
//! stashing any other replies for later `recv` calls — so a caller may
//! keep dozens of requests in flight on one connection and the server
//! batches them on the admission queue. [`Client::call`] is the
//! one-shot send + flush + receive convenience.

use crate::proto::{self, ProtoError, Request, Response, StatsReply};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One protocol connection. Not thread-safe — use one client per
/// thread (the server copes with any number of connections).
pub struct Client<const K: usize> {
    r: BufReader<TcpStream>,
    w: BufWriter<TcpStream>,
    next_id: u64,
    /// Replies that arrived while waiting for a different id.
    stash: HashMap<u64, Response<K>>,
}

impl<const K: usize> Client<K> {
    /// Connects to a phserve endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            r: BufReader::new(stream),
            w: BufWriter::new(write_half),
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Sets a read timeout for replies (None = block forever).
    pub fn set_timeout(&mut self, d: Option<Duration>) -> io::Result<()> {
        self.r.get_ref().set_read_timeout(d)
    }

    /// Queues `req` (buffered, not flushed) and returns its request id.
    pub fn send(&mut self, req: &Request<K>) -> Result<u64, ProtoError> {
        let id = self.next_id;
        self.next_id += 1;
        proto::write_frame(&mut self.w, &proto::encode_request(id, req))?;
        Ok(id)
    }

    /// Flushes every queued request to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Waits for the reply to request `id`, stashing out-of-order
    /// replies. Flushes first so a bare `send`+`recv` cannot deadlock.
    pub fn recv(&mut self, id: u64) -> Result<Response<K>, ProtoError> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        self.w.flush()?;
        loop {
            let body = proto::read_frame(&mut self.r)?.ok_or_else(|| {
                ProtoError::Io(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "server closed the connection while replies were pending",
                ))
            })?;
            let (rid, resp) = proto::decode_response::<K>(&body)?;
            if rid == id {
                return Ok(resp);
            }
            self.stash.insert(rid, resp);
        }
    }

    /// Sends `req`, flushes, and waits for its reply.
    pub fn call(&mut self, req: &Request<K>) -> Result<Response<K>, ProtoError> {
        let id = self.send(req)?;
        self.recv(id)
    }

    // Typed conveniences for the common ops. Each maps an unexpected
    // reply shape to `ProtoError::Malformed` and a typed server error
    // to `Err` via `expect`-style matching in the caller if needed.

    /// Upserts `key` → `value`. `Ok(())` on ack, the error reply
    /// otherwise.
    pub fn insert(&mut self, key: [u64; K], value: u64) -> Result<Response<K>, ProtoError> {
        self.call(&Request::Insert { key, value })
    }

    /// Point lookup.
    pub fn get(&mut self, key: [u64; K]) -> Result<Option<u64>, ProtoError> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(v),
            _ => Err(ProtoError::Malformed("unexpected reply to get")),
        }
    }

    /// Removes `key`, returning the removed value.
    pub fn remove(&mut self, key: [u64; K]) -> Result<Response<K>, ProtoError> {
        self.call(&Request::Remove { key })
    }

    /// Window query over `[min, max]`.
    pub fn query(
        &mut self,
        min: [u64; K],
        max: [u64; K],
    ) -> Result<Vec<([u64; K], u64)>, ProtoError> {
        match self.call(&Request::Query { min, max })? {
            Response::Entries(e) => Ok(e),
            _ => Err(ProtoError::Malformed("unexpected reply to query")),
        }
    }

    /// `n` nearest neighbours of `center`, nearest first.
    pub fn knn(
        &mut self,
        center: [u64; K],
        n: u32,
    ) -> Result<Vec<([u64; K], u64, f64)>, ProtoError> {
        match self.call(&Request::Knn { center, n })? {
            Response::Neighbors(h) => Ok(h),
            _ => Err(ProtoError::Malformed("unexpected reply to knn")),
        }
    }

    /// Batch upsert through the server's bulk-admission path.
    pub fn bulk_load(&mut self, items: Vec<([u64; K], u64)>) -> Result<Response<K>, ProtoError> {
        self.call(&Request::BulkLoad { items })
    }

    /// Server statistics snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ProtoError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ProtoError::Malformed("unexpected reply to stats")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ProtoError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ProtoError::Malformed("unexpected reply to ping")),
        }
    }
}
