//! Property tests: both kD-tree variants against a BTreeMap model.

use kdtree::{KdTree1, KdTree2};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Key = [f64; 2];

fn key_strategy() -> impl Strategy<Value = Key> {
    // Small grid so collisions, duplicate axis coordinates and deletions
    // of internal nodes all happen.
    [0u32..12, 0u32..12].prop_map(|k| k.map(|v| v as f64 / 3.0))
}

#[derive(Clone, Debug)]
enum Op {
    Insert(Key, u32),
    Remove(Key),
    Window(Key, Key),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Window(a, b)),
    ]
}

fn bits(k: &Key) -> [u64; 2] {
    k.map(f64::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn kd1_and_kd2_match_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut t1: KdTree1<u32, 2> = KdTree1::new();
        let mut t2: KdTree2<u32, 2> = KdTree2::new();
        let mut model: BTreeMap<[u64; 2], u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let want = model.insert(bits(&k), v);
                    prop_assert_eq!(t1.insert(k, v), want);
                    prop_assert_eq!(t2.insert(k, v), want);
                }
                Op::Remove(k) => {
                    let want = model.remove(&bits(&k));
                    prop_assert_eq!(t1.remove(&k), want);
                    prop_assert_eq!(t2.remove(&k), want);
                }
                Op::Window(a, b) => {
                    let min = [a[0].min(b[0]), a[1].min(b[1])];
                    let max = [a[0].max(b[0]), a[1].max(b[1])];
                    let mut got1 = Vec::new();
                    t1.window(&min, &max, &mut |p, _| got1.push(bits(&p)));
                    let mut got2 = Vec::new();
                    t2.window(&min, &max, &mut |p, _| got2.push(bits(&p)));
                    got1.sort();
                    got2.sort();
                    let want: Vec<[u64; 2]> = model
                        .keys()
                        .copied()
                        .filter(|kb| {
                            let p = kb.map(f64::from_bits);
                            (0..2).all(|d| min[d] <= p[d] && p[d] <= max[d])
                        })
                        .collect();
                    prop_assert_eq!(&got1, &want);
                    prop_assert_eq!(&got2, &want);
                }
            }
            prop_assert_eq!(t1.len(), model.len());
            prop_assert_eq!(t2.len(), model.len());
        }
        // Final point-query sweep.
        for kb in model.keys() {
            let k = kb.map(f64::from_bits);
            prop_assert_eq!(t1.get(&k), model.get(kb));
            prop_assert_eq!(t2.get(&k), model.get(kb));
        }
    }

    #[test]
    fn knn_consistent_between_variants(
        pts in proptest::collection::vec(key_strategy(), 1..60),
        center in key_strategy(),
        n in 1usize..8,
    ) {
        let mut t1: KdTree1<usize, 2> = KdTree1::new();
        let mut t2: KdTree2<usize, 2> = KdTree2::new();
        for (i, p) in pts.iter().enumerate() {
            t1.insert(*p, i);
            t2.insert(*p, i);
        }
        let a = t1.knn(&center, n);
        let b = t2.knn(&center, n);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.2 - y.2).abs() < 1e-9);
        }
    }
}
