//! kD-tree baselines for the PH-tree evaluation.
//!
//! The paper compares the PH-tree against two freely available kD-tree
//! implementations ("KD1" and "KD2") that show "very similar behaviour,
//! each has its own strengths and neither was consistently better than
//! the other" (Sect. 4.1). This crate provides two independent
//! implementations in the same spirit:
//!
//! * [`KdTree1`] — a classic Bentley kD-tree with pointer-linked nodes,
//!   insertion-order-dependent structure and eager deletion via
//!   minimum-extraction (the textbook algorithm).
//! * [`KdTree2`] — an arena-allocated kD-tree with tombstone deletion
//!   and automatic rebuild into a median-balanced tree once half the
//!   nodes are tombstones. Better locality and balance, but rebuild
//!   spikes and tombstone memory.
//!
//! Both store `K`-dimensional `f64` points with attached values and
//! support insert, point query, remove, window queries and
//! nearest-neighbour search, plus exact structural memory accounting
//! ([`KdTree1::memory_bytes`], [`KdTree2::memory_bytes`]).
//!
//! The [`naive`] module provides the two non-index storage yardsticks of
//! Sect. 4.3.5 (`double[]` and `object[]`).

#![warn(missing_docs)]

pub mod kd1;
pub mod kd2;
pub mod naive;

pub use kd1::KdTree1;
pub use kd2::KdTree2;

/// Assumed allocator overhead per heap allocation, in bytes (kept equal
/// to `phtree`'s `ALLOC_OVERHEAD` so space comparisons are fair).
pub const ALLOC_OVERHEAD: usize = 16;
