//! KD1: a classic pointer-linked kD-tree (Bentley 1975).
//!
//! Inner nodes carry points; the split axis cycles round-robin with the
//! depth. The structure depends on insertion order and is not
//! rebalanced; deletion uses the textbook minimum-extraction algorithm.

use crate::ALLOC_OVERHEAD;

struct Node<V, const K: usize> {
    point: [f64; K],
    value: V,
    left: Option<Box<Node<V, K>>>,
    right: Option<Box<Node<V, K>>>,
}

/// A classic kD-tree over `K`-dimensional `f64` points.
///
/// Duplicate points are not stored; inserting an existing point replaces
/// its value (matching the PH-tree's map semantics so
/// benchmark workloads are identical).
///
/// # Example
///
/// ```
/// use kdtree::KdTree1;
///
/// let mut t: KdTree1<u32, 2> = KdTree1::new();
/// t.insert([1.0, 2.0], 1);
/// t.insert([3.0, 1.0], 2);
/// assert_eq!(t.get(&[3.0, 1.0]), Some(&2));
/// let mut hits = Vec::new();
/// t.window(&[0.0, 0.0], &[2.0, 3.0], &mut |p, _| hits.push(p));
/// assert_eq!(hits, vec![[1.0, 2.0]]);
/// ```
pub struct KdTree1<V, const K: usize> {
    root: Option<Box<Node<V, K>>>,
    len: usize,
}

impl<V, const K: usize> Default for KdTree1<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> KdTree1<V, K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        assert!(K >= 1);
        KdTree1 { root: None, len: 0 }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `point → value`, returning the previous value if the
    /// point was already present.
    pub fn insert(&mut self, point: [f64; K], value: V) -> Option<V> {
        let mut link = &mut self.root;
        let mut depth = 0usize;
        loop {
            match link {
                None => {
                    *link = Some(Box::new(Node {
                        point,
                        value,
                        left: None,
                        right: None,
                    }));
                    self.len += 1;
                    return None;
                }
                Some(n) => {
                    if n.point == point {
                        return Some(std::mem::replace(&mut n.value, value));
                    }
                    let axis = depth % K;
                    link = if point[axis] < n.point[axis] {
                        &mut n.left
                    } else {
                        &mut n.right
                    };
                    depth += 1;
                }
            }
        }
    }

    /// Point query.
    pub fn get(&self, point: &[f64; K]) -> Option<&V> {
        let mut node = self.root.as_deref();
        let mut depth = 0usize;
        while let Some(n) = node {
            if n.point == *point {
                return Some(&n.value);
            }
            let axis = depth % K;
            node = if point[axis] < n.point[axis] {
                n.left.as_deref()
            } else {
                n.right.as_deref()
            };
            depth += 1;
        }
        None
    }

    /// Whether `point` is stored.
    pub fn contains(&self, point: &[f64; K]) -> bool {
        self.get(point).is_some()
    }

    /// Removes `point`, returning its value if present.
    pub fn remove(&mut self, point: &[f64; K]) -> Option<V> {
        let v = Self::remove_rec(&mut self.root, point, 0);
        if v.is_some() {
            self.len -= 1;
        }
        v
    }

    fn remove_rec(link: &mut Option<Box<Node<V, K>>>, point: &[f64; K], depth: usize) -> Option<V> {
        let n = link.as_deref_mut()?;
        let axis = depth % K;
        if n.point != *point {
            let child = if point[axis] < n.point[axis] {
                &mut n.left
            } else {
                &mut n.right
            };
            return Self::remove_rec(child, point, depth + 1);
        }
        // Found. Replace with the axis-minimum of the right subtree; if
        // there is no right subtree, move the left subtree to the right
        // and do the same (the classic trick keeps the invariant
        // "right >= split" intact because the extracted minimum becomes
        // the new split value).
        if n.right.is_none() {
            n.right = n.left.take();
        }
        if n.right.is_some() {
            let (min_pt, min_val) = {
                let min_pt = Self::find_min(n.right.as_deref().unwrap(), axis, depth + 1);
                let v =
                    Self::remove_rec(&mut n.right, &min_pt, depth + 1).expect("minimum must exist");
                (min_pt, v)
            };
            let old_val = std::mem::replace(&mut n.value, min_val);
            n.point = min_pt;
            Some(old_val)
        } else {
            // Leaf.
            let boxed = link.take().unwrap();
            Some(boxed.value)
        }
    }

    /// Smallest point along `axis` in the subtree.
    fn find_min(n: &Node<V, K>, axis: usize, depth: usize) -> [f64; K] {
        let cur_axis = depth % K;
        let mut best = n.point;
        if cur_axis == axis {
            // Minimum can only be here or in the left subtree.
            if let Some(l) = n.left.as_deref() {
                let cand = Self::find_min(l, axis, depth + 1);
                if cand[axis] < best[axis] {
                    best = cand;
                }
            }
        } else {
            for child in [n.left.as_deref(), n.right.as_deref()]
                .into_iter()
                .flatten()
            {
                let cand = Self::find_min(child, axis, depth + 1);
                if cand[axis] < best[axis] {
                    best = cand;
                }
            }
        }
        best
    }

    /// Window query: calls `visit(point, value)` for every stored point
    /// with `min[d] <= p[d] <= max[d]` in all dimensions.
    pub fn window(&self, min: &[f64; K], max: &[f64; K], visit: &mut dyn FnMut([f64; K], &V)) {
        Self::window_rec(self.root.as_deref(), min, max, 0, visit);
    }

    fn window_rec(
        node: Option<&Node<V, K>>,
        min: &[f64; K],
        max: &[f64; K],
        depth: usize,
        visit: &mut dyn FnMut([f64; K], &V),
    ) {
        let Some(n) = node else { return };
        if (0..K).all(|d| min[d] <= n.point[d] && n.point[d] <= max[d]) {
            visit(n.point, &n.value);
        }
        let axis = depth % K;
        if min[axis] < n.point[axis] {
            Self::window_rec(n.left.as_deref(), min, max, depth + 1, visit);
        }
        if max[axis] >= n.point[axis] {
            Self::window_rec(n.right.as_deref(), min, max, depth + 1, visit);
        }
    }

    /// Returns the `n` points nearest to `center` (Euclidean), nearest
    /// first, as `(point, value, distance)`.
    pub fn knn(&self, center: &[f64; K], n: usize) -> Vec<([f64; K], &V, f64)> {
        // Max-heap of current best candidates by distance.
        let mut best: Vec<([f64; K], &V, f64)> = Vec::with_capacity(n + 1);
        if n > 0 {
            Self::knn_rec(self.root.as_deref(), center, n, 0, &mut best);
        }
        best.sort_by(|a, b| a.2.total_cmp(&b.2));
        best
    }

    fn knn_rec<'t>(
        node: Option<&'t Node<V, K>>,
        center: &[f64; K],
        n: usize,
        depth: usize,
        best: &mut Vec<([f64; K], &'t V, f64)>,
    ) {
        let Some(nd) = node else { return };
        let d2: f64 = (0..K).map(|d| (nd.point[d] - center[d]).powi(2)).sum();
        let dist = d2.sqrt();
        if best.len() < n {
            best.push((nd.point, &nd.value, dist));
            best.sort_by(|a, b| a.2.total_cmp(&b.2));
        } else if dist < best[n - 1].2 {
            best[n - 1] = (nd.point, &nd.value, dist);
            best.sort_by(|a, b| a.2.total_cmp(&b.2));
        }
        let axis = depth % K;
        let delta = center[axis] - nd.point[axis];
        let (near, far) = if delta < 0.0 {
            (nd.left.as_deref(), nd.right.as_deref())
        } else {
            (nd.right.as_deref(), nd.left.as_deref())
        };
        Self::knn_rec(near, center, n, depth + 1, best);
        if best.len() < n || delta.abs() <= best[best.len() - 1].2 {
            Self::knn_rec(far, center, n, depth + 1, best);
        }
    }

    /// Total heap bytes owned by the tree: one boxed node per point plus
    /// allocator overhead.
    pub fn memory_bytes(&self) -> usize {
        self.len * (std::mem::size_of::<Node<V, K>>() + ALLOC_OVERHEAD)
    }

    /// Maximum depth (root = 1); exposes degeneration.
    pub fn max_depth(&self) -> usize {
        fn walk<V, const K: usize>(n: Option<&Node<V, K>>) -> usize {
            n.map_or(0, |n| {
                1 + walk(n.left.as_deref()).max(walk(n.right.as_deref()))
            })
        }
        walk(self.root.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: u64) -> Vec<[f64; 3]> {
        let mut x = 11u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [
                    (x % 1000) as f64,
                    ((x >> 20) % 1000) as f64,
                    ((x >> 40) % 1000) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn insert_get_replace() {
        let mut t: KdTree1<u32, 2> = KdTree1::new();
        assert_eq!(t.insert([1.0, 2.0], 1), None);
        assert_eq!(t.insert([1.0, 2.0], 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[1.0, 2.0]), Some(&2));
        assert_eq!(t.get(&[2.0, 1.0]), None);
    }

    #[test]
    fn bulk_insert_find_remove() {
        let mut t: KdTree1<usize, 3> = KdTree1::new();
        let points = pts(2000);
        let mut uniq = std::collections::BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            t.insert(*p, i);
            uniq.insert(p.map(|c| c.to_bits()), i);
        }
        assert_eq!(t.len(), uniq.len());
        for p in &points {
            assert!(t.contains(p));
        }
        // Remove half.
        for p in points.iter().step_by(2) {
            let k = p.map(|c| c.to_bits());
            assert_eq!(t.remove(p).is_some(), uniq.remove(&k).is_some());
        }
        assert_eq!(t.len(), uniq.len());
        for p in &points {
            let k = p.map(|c| c.to_bits());
            assert_eq!(t.contains(p), uniq.contains_key(&k), "{p:?}");
        }
    }

    #[test]
    fn remove_root_repeatedly() {
        let mut t: KdTree1<(), 1> = KdTree1::new();
        for i in 0..50 {
            t.insert([i as f64], ());
        }
        for i in 0..50 {
            assert_eq!(t.remove(&[i as f64]), Some(()));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn window_matches_filter() {
        let mut t: KdTree1<usize, 3> = KdTree1::new();
        let points = pts(800);
        for (i, p) in points.iter().enumerate() {
            t.insert(*p, i);
        }
        let (min, max) = ([100.0, 200.0, 0.0], [600.0, 800.0, 500.0]);
        let mut got = Vec::new();
        t.window(&min, &max, &mut |p, _| got.push(p.map(|c| c.to_bits())));
        got.sort();
        let mut want: Vec<_> = points
            .iter()
            .filter(|p| (0..3).all(|d| min[d] <= p[d] && p[d] <= max[d]))
            .map(|p| p.map(|c| c.to_bits()))
            .collect();
        want.sort();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn knn_matches_brute_force() {
        let mut t: KdTree1<usize, 3> = KdTree1::new();
        let points = pts(500);
        let mut uniq: Vec<[f64; 3]> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            if t.insert(*p, i).is_none() {
                uniq.push(*p);
            }
        }
        let center = [500.0, 500.0, 500.0];
        let got = t.knn(&center, 7);
        let mut want: Vec<f64> = uniq
            .iter()
            .map(|p| {
                (0..3)
                    .map(|d| (p[d] - center[d]).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        want.sort_by(f64::total_cmp);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.2 - w).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_scales_with_len() {
        let mut t: KdTree1<u64, 2> = KdTree1::new();
        for i in 0..100 {
            t.insert([i as f64, (i * 7) as f64], i);
        }
        assert_eq!(
            t.memory_bytes(),
            100 * (std::mem::size_of::<Node<u64, 2>>() + 16)
        );
    }
}
