//! KD2: an arena-allocated kD-tree with tombstone deletion and
//! automatic median rebuild.
//!
//! Nodes live in one contiguous vector (good locality, one allocation).
//! Deletion tombstones the node; when tombstones reach half the arena
//! the tree is rebuilt into a perfectly median-balanced form. Compared
//! to [`crate::KdTree1`], this trades rebuild spikes and tombstone
//! memory for balance and cache friendliness — the "each has its own
//! strengths" spread the paper observes between its two kD-trees.

use crate::ALLOC_OVERHEAD;

const NIL: u32 = u32::MAX;

struct Node<V, const K: usize> {
    point: [f64; K],
    /// `None` marks a tombstone.
    value: Option<V>,
    left: u32,
    right: u32,
}

/// An arena-based kD-tree with tombstone deletes and periodic rebuilds.
///
/// ```
/// use kdtree::KdTree2;
///
/// let mut t: KdTree2<&str, 2> = KdTree2::new();
/// t.insert([0.0, 0.0], "a");
/// t.insert([5.0, 5.0], "b");
/// assert_eq!(t.remove(&[0.0, 0.0]), Some("a"));
/// assert_eq!(t.len(), 1);
/// assert!(!t.contains(&[0.0, 0.0]));
/// ```
pub struct KdTree2<V, const K: usize> {
    nodes: Vec<Node<V, K>>,
    root: u32,
    len: usize,
    tombstones: usize,
}

impl<V, const K: usize> Default for KdTree2<V, K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V, const K: usize> KdTree2<V, K> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        assert!(K >= 1);
        KdTree2 {
            nodes: Vec::new(),
            root: NIL,
            len: 0,
            tombstones: 0,
        }
    }

    /// Number of live stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `point → value`, returning the previous value if the
    /// point was already present (a tombstoned point is revived).
    pub fn insert(&mut self, point: [f64; K], value: V) -> Option<V> {
        if self.root == NIL {
            self.root = self.alloc(point, value);
            self.len = 1;
            return None;
        }
        let mut i = self.root;
        let mut depth = 0usize;
        loop {
            if self.nodes[i as usize].point == point {
                let old = self.nodes[i as usize].value.replace(value);
                if old.is_none() {
                    // Revived a tombstone.
                    self.tombstones -= 1;
                    self.len += 1;
                }
                return old;
            }
            let axis = depth % K;
            let go_left = point[axis] < self.nodes[i as usize].point[axis];
            let next = if go_left {
                self.nodes[i as usize].left
            } else {
                self.nodes[i as usize].right
            };
            if next == NIL {
                let new = self.alloc(point, value);
                let n = &mut self.nodes[i as usize];
                if go_left {
                    n.left = new;
                } else {
                    n.right = new;
                }
                self.len += 1;
                return None;
            }
            i = next;
            depth += 1;
        }
    }

    fn alloc(&mut self, point: [f64; K], value: V) -> u32 {
        self.nodes.push(Node {
            point,
            value: Some(value),
            left: NIL,
            right: NIL,
        });
        (self.nodes.len() - 1) as u32
    }

    fn find(&self, point: &[f64; K]) -> Option<u32> {
        let mut i = self.root;
        let mut depth = 0usize;
        while i != NIL {
            let n = &self.nodes[i as usize];
            if n.point == *point {
                return Some(i);
            }
            let axis = depth % K;
            i = if point[axis] < n.point[axis] {
                n.left
            } else {
                n.right
            };
            depth += 1;
        }
        None
    }

    /// Point query.
    pub fn get(&self, point: &[f64; K]) -> Option<&V> {
        self.find(point)
            .and_then(|i| self.nodes[i as usize].value.as_ref())
    }

    /// Whether `point` is stored (and live).
    pub fn contains(&self, point: &[f64; K]) -> bool {
        self.get(point).is_some()
    }

    /// Removes `point`, returning its value if present. Tombstones the
    /// node; rebuilds the arena once half of it is dead.
    pub fn remove(&mut self, point: &[f64; K]) -> Option<V> {
        let i = self.find(point)?;
        let old = self.nodes[i as usize].value.take()?;
        self.len -= 1;
        self.tombstones += 1;
        if self.tombstones * 2 >= self.nodes.len().max(8) {
            self.rebuild();
        }
        Some(old)
    }

    /// Rebuilds the arena into a median-balanced tree of the live nodes.
    fn rebuild(&mut self) {
        let old = std::mem::take(&mut self.nodes);
        let mut live: Vec<([f64; K], Option<V>)> = old
            .into_iter()
            .filter_map(|n| n.value.map(|v| (n.point, Some(v))))
            .collect();
        self.tombstones = 0;
        self.len = live.len();
        let mut nodes = Vec::with_capacity(live.len());
        self.root = Self::build_balanced(&mut nodes, &mut live[..], 0);
        self.nodes = nodes;
    }

    fn build_balanced(
        nodes: &mut Vec<Node<V, K>>,
        items: &mut [([f64; K], Option<V>)],
        depth: usize,
    ) -> u32 {
        if items.is_empty() {
            return NIL;
        }
        let axis = depth % K;
        items.sort_unstable_by(|a, b| a.0[axis].total_cmp(&b.0[axis]));
        // Pull the split back to the first element with the median's
        // coordinate so that everything strictly left is `< split` —
        // the invariant the point search relies on.
        let mut mid = items.len() / 2;
        while mid > 0 && items[mid - 1].0[axis] == items[mid].0[axis] {
            mid -= 1;
        }
        let point = items[mid].0;
        let value = items[mid].1.take();
        let idx = nodes.len() as u32;
        nodes.push(Node {
            point,
            value,
            left: NIL,
            right: NIL,
        });
        let (lo, rest) = items.split_at_mut(mid);
        let (_, hi) = rest.split_at_mut(1);
        let l = Self::build_balanced(nodes, lo, depth + 1);
        let r = Self::build_balanced(nodes, hi, depth + 1);
        nodes[idx as usize].left = l;
        nodes[idx as usize].right = r;
        idx
    }

    /// Window query: calls `visit(point, value)` for every live point in
    /// the rectangle.
    pub fn window(&self, min: &[f64; K], max: &[f64; K], visit: &mut dyn FnMut([f64; K], &V)) {
        self.window_rec(self.root, min, max, 0, visit);
    }

    fn window_rec(
        &self,
        i: u32,
        min: &[f64; K],
        max: &[f64; K],
        depth: usize,
        visit: &mut dyn FnMut([f64; K], &V),
    ) {
        if i == NIL {
            return;
        }
        let n = &self.nodes[i as usize];
        if let Some(v) = &n.value {
            if (0..K).all(|d| min[d] <= n.point[d] && n.point[d] <= max[d]) {
                visit(n.point, v);
            }
        }
        let axis = depth % K;
        if min[axis] < n.point[axis] {
            self.window_rec(n.left, min, max, depth + 1, visit);
        }
        if max[axis] >= n.point[axis] {
            self.window_rec(n.right, min, max, depth + 1, visit);
        }
    }

    /// Returns the `n` live points nearest to `center`, nearest first.
    pub fn knn(&self, center: &[f64; K], n: usize) -> Vec<([f64; K], &V, f64)> {
        let mut best: Vec<([f64; K], &V, f64)> = Vec::with_capacity(n + 1);
        if n > 0 {
            self.knn_rec(self.root, center, n, 0, &mut best);
        }
        best.sort_by(|a, b| a.2.total_cmp(&b.2));
        best
    }

    fn knn_rec<'t>(
        &'t self,
        i: u32,
        center: &[f64; K],
        n: usize,
        depth: usize,
        best: &mut Vec<([f64; K], &'t V, f64)>,
    ) {
        if i == NIL {
            return;
        }
        let nd = &self.nodes[i as usize];
        if let Some(v) = &nd.value {
            let dist = (0..K)
                .map(|d| (nd.point[d] - center[d]).powi(2))
                .sum::<f64>()
                .sqrt();
            if best.len() < n {
                best.push((nd.point, v, dist));
                best.sort_by(|a, b| a.2.total_cmp(&b.2));
            } else if dist < best[n - 1].2 {
                best[n - 1] = (nd.point, v, dist);
                best.sort_by(|a, b| a.2.total_cmp(&b.2));
            }
        }
        let axis = depth % K;
        let delta = center[axis] - nd.point[axis];
        let (near, far) = if delta < 0.0 {
            (nd.left, nd.right)
        } else {
            (nd.right, nd.left)
        };
        self.knn_rec(near, center, n, depth + 1, best);
        if best.len() < n || delta.abs() <= best[best.len() - 1].2 {
            self.knn_rec(far, center, n, depth + 1, best);
        }
    }

    /// Heap bytes: the arena allocation (including tombstones — that is
    /// this variant's space weakness) plus allocator overhead.
    pub fn memory_bytes(&self) -> usize {
        if self.nodes.capacity() == 0 {
            0
        } else {
            self.nodes.capacity() * std::mem::size_of::<Node<V, K>>() + ALLOC_OVERHEAD
        }
    }

    /// Maximum depth of live structure (root = 1).
    pub fn max_depth(&self) -> usize {
        fn walk<V, const K: usize>(t: &KdTree2<V, K>, i: u32) -> usize {
            if i == NIL {
                return 0;
            }
            let n = &t.nodes[i as usize];
            1 + walk(t, n.left).max(walk(t, n.right))
        }
        walk(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: u64) -> Vec<[f64; 2]> {
        let mut x = 77u64;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                [(x % 500) as f64, ((x >> 24) % 500) as f64]
            })
            .collect()
    }

    #[test]
    fn insert_get_remove_with_rebuilds() {
        let mut t: KdTree2<usize, 2> = KdTree2::new();
        let points = pts(3000);
        let mut model = std::collections::BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(t.insert(*p, i), model.insert(p.map(f64::to_bits), i));
        }
        assert_eq!(t.len(), model.len());
        // Delete two thirds — forces several rebuilds.
        for p in points.iter().filter(|p| !(p[0] as u64).is_multiple_of(3)) {
            assert_eq!(t.remove(p), model.remove(&p.map(f64::to_bits)));
        }
        assert_eq!(t.len(), model.len());
        for p in &points {
            assert_eq!(t.get(p).is_some(), model.contains_key(&p.map(f64::to_bits)));
        }
    }

    #[test]
    fn revive_tombstone() {
        let mut t: KdTree2<u32, 2> = KdTree2::new();
        t.insert([1.0, 1.0], 1);
        t.insert([2.0, 2.0], 2);
        assert_eq!(t.remove(&[1.0, 1.0]), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.insert([1.0, 1.0], 9), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&[1.0, 1.0]), Some(&9));
    }

    #[test]
    fn window_skips_tombstones() {
        let mut t: KdTree2<usize, 2> = KdTree2::new();
        let points = pts(400);
        for (i, p) in points.iter().enumerate() {
            t.insert(*p, i);
        }
        let mut removed = std::collections::BTreeSet::new();
        for p in points.iter().take(50) {
            if t.remove(p).is_some() {
                removed.insert(p.map(f64::to_bits));
            }
        }
        let (min, max) = ([0.0, 0.0], [500.0, 500.0]);
        let mut got = Vec::new();
        t.window(&min, &max, &mut |p, _| got.push(p.map(f64::to_bits)));
        got.sort();
        got.dedup();
        assert_eq!(got.len(), t.len());
        for r in &removed {
            assert!(!got.contains(r));
        }
    }

    #[test]
    fn rebuild_balances_depth() {
        let mut t: KdTree2<(), 1> = KdTree2::new();
        // Sorted insert: maximal degeneration.
        for i in 0..1024 {
            t.insert([i as f64], ());
        }
        assert!(t.max_depth() >= 1024);
        // Deleting half triggers a rebuild into a balanced tree.
        for i in 0..1024 {
            if i % 2 == 0 {
                t.remove(&[i as f64]);
            }
        }
        assert!(
            t.max_depth() <= 12,
            "depth after rebuild: {}",
            t.max_depth()
        );
    }

    #[test]
    fn knn_agrees_with_kd1() {
        let points = pts(300);
        let mut t1: crate::KdTree1<usize, 2> = crate::KdTree1::new();
        let mut t2: KdTree2<usize, 2> = KdTree2::new();
        for (i, p) in points.iter().enumerate() {
            t1.insert(*p, i);
            t2.insert(*p, i);
        }
        let center = [250.0, 250.0];
        let a = t1.knn(&center, 5);
        let b = t2.knn(&center, 5);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.2 - y.2).abs() < 1e-9);
        }
    }
}
