//! Naive non-index storage yardsticks (paper Sect. 4.3.5).
//!
//! The paper compares index memory against two plain storage layouts:
//!
//! * `double[]` — all coordinates in one flat array: `k·8·n` bytes.
//! * `object[]` — one object per entry (k doubles + 16-byte object
//!   header) plus an array of 4-byte references: `(k·8 + 16 + 4)·n`
//!   bytes.
//!
//! These are real, populated Rust structures (so loading them can be
//! timed) whose `memory_bytes` follow the paper's formulas exactly.

/// Flat `double[]` storage: one `Vec<f64>` of length `k·n`.
///
/// ```
/// let mut a = kdtree::naive::PlainArray::<3>::new();
/// a.push(&[1.0, 2.0, 3.0]);
/// assert_eq!(a.len(), 1);
/// assert_eq!(a.get(0), [1.0, 2.0, 3.0]);
/// assert_eq!(a.memory_bytes(), 3 * 8);
/// ```
#[derive(Default, Clone, Debug)]
pub struct PlainArray<const K: usize> {
    data: Vec<f64>,
}

impl<const K: usize> PlainArray<K> {
    /// Creates empty storage.
    pub fn new() -> Self {
        PlainArray { data: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, p: &[f64; K]) {
        self.data.extend_from_slice(p);
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.data.len() / K
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns point `i`.
    pub fn get(&self, i: usize) -> [f64; K] {
        std::array::from_fn(|d| self.data[i * K + d])
    }

    /// Paper formula: `k · 8 · n` bytes.
    pub fn memory_bytes(&self) -> usize {
        K * 8 * self.len()
    }

    /// Linear scan point lookup (what "no index" costs).
    pub fn contains(&self, p: &[f64; K]) -> bool {
        (0..self.len()).any(|i| &self.get(i) == p)
    }

    /// Linear scan window query.
    pub fn window(&self, min: &[f64; K], max: &[f64; K], visit: &mut dyn FnMut([f64; K])) {
        for i in 0..self.len() {
            let p = self.get(i);
            if (0..K).all(|d| min[d] <= p[d] && p[d] <= max[d]) {
                visit(p);
            }
        }
    }
}

/// `object[]` storage: one boxed point object per entry plus a reference
/// array.
///
/// ```
/// let mut a = kdtree::naive::ObjectArray::<2>::new();
/// a.push(&[4.0, 2.0]);
/// // Paper formula: (k*8 + 16 + 4) per entry.
/// assert_eq!(a.memory_bytes(), 2 * 8 + 16 + 4);
/// ```
#[derive(Default, Debug)]
pub struct ObjectArray<const K: usize> {
    data: Vec<Box<[f64; K]>>,
}

impl<const K: usize> ObjectArray<K> {
    /// Creates empty storage.
    pub fn new() -> Self {
        ObjectArray { data: Vec::new() }
    }

    /// Appends a point (allocates one object).
    pub fn push(&mut self, p: &[f64; K]) {
        self.data.push(Box::new(*p));
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns point `i`.
    pub fn get(&self, i: usize) -> [f64; K] {
        *self.data[i]
    }

    /// Paper formula: `(k·8 + 16 + 4) · n` bytes — object payload plus
    /// 16-byte header plus a 4-byte reference slot.
    pub fn memory_bytes(&self) -> usize {
        (K * 8 + 16 + 4) * self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_array_roundtrip() {
        let mut a = PlainArray::<2>::new();
        for i in 0..10 {
            a.push(&[i as f64, (i * 2) as f64]);
        }
        assert_eq!(a.len(), 10);
        assert_eq!(a.get(4), [4.0, 8.0]);
        assert!(a.contains(&[7.0, 14.0]));
        assert!(!a.contains(&[7.0, 15.0]));
        assert_eq!(a.memory_bytes(), 2 * 8 * 10);
        let mut count = 0;
        a.window(&[2.0, 0.0], &[5.0, 100.0], &mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn object_array_formula() {
        let mut a = ObjectArray::<3>::new();
        for i in 0..5 {
            a.push(&[i as f64; 3]);
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(3), [3.0; 3]);
        assert_eq!(a.memory_bytes(), (3 * 8 + 16 + 4) * 5);
    }
}
