//! Placeholder main; the real entry points are the per-figure binaries
//! in `src/bin/`.

fn main() {
    eprintln!(
        "Use the per-figure binaries, e.g. `cargo run --release -p ph-bench --bin fig7_insert`."
    );
}
