//! Section 4.3.4 (unloading): delete time per entry vs. insert time per
//! entry for all structures. The paper reports unloading results "very
//! similar to tree loading, but a bit faster", with the PH-tree
//! consistently ~10 % faster on deletes than inserts.
//!
//! Usage: `cargo run --release -p ph-bench --bin unload --
//!         --dataset tiger|cube|cluster [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, unload_timed, Cb1, Cb2, Index, Kd1, Kd2, Ph};

fn pair<I: Index<K>, const K: usize>(data: &[[f64; K]], order: &[usize]) -> (f64, f64) {
    let (mut idx, ins) = load_timed::<I, K>(data);
    let shuffled: Vec<[f64; K]> = order.iter().map(|&i| data[i]).collect();
    let del = unload_timed(&mut idx, &shuffled);
    assert!(idx.is_empty(), "{} left entries behind", I::NAME);
    (ins, del)
}

fn run<const K: usize>(title: &str, data: Vec<[f64; K]>, seed: u64) {
    // Random removal order, deterministic.
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut x = seed | 1;
    for i in (1..order.len()).rev() {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.swap(i, (x as usize) % (i + 1));
    }
    let mut t = Table::new(title, "row#");
    let (ins, del) = pair::<Ph<K>, K>(&data, &order);
    t.add_row(
        1.0,
        &[
            ("insert µs", Some(ins)),
            ("delete µs", Some(del)),
            ("delete/insert", Some(del / ins)),
        ],
    );
    let (ins, del) = pair::<Kd1<K>, K>(&data, &order);
    t.add_row(
        2.0,
        &[
            ("insert µs", Some(ins)),
            ("delete µs", Some(del)),
            ("delete/insert", Some(del / ins)),
        ],
    );
    let (ins, del) = pair::<Kd2<K>, K>(&data, &order);
    t.add_row(
        3.0,
        &[
            ("insert µs", Some(ins)),
            ("delete µs", Some(del)),
            ("delete/insert", Some(del / ins)),
        ],
    );
    let (ins, del) = pair::<Cb1<K>, K>(&data, &order);
    t.add_row(
        4.0,
        &[
            ("insert µs", Some(ins)),
            ("delete µs", Some(del)),
            ("delete/insert", Some(del / ins)),
        ],
    );
    let (ins, del) = pair::<Cb2<K>, K>(&data, &order);
    t.add_row(
        5.0,
        &[
            ("insert µs", Some(ins)),
            ("delete µs", Some(del)),
            ("delete/insert", Some(del / ins)),
        ],
    );
    println!("rows: 1 = PH, 2 = KD1, 3 = KD2, 4 = CB1, 5 = CB2");
    print!("{}", t.render_text());
    ph_bench::write_csv(title, &t);
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let dataset = cli.get_str("dataset", "cube");
    let n = ((10_000_000_f64 * scale) as usize).max(10_000);
    match dataset.as_str() {
        "tiger" => run::<2>(
            "unload 2D TIGER-like, µs/entry",
            datasets::dedup(datasets::tiger_like(n, seed)),
            seed,
        ),
        "cube" => run::<3>(
            "unload 3D CUBE, µs/entry",
            datasets::cube::<3>(n, seed),
            seed,
        ),
        "cluster" => run::<3>(
            "unload 3D CLUSTER, µs/entry",
            datasets::cluster::<3>(n, 0.5, seed),
            seed,
        ),
        other => {
            eprintln!("unknown --dataset {other}; use tiger|cube|cluster");
            std::process::exit(2);
        }
    }
}
