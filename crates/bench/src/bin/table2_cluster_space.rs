//! Table 2: PH-tree bytes per entry for the CLUSTER0.4 vs CLUSTER0.5
//! datasets (k = 3) as n grows — the IEEE-exponent-boundary effect of
//! Sect. 4.3.6.
//!
//! Usage: `cargo run --release -p ph-bench --bin table2_cluster_space --
//!         [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, Index, Ph};

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let cps = ph_bench::scaled_checkpoints(
        &[
            1_000_000, 5_000_000, 10_000_000, 15_000_000, 25_000_000, 50_000_000,
        ],
        scale,
    );
    let max = *cps.last().unwrap();
    let data04 = datasets::cluster::<3>(max, 0.4, seed);
    let data05 = datasets::cluster::<3>(max, 0.5, seed);
    let mut t = Table::new(
        "table2 PH bytes per entry, CLUSTER0.4 vs CLUSTER0.5, k=3",
        "10^6 entries",
    );
    for &n in &cps {
        let mut cells = Vec::new();
        for (name, data) in [("CLUSTER0.4", &data04), ("CLUSTER0.5", &data05)] {
            let (mut idx, _) = load_timed::<Ph<3>, 3>(&data[..n]);
            idx.finalize();
            cells.push((name, Some(idx.memory_bytes() as f64 / idx.len() as f64)));
        }
        t.add_row(n as f64 / 1e6, &cells);
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("table2 cluster space", &t);
}
