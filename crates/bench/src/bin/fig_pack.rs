//! Packed read-only artifact vs live serving: cold-start, space,
//! allocations, and page locality.
//!
//! Usage: `cargo run --release -p ph-bench --bin fig_pack --
//!         [--n 20000] [--seed 42] [--quick true]
//!         [--json BENCH_phtree.json]`
//!
//! One K=8 shard of `n` entries (CUBE keys, mixed history: bulk ingest
//! then overwrites and removes) is served three ways, and the
//! build-once serve-forever economics are measured:
//!
//! * **Cold start** — wall-clock to reopen the shard from a WAL
//!   (replay), from a snapshot (decode + rebuild), and from a packed
//!   artifact (superblock + checksum table, no tree rebuild).
//! * **Space** — packed file bytes/entry vs the live tree's
//!   `stats().total_bytes` heap bytes/entry.
//! * **Allocations** — warmed packed `get`/`query`/`knn_into` batches,
//!   pinned at zero by the counting global allocator.
//! * **Page locality** — data-page extents touched per window query on
//!   the descent-ordered layout.
//!
//! Acceptance checks are hard-asserted at the reference point
//! (n ≥ 20 000, K = 8): packed open ≥ 10× faster than WAL replay,
//! packed bytes/entry ≤ live heap bytes/entry, and zero allocations
//! per warmed read op. With `--json <path>` every metric lands in the
//! flat perf-baseline JSON along with `host_cores`.

use measure::alloc_track::{snapshot, CountingAlloc};
use measure::{Cli, Table};
use phpack::{CacheMode, KnnScratch, Packable, PackedNeighbor, PackedTree};
use phstore::vfs::StdVfs;
use phstore::{Durable, DurableConfig};
use phtree::key::point_to_key;
use phtree::IntEuclidean;
use std::hint::black_box;
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const K: usize = 8;

/// Never auto-checkpoint: the WAL store must carry its whole history
/// so reopening measures a full replay.
fn wal_only() -> DurableConfig {
    DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    }
}

/// The shard's write history: bulk ingest, then a churn tail of
/// overwrites and removes so replay is not one pure leading-insert run.
fn apply_history(store: &mut Durable<u64, K>, items: &[([u64; K], u64)]) {
    for &(k, v) in items {
        store.insert(k, v).expect("insert");
    }
    for (i, &(k, _)) in items.iter().enumerate().take(items.len() / 10) {
        store.insert(k, i as u64 ^ 0xdead).expect("overwrite");
    }
    for &(k, _) in items.iter().step_by(20) {
        store.remove(&k).expect("remove");
    }
}

/// Best-of-`repeats` wall-clock milliseconds for one cold open.
fn best_open_ms(repeats: usize, mut open: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let (len, us) = measure::time_us(&mut open);
        black_box(len);
        best = best.min(us / 1000.0);
    }
    best
}

fn main() {
    let cli = Cli::from_env();
    ph_bench::maybe_install_counting_sink(&cli);
    let quick = cli.get_str("quick", "false") == "true";
    let seed = cli.get_u64("seed", 42);
    let n = cli.get_u64("n", 20_000) as usize;
    let repeats = if quick { 5 } else { 9 };
    let json = cli.get_str("json", "");
    let json = (!json.is_empty()).then_some(json);

    let items: Vec<([u64; K], u64)> = datasets::cube::<K>(n, seed)
        .iter()
        .enumerate()
        .map(|(i, p)| (point_to_key(p), i as u64))
        .collect();

    let base = std::env::temp_dir().join(format!("fig_pack-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create bench dir");
    let wal_dir = base.join("wal");
    let snap_dir = base.join("snap");
    let pack_path = base.join("shard.phk");

    // Build the same shard state under all three serving formats.
    let mut store =
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &wal_dir, wal_only()).expect("open wal");
    apply_history(&mut store, &items);
    store.sync().expect("sync");
    let live_stats = store.tree().stats();
    let pack = store.tree().pack_to(&pack_path).expect("pack");
    let entries = store.len();
    drop(store);

    let mut store =
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &snap_dir, wal_only()).expect("open snap");
    apply_history(&mut store, &items);
    store.checkpoint().expect("checkpoint");
    drop(store);

    // --- Cold-start latency, best of `repeats` per format. ---
    let wal_ms = best_open_ms(repeats, || {
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &wal_dir, wal_only())
            .expect("reopen wal")
            .len()
    });
    let snap_ms = best_open_ms(repeats, || {
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &snap_dir, wal_only())
            .expect("reopen snap")
            .len()
    });
    let packed_ms = best_open_ms(repeats, || {
        PackedTree::<u64, K>::open(&pack_path, CacheMode::Resident)
            .expect("reopen packed")
            .len()
    });
    // Honesty guards: the WAL store really replays its history, the
    // snapshot store really starts from a clean log, and all three
    // formats hold the same entries.
    let reopened =
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &wal_dir, wal_only()).expect("reopen wal");
    assert!(
        reopened.recovery_stats().replayed_ops > n,
        "WAL reopen replayed {} ops, want the full {}-op history",
        reopened.recovery_stats().replayed_ops,
        n
    );
    assert_eq!(reopened.len(), entries);
    drop(reopened);
    let reopened =
        Durable::<u64, K>::open_with(Arc::new(StdVfs), &snap_dir, wal_only()).expect("reopen snap");
    assert_eq!(reopened.recovery_stats().replayed_ops, 0);
    assert_eq!(reopened.len(), entries);
    drop(reopened);

    // --- Space: artifact bytes vs live heap bytes, per entry. ---
    let packed_bpe = pack.file_bytes as f64 / entries as f64;
    let live_bpe = live_stats.bytes_per_entry();

    // --- Zero allocations per warmed packed read op. ---
    let packed = PackedTree::<u64, K>::open(&pack_path, CacheMode::Resident).expect("open packed");
    let probes: Vec<[u64; K]> = items.iter().map(|(k, _)| *k).take(256).collect();
    let windows: Vec<([u64; K], [u64; K])> = probes
        .iter()
        .take(64)
        .map(|c| {
            let mut lo = *c;
            let mut hi = *c;
            for d in 0..K {
                lo[d] = c[d].saturating_sub(1 << 58);
                hi[d] = c[d].saturating_add(1 << 58);
            }
            (lo, hi)
        })
        .collect();
    let mut scratch = KnnScratch::new();
    let mut out: Vec<PackedNeighbor<u64, K>> = Vec::new();
    let mut read_batch = || {
        let mut acc = 0usize;
        for k in &probes {
            acc += packed.get(k).expect("get").is_some() as usize;
        }
        for (lo, hi) in &windows {
            for item in packed.query(lo, hi) {
                black_box(item.expect("query item"));
                acc += 1;
            }
        }
        for c in probes.iter().take(32) {
            packed
                .knn_into(c, 8, &IntEuclidean, &mut scratch, &mut out)
                .expect("knn");
            acc += out.len();
        }
        black_box(acc)
    };
    read_batch(); // warm
    let before = snapshot();
    read_batch();
    let allocs = snapshot().allocs_since(&before);
    let ops = (probes.len() + windows.len() + 32) as f64;

    // --- Page locality: data-page extents touched per window query. ---
    let fresh = PackedTree::<u64, K>::open(&pack_path, CacheMode::Resident).expect("open packed");
    let t0 = fresh.cache_stats().touches;
    let mut hits = 0usize;
    for (lo, hi) in &windows {
        for item in fresh.query(lo, hi) {
            black_box(item.expect("query item"));
            hits += 1;
        }
    }
    black_box(hits);
    let touches_per_query = (fresh.cache_stats().touches - t0) as f64 / windows.len() as f64;

    println!(
        "fig_pack k={K}: n={entries} open wal {wal_ms:.3} ms, snapshot {snap_ms:.3} ms, \
         packed {packed_ms:.3} ms ({:.1}x vs wal); bytes/e packed {packed_bpe:.1} vs live \
         {live_bpe:.1}; {allocs} allocs / {ops:.0} warmed ops; {touches_per_query:.1} \
         page-touches/query ({} data pages)",
        wal_ms / packed_ms,
        packed.data_pages()
    );

    let mut table = Table::new("fig_pack packed artifact vs live serving, CUBE", "k");
    table.add_row(
        K as f64,
        &[
            ("wal open ms", Some(wal_ms)),
            ("snap open ms", Some(snap_ms)),
            ("packed open ms", Some(packed_ms)),
            ("packed B/e", Some(packed_bpe)),
            ("live B/e", Some(live_bpe)),
            ("touches/query", Some(touches_per_query)),
        ],
    );
    print!("{}", table.render_text());
    ph_bench::write_csv("fig_pack packed artifact vs live serving", &table);

    if let Some(path) = json.as_deref() {
        for (name, v) in [
            ("fig_pack_open_wal_replay_ms", wal_ms),
            ("fig_pack_open_snapshot_ms", snap_ms),
            ("fig_pack_open_packed_ms", packed_ms),
            ("fig_pack_packed_bytes_per_entry", packed_bpe),
            ("fig_pack_live_bytes_per_entry", live_bpe),
            ("fig_pack_page_touches_per_query", touches_per_query),
            ("host_cores", ph_bench::host_cores() as f64),
        ] {
            match ph_bench::perfjson::record(path, name, v) {
                Ok(()) => eprintln!("json: {path} <- {name}"),
                Err(e) => eprintln!("note: cannot update {path}: {e}"),
            }
        }
    }

    // Acceptance (reference point only — a scaled-down --n run still
    // prints, but the claims are asserted where the issue pins them).
    if n >= 20_000 {
        assert_eq!(
            allocs, 0,
            "packed read path allocated {allocs} times across warmed ops — want zero"
        );
        assert!(
            wal_ms >= 10.0 * packed_ms,
            "packed cold-start regression: {packed_ms:.3} ms vs {wal_ms:.3} ms WAL replay \
             is only {:.1}x, want >= 10x",
            wal_ms / packed_ms
        );
        assert!(
            packed_bpe <= live_bpe,
            "packed artifact ({packed_bpe:.1} B/e) is larger than the live tree's heap \
             ({live_bpe:.1} B/e)"
        );
    }

    let _ = std::fs::remove_dir_all(&base);
}
