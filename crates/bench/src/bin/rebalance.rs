//! Online rebalancing under traffic: read latency and write shedding
//! while a hot durable shard is split live.
//!
//! The workload is the paper's adversarial case for prefix routing:
//! clustered float keys (`datasets::cluster`) whose sign/exponent bits
//! coincide, so the entire ingest lands on one shard of a uniform
//! router — skew is maximal by construction. The bench then splits
//! that hot shard **while** a writer thread keeps inserting and a
//! reader thread keeps issuing point reads, and reports:
//!
//! * read latency p50/p99 at baseline vs during the live split;
//! * writer throughput, plus how many writes were shed with the typed
//!   `Overloaded` error while the migration backlog was full
//!   (`shed_rate`), and how many backlogged writes the commit drained;
//! * skew before/after and the split's wall-clock cost.
//!
//! Runs on an in-memory VFS so the numbers isolate the protocol, not
//! the disk. On a 1-core host the reader/writer threads interleave
//! rather than run in parallel — latency percentiles and shed rates
//! stay honest, throughput "during" numbers understate a multicore
//! host; `host_cores` is recorded so readers can judge.
//!
//! Usage: `cargo run --release -p ph-bench --bin rebalance --
//!         [--quick true] [--n 200000] [--split-bits 2] [--backlog 512]`

use measure::{Cli, Table};
use phshard::{DurableSharded, ShardError};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use phtree::key::point_to_key;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

type Key = [u64; 2];

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64
}

/// Point-read latencies (ns) over `probes`, one synchronous read at a
/// time — the honest single-client view.
fn read_latencies(store: &DurableSharded<u32, 2>, probes: &[Key]) -> Vec<u64> {
    let mut ns = Vec::with_capacity(probes.len());
    for k in probes {
        let t = Instant::now();
        std::hint::black_box(store.get_with(k, |v| *v));
        ns.push(t.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    ns
}

fn main() {
    let cli = Cli::from_env();
    let quick = cli.get_str("quick", "false") == "true";
    let n = cli.get_u64("n", if quick { 20_000 } else { 200_000 }) as usize;
    let split_bits = cli.get_u64("split-bits", 2) as u32;
    let backlog_cap = cli.get_u64("backlog", 512) as usize;
    let seed = cli.get_u64("seed", 42);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "rebalance: n={n} split_bits={split_bits} backlog={backlog_cap} cores={cores}{}",
        if quick { " (quick)" } else { "" }
    );

    let config = DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    };
    let store: Arc<DurableSharded<u32, 2>> = Arc::new(
        DurableSharded::open_with(Arc::new(MemVfs::new()), Path::new("/bench"), 4, config).unwrap(),
    );
    store.set_backlog_capacity(backlog_cap);

    // Clustered ingest: every key shares its top Z-bits, so the whole
    // load piles onto one of the 4 uniform shards.
    let pts = datasets::cluster::<2>(n, 0.5, seed);
    let keys: Vec<Key> = pts.iter().map(point_to_key).collect();
    let (_, ingest_us) = measure::time_us(|| {
        for (i, k) in keys.iter().enumerate() {
            store.insert(*k, i as u32).unwrap();
        }
    });
    let stats = store.stats();
    let skew_before = stats.skew();
    let (hot, hot_entries) = stats.hottest().expect("ingest is non-empty");

    // Baseline read latency, no migration in flight.
    let probes: Vec<Key> = keys.iter().step_by((n / 2000).max(1)).copied().collect();
    let baseline = read_latencies(&store, &probes);

    // Live split: writer + reader threads run while the main thread
    // splits the hot shard.
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let (split_report, during, split_us, fresh) = std::thread::scope(|scope| {
        let writer = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            let shed = Arc::clone(&shed);
            scope.spawn(move || {
                let mut i = 0u64;
                let mut fresh = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // New keys under the hot shard's prefix (both MSBs
                    // set, like the clustered floats): they route to
                    // the migrating shard and exercise the backlog.
                    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 12;
                    let key = [h | (1 << 63), (h.rotate_left(17) >> 12) | (1 << 63)];
                    match store.insert(key, i as u32) {
                        Ok(prev) => {
                            acked.fetch_add(1, Ordering::Relaxed);
                            if prev.is_none() {
                                fresh += 1;
                            }
                        }
                        Err(ShardError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("writer hit unexpected error: {e}"),
                    };
                    i += 1;
                }
                fresh
            })
        };
        let reader = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let probes = probes.clone();
            scope.spawn(move || {
                let mut ns = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for k in probes.iter().step_by(8) {
                        let t = Instant::now();
                        std::hint::black_box(store.get_with(k, |v| *v));
                        ns.push(t.elapsed().as_nanos() as u64);
                    }
                }
                ns.sort_unstable();
                ns
            })
        };
        let t = Instant::now();
        let report = store.split_shard(hot, split_bits).unwrap();
        let split_us = t.elapsed().as_secs_f64() * 1e6;
        stop.store(true, Ordering::Relaxed);
        let fresh = writer.join().unwrap();
        let during = reader.join().unwrap();
        (report, during, split_us, fresh)
    });

    let skew_after = store.stats().skew();
    let acked = acked.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let shed_rate = shed as f64 / (acked + shed).max(1) as f64;
    assert_eq!(
        store.len() as u64,
        n as u64 + fresh,
        "entries lost or duplicated across the live split"
    );

    let mut table = Table::new("rebalance live split read latency (ns)", "phase");
    table.add_row(
        0.0,
        &[
            ("p50", Some(percentile(&baseline, 0.50))),
            ("p99", Some(percentile(&baseline, 0.99))),
        ],
    );
    table.add_row(
        1.0,
        &[
            ("p50", Some(percentile(&during, 0.50))),
            ("p99", Some(percentile(&during, 0.99))),
        ],
    );
    print!("{}", table.render_text());
    println!("phase 0 = baseline, phase 1 = during live split");
    println!(
        "split: {hot} -> {:?} in {:.0}us  migrated {} entries, drained {} backlogged writes",
        split_report.children, split_us, split_report.migrated, split_report.backlog_drained
    );
    println!(
        "writer during split: {acked} acked, {shed} shed ({:.2}% shed rate)  skew {skew_before:.2} -> {skew_after:.2}  (host cores: {cores})",
        shed_rate * 100.0
    );
    ph_bench::write_csv("rebalance live split read latency (ns)", &table);

    let json = format!(
        "{{\n  \"workload\": {{\"n\": {n}, \"dims\": 2, \"dataset\": \"clustered\", \"seed\": {seed}, \"shards_before\": 4, \"split_bits\": {split_bits}, \"backlog_cap\": {backlog_cap}, \"ingest_us\": {ingest_us:.0}}},\n  \"host_cores\": {cores},\n  \"skew\": {{\"before\": {skew_before:.4}, \"after\": {skew_after:.4}, \"hot_shard_entries\": {hot_entries}}},\n  \"split\": {{\"src\": {hot}, \"children\": {children}, \"migrated\": {migrated}, \"backlog_drained\": {drained}, \"wall_us\": {split_us:.0}, \"epoch\": {epoch}}},\n  \"read_latency_ns\": {{\"baseline_p50\": {bp50:.0}, \"baseline_p99\": {bp99:.0}, \"during_split_p50\": {dp50:.0}, \"during_split_p99\": {dp99:.0}, \"during_samples\": {dn}}},\n  \"writes_during_split\": {{\"acked\": {acked}, \"shed\": {shed}, \"shed_rate\": {shed_rate:.6}}}\n}}\n",
        children = split_report.children.len(),
        migrated = split_report.migrated,
        drained = split_report.backlog_drained,
        epoch = split_report.epoch,
        bp50 = percentile(&baseline, 0.50),
        bp99 = percentile(&baseline, 0.99),
        dp50 = percentile(&during, 0.50),
        dp99 = percentile(&during, 0.99),
        dn = during.len(),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("note: cannot create results/: {e}");
    } else if let Err(e) = std::fs::write("results/rebalance.json", &json) {
        eprintln!("note: cannot write results/rebalance.json: {e}");
    } else {
        eprintln!("wrote results/rebalance.json");
    }
}
