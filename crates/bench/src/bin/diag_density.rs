//! Diagnostic: PH point-query cost vs TIGER-like density (not a paper figure).
use measure::Cli;
use ph_bench::{load_timed, point_queries_timed, Index, Kd2, Ph};

fn main() {
    let cli = Cli::from_env();
    let max_n = cli.get_u64("n", 8_000_000) as usize;
    let data = datasets::dedup(datasets::tiger_like(max_n, 42));
    let lo = [datasets::TIGER_X.0, datasets::TIGER_Y.0];
    let hi = [datasets::TIGER_X.1, datasets::TIGER_Y.1];
    for n in [max_n / 16, max_n / 4, max_n] {
        let slice = &data[..n.min(data.len())];
        let queries = datasets::point_query_mix(slice, 100_000, &lo, &hi, 7);
        let (mut ph, _) = load_timed::<Ph<2>, 2>(slice);
        ph.finalize();
        let ph_q = point_queries_timed(&ph, &queries);
        let s = ph.tree().stats();
        let (mut kd, _) = load_timed::<Kd2<2>, 2>(slice);
        kd.finalize();
        let kd_q = point_queries_timed(&kd, &queries);
        println!(
            "n={n}: PH {ph_q:.2} µs (depth {}, e/n {:.2}, hc {:.1}%), KD2 {kd_q:.2} µs",
            s.max_depth,
            s.entries_per_node(),
            100.0 * s.hc_nodes as f64 / s.nodes as f64
        );
    }
}
