//! Figure 10: PH-tree bytes per entry for n = 10⁶ (scaled) entries as
//! the dimensionality k grows, for CLUSTER0.4, CLUSTER0.5 and CUBE.
//!
//! Usage: `cargo run --release -p ph-bench --bin fig10_space_vs_k --
//!         [--scale 0.1] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::with_k;

fn bytes_per_entry<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let mut tree: phtree::PhTreeF64<(), K> = phtree::PhTreeF64::new();
    for p in &data {
        tree.insert(*p, ());
    }
    tree.shrink_to_fit();
    tree.stats().bytes_per_entry()
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.1);
    let seed = cli.get_u64("seed", 42);
    let n = ((1_000_000_f64 * scale) as usize).max(10_000);
    let mut t = Table::new(&format!("fig10 PH bytes per entry vs k, n = {n}"), "k");
    for k in [2usize, 3, 4, 5, 6, 8, 10, 12, 15] {
        let cl04 = with_k!(k, bytes_per_entry("cluster0.4", n, seed));
        let cl05 = with_k!(k, bytes_per_entry("cluster0.5", n, seed));
        let cu = with_k!(k, bytes_per_entry("cube", n, seed));
        t.add_row(
            k as f64,
            &[
                ("PH-CL0.4", Some(cl04)),
                ("PH-CL0.5", Some(cl05)),
                ("PH-CU", Some(cu)),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("fig10 space vs k", &t);
}
