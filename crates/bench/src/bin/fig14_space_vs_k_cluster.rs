//! Figure 14: bytes per entry vs. k at n = 10⁷ (scaled) entries for the
//! CLUSTER datasets: PH-CL0.4, PH-CL0.5, KD1, CB1, CB2, double[],
//! object[].
//!
//! Usage: `cargo run --release -p ph-bench --bin fig14_space_vs_k_cluster --
//!         [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, with_k, Cb1, Cb2, Index, Kd1, Ph};

fn bpe<I: Index<K>, const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let (mut idx, _) = load_timed::<I, K>(&data);
    idx.finalize();
    idx.memory_bytes() as f64 / idx.len() as f64
}

fn ph_bpe<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    bpe::<Ph<K>, K>(name, n, seed)
}
fn kd1_bpe<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    bpe::<Kd1<K>, K>(name, n, seed)
}
fn cb1_bpe<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    bpe::<Cb1<K>, K>(name, n, seed)
}
fn cb2_bpe<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    bpe::<Cb2<K>, K>(name, n, seed)
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let n = ((10_000_000_f64 * scale) as usize).max(10_000);
    let mut t = Table::new(
        &format!("fig14 bytes per entry vs k, CLUSTER, n = {n}"),
        "k",
    );
    for k in [2usize, 3, 4, 5, 6, 8, 10, 12, 15] {
        t.add_row(
            k as f64,
            &[
                ("PH-CL0.4", Some(with_k!(k, ph_bpe("cluster0.4", n, seed)))),
                ("PH-CL0.5", Some(with_k!(k, ph_bpe("cluster0.5", n, seed)))),
                ("KD1-CL", Some(with_k!(k, kd1_bpe("cluster0.5", n, seed)))),
                ("CB1", Some(with_k!(k, cb1_bpe("cluster0.5", n, seed)))),
                ("CB2", Some(with_k!(k, cb2_bpe("cluster0.5", n, seed)))),
                ("double[]", Some((k * 8) as f64)),
                ("object[]", Some((k * 8 + 16 + 4) as f64)),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("fig14 space vs k cluster", &t);
}
