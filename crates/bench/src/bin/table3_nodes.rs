//! Table 3: number of PH-tree nodes (in thousands) for 10⁶ (scaled)
//! 64-bit entries at varying dimensionality, for the CUBE, CLUSTER0.4
//! and CLUSTER0.5 datasets — the node-count explosion of CLUSTER0.5 at
//! high k (Sect. 4.3.6).
//!
//! Usage: `cargo run --release -p ph-bench --bin table3_nodes --
//!         [--scale 0.1] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::with_k;

fn nodes_thousands<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let mut tree: phtree::PhTreeF64<(), K> = phtree::PhTreeF64::new();
    for p in &data {
        tree.insert(*p, ());
    }
    tree.stats().nodes as f64 / 1000.0
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.1);
    let seed = cli.get_u64("seed", 42);
    let n = ((1_000_000_f64 * scale) as usize).max(10_000);
    let ks = [2usize, 3, 5, 10, 15];
    let mut t = Table::new(&format!("table3 PH node count (thousands), n = {n}"), "k");
    for &k in &ks {
        let cube = with_k!(k, nodes_thousands("cube", n, seed));
        let cl04 = with_k!(k, nodes_thousands("cluster0.4", n, seed));
        let cl05 = with_k!(k, nodes_thousands("cluster0.5", n, seed));
        t.add_row(
            k as f64,
            &[
                ("CUBE", Some(cube)),
                ("CLUSTER0.4", Some(cl04)),
                ("CLUSTER0.5", Some(cl05)),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("table3 nodes", &t);
}
