//! Figure 9: range query time per returned entry vs. number of entries
//! (TIGER 1 % area, CUBE 0.1 % volume, CLUSTER thin x-slices). The
//! paper plots PH/KD1/KD2 only — crit-bit range queries degenerate into
//! scans; pass `--with-cb true` to measure CB1 anyway and see exactly
//! that.
//!
//! Usage: `cargo run --release -p ph-bench --bin fig9_range_query --
//!         --dataset tiger|cube|cluster [--scale 0.02] [--queries 200]`
//!
//! Perf-baseline mode: `--k <K>` measures PH only on a CUBE dataset at
//! dimensionality `K` (one checkpoint, best of several repeats) and with
//! `--json <path>` records the metric into the flat perf-baseline JSON;
//! `--quick true` shrinks the default scale for CI smoke runs.

use measure::{Cli, Table};
use ph_bench::{
    load_timed, range_queries_timed, scaled_checkpoints, Cb1, Index, Kd1, Kd2, Ph, PhWorkload,
};

fn series<I: Index<K>, const K: usize>(
    data: &[[f64; K]],
    cps: &[usize],
    queries: &[([f64; K], [f64; K])],
    max_n: Option<usize>,
) -> Vec<Option<f64>> {
    cps.iter()
        .map(|&n| {
            if max_n.is_some_and(|m| n > m) {
                return None; // the paper stops kD-trees early on CLUSTER
            }
            let slice = &data[..n.min(data.len())];
            let (mut idx, _) = load_timed::<I, K>(slice);
            idx.finalize();
            let (per, total) = range_queries_timed(&idx, queries);
            std::hint::black_box(total);
            if per.is_nan() {
                None
            } else {
                Some(per)
            }
        })
        .collect()
}

struct Cfg {
    with_cb: bool,
    kd_cap: Option<usize>,
}

fn run<const K: usize>(
    title: &str,
    data: Vec<[f64; K]>,
    cps: Vec<usize>,
    queries: Vec<([f64; K], [f64; K])>,
    cfg: Cfg,
) {
    let ph = series::<Ph<K>, K>(&data, &cps, &queries, None);
    let kd1 = series::<Kd1<K>, K>(&data, &cps, &queries, cfg.kd_cap);
    let kd2 = series::<Kd2<K>, K>(&data, &cps, &queries, cfg.kd_cap);
    let cb1 = if cfg.with_cb {
        Some(series::<Cb1<K>, K>(&data, &cps, &queries, None))
    } else {
        None
    };
    let mut t = Table::new(title, "10^6 entries");
    for (i, &n) in cps.iter().enumerate() {
        let mut cells = vec![("PH", ph[i]), ("KD1", kd1[i]), ("KD2", kd2[i])];
        if let Some(cb) = &cb1 {
            cells.push(("CB1-scan", cb[i]));
        }
        t.add_row(n as f64 / 1e6, &cells);
    }
    print!("{}", t.render_text());
    ph_bench::write_csv(title, &t);
}

fn main() {
    let cli = Cli::from_env();
    ph_bench::maybe_install_counting_sink(&cli);
    let quick = cli.get_str("quick", "false") == "true";
    let scale = cli.get_f64("scale", if quick { 0.01 } else { 0.02 });
    let seed = cli.get_u64("seed", 42);
    let n_queries = cli.get_u64("queries", 200) as usize;
    let k = cli.get_u64("k", 0) as usize;
    if k != 0 {
        let json = cli.get_str("json", "");
        let json = (!json.is_empty()).then_some(json);
        let repeats = if quick { 3 } else { 5 };
        ph_bench::run_ph_only_k(
            PhWorkload::RangeQuery,
            k,
            scale,
            n_queries,
            repeats,
            seed,
            json.as_deref(),
        );
        return;
    }
    let with_cb = cli.get_str("with-cb", "false") == "true";
    let dataset = cli.get_str("dataset", "cube");
    match dataset.as_str() {
        "tiger" => {
            let cps = scaled_checkpoints(
                &[
                    1_000_000, 2_000_000, 5_000_000, 10_000_000, 15_000_000, 18_400_000,
                ],
                scale,
            );
            let data = datasets::dedup(datasets::tiger_like(*cps.last().unwrap(), seed));
            let lo = [datasets::TIGER_X.0, datasets::TIGER_Y.0];
            let hi = [datasets::TIGER_X.1, datasets::TIGER_Y.1];
            let queries = datasets::range_queries::<2>(n_queries, &lo, &hi, 0.01, seed);
            run::<2>(
                "fig9a range query µs/returned entry, 2D TIGER-like",
                data,
                cps,
                queries,
                Cfg {
                    with_cb,
                    kd_cap: None,
                },
            );
        }
        "cube" => {
            let cps = scaled_checkpoints(
                &[
                    1_000_000,
                    5_000_000,
                    10_000_000,
                    25_000_000,
                    50_000_000,
                    100_000_000,
                ],
                scale,
            );
            let data = datasets::cube::<3>(*cps.last().unwrap(), seed);
            let queries =
                datasets::range_queries::<3>(n_queries, &[0.0; 3], &[1.0; 3], 0.001, seed);
            run::<3>(
                "fig9b range query µs/returned entry, 3D CUBE",
                data,
                cps,
                queries,
                Cfg {
                    with_cb,
                    kd_cap: None,
                },
            );
        }
        "cluster" => {
            let cps = scaled_checkpoints(
                &[1_000_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000],
                scale,
            );
            // The paper measured kD-trees only up to 5·10⁶ here because
            // of their query times; mirror that cap (scaled).
            let kd_cap = Some(((5_000_000_f64 * scale) as usize).max(1000));
            let data = datasets::cluster::<3>(*cps.last().unwrap(), 0.5, seed);
            let queries = datasets::cluster_range_queries::<3>(n_queries, seed);
            run::<3>(
                "fig9c range query µs/returned entry, 3D CLUSTER",
                data,
                cps,
                queries,
                Cfg { with_cb, kd_cap },
            );
        }
        other => {
            eprintln!("unknown --dataset {other}; use tiger|cube|cluster");
            std::process::exit(2);
        }
    }
}
