//! Figure 11: insertion time per entry for varying k at n = 10⁷
//! (scaled) entries, CLUSTER datasets: PH-CL0.4, PH-CL0.5, KD2-CL0.5,
//! CB1-CL0.5, CB1-CL0.4.
//!
//! Usage: `cargo run --release -p ph-bench --bin fig11_insert_vs_k --
//!         [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, with_k, Cb1, Index, Kd2, Ph};

fn insert_us<I: Index<K>, const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let (_idx, per) = load_timed::<I, K>(&data);
    per
}

fn ph_us<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    insert_us::<Ph<K>, K>(name, n, seed)
}
fn kd2_us<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    insert_us::<Kd2<K>, K>(name, n, seed)
}
fn cb1_us<const K: usize>(name: &str, n: usize, seed: u64) -> f64 {
    insert_us::<Cb1<K>, K>(name, n, seed)
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let n = ((10_000_000_f64 * scale) as usize).max(10_000);
    let mut t = Table::new(
        &format!("fig11 insert µs/entry vs k, CLUSTER, n = {n}"),
        "k",
    );
    for k in [2usize, 3, 4, 5, 6, 8, 10] {
        t.add_row(
            k as f64,
            &[
                ("PH-CL0.4", Some(with_k!(k, ph_us("cluster0.4", n, seed)))),
                ("PH-CL0.5", Some(with_k!(k, ph_us("cluster0.5", n, seed)))),
                ("KD2-CL0.5", Some(with_k!(k, kd2_us("cluster0.5", n, seed)))),
                ("CB1-CL0.5", Some(with_k!(k, cb1_us("cluster0.5", n, seed)))),
                ("CB1-CL0.4", Some(with_k!(k, cb1_us("cluster0.4", n, seed)))),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("fig11 insert vs k cluster", &t);
}
