//! Parallel scaling of the sharded serving layer (`phshard`): window
//! query throughput vs thread count on the uniform 3-D CUBE workload,
//! plus verification that shard pruning never visits a shard whose
//! prefix box is outside the query box.
//!
//! Two scaling axes:
//! * **clients** — T independent client threads each issuing window
//!   queries against a shared [`ShardedTree`] (fan-out pool disabled);
//!   measures reader-reader scalability of the reader-writer cells.
//! * **fanout** — one client, pool of T workers; each query's matching
//!   shards are scanned in parallel; measures intra-query scaling on
//!   large windows.
//!
//! Writes `results/par_scaling.json` (throughput vs threads, pruning
//! stats, host core count — interpret speedups against that; a 1-core
//! container cannot show parallel speedup) and a CSV table via the
//! usual results/ pipeline.
//!
//! Usage: `cargo run --release -p ph-bench --bin par_scaling --
//!         [--quick true] [--n 200000] [--queries 2000] [--shards 8]`

use measure::{Cli, Table};
use phshard::ShardedTree;
use phtree::key::point_to_key;
use std::sync::Arc;
use std::time::Instant;

type Key = [u64; 3];

struct Workload {
    items: Vec<(Key, u32)>,
    /// Narrow windows (~1% volume) for the client-scaling axis.
    narrow: Vec<(Key, Key)>,
    /// Wide windows (~15% volume) for the fan-out axis.
    wide: Vec<(Key, Key)>,
}

fn build_workload(n: usize, n_queries: usize, seed: u64) -> Workload {
    let pts = datasets::cube::<3>(n, seed);
    let items = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (point_to_key(p), i as u32))
        .collect();
    let to_keys = |qs: Vec<([f64; 3], [f64; 3])>| {
        qs.into_iter()
            .map(|(lo, hi)| (point_to_key(&lo), point_to_key(&hi)))
            .collect::<Vec<_>>()
    };
    let narrow = to_keys(datasets::range_queries::<3>(
        n_queries,
        &[0.0; 3],
        &[1.0; 3],
        0.01,
        seed ^ 0x51_c0de,
    ));
    let wide = to_keys(datasets::range_queries::<3>(
        n_queries.div_ceil(4),
        &[0.0; 3],
        &[1.0; 3],
        0.15,
        seed ^ 0x71de,
    ));
    Workload {
        items,
        narrow,
        wide,
    }
}

/// Queries/second with `clients` threads sharing the work evenly.
fn run_clients(tree: &Arc<ShardedTree<u32, 3>>, queries: &[(Key, Key)], clients: usize) -> f64 {
    let start = Instant::now();
    let total: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let tree = Arc::clone(tree);
                let mine: Vec<(Key, Key)> = queries
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % clients == c)
                    .map(|(_, q)| *q)
                    .collect();
                s.spawn(move || {
                    let mut hits = 0usize;
                    for (lo, hi) in &mine {
                        hits += tree.query(lo, hi).len();
                    }
                    hits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(total);
    queries.len() as f64 / secs
}

/// Queries/second from one client on a tree with its own fan-out pool.
fn run_fanout(tree: &ShardedTree<u32, 3>, queries: &[(Key, Key)]) -> f64 {
    let start = Instant::now();
    let mut hits = 0usize;
    for (lo, hi) in queries {
        hits += tree.query(lo, hi).len();
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(hits);
    queries.len() as f64 / secs
}

/// Checks the acceptance invariant on every query: the router's shard
/// selection equals exact box intersection — pruned shards are always
/// disjoint from the query (no false pruning positives, no misses).
fn verify_pruning(
    tree: &ShardedTree<u32, 3>,
    queries: &[(Key, Key)],
    shards: usize,
) -> (f64, usize) {
    let mut matched_total = 0usize;
    let mut disagreements = 0usize;
    for (lo, hi) in queries {
        let matching = tree.router().matching_shards(lo, hi);
        matched_total += matching.len();
        for s in 0..shards {
            let (bmin, bmax) = tree.router().shard_box(s);
            let intersects = (0..3).all(|d| bmin[d] <= hi[d] && bmax[d] >= lo[d]);
            if matching.contains(&s) != intersects {
                disagreements += 1;
            }
        }
    }
    (matched_total as f64 / queries.len() as f64, disagreements)
}

fn json_series(rows: &[(usize, f64)]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|(t, qps)| format!("    {{\"threads\": {t}, \"queries_per_sec\": {qps:.1}}}"))
        .collect();
    format!("[\n{}\n  ]", entries.join(",\n"))
}

fn main() {
    let cli = Cli::from_env();
    let quick = cli.get_str("quick", "false") == "true";
    let n = cli.get_u64("n", if quick { 20_000 } else { 200_000 }) as usize;
    let n_queries = cli.get_u64("queries", if quick { 120 } else { 1_500 }) as usize;
    let shards = cli.get_u64("shards", 8) as usize;
    let seed = cli.get_u64("seed", 42);
    let thread_counts = [1usize, 2, 4, 8];
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    eprintln!(
        "par_scaling: n={n} queries={} shards={shards} cores={cores}{}",
        n_queries,
        if quick { " (quick)" } else { "" }
    );
    let w = build_workload(n, n_queries, seed);

    // Shared tree for client scaling; pool disabled so the only
    // parallelism is the clients'.
    let shared: Arc<ShardedTree<u32, 3>> = Arc::new(ShardedTree::with_threads(shards, 0));
    let (_, load_us) = measure::time_us(|| shared.bulk_load(w.items.clone()));

    let client_rows: Vec<(usize, f64)> = thread_counts
        .iter()
        .map(|&t| (t, run_clients(&shared, &w.narrow, t)))
        .collect();

    let fanout_rows: Vec<(usize, f64)> = thread_counts
        .iter()
        .map(|&t| {
            let tree: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, t);
            tree.bulk_load(w.items.clone());
            (t, run_fanout(&tree, &w.wide))
        })
        .collect();

    let (avg_matched, disagreements) = verify_pruning(&shared, &w.narrow, shards);
    assert_eq!(
        disagreements, 0,
        "router pruning disagrees with shard-box geometry"
    );

    let speedup = |rows: &[(usize, f64)], t: usize| {
        rows.iter().find(|r| r.0 == t).map(|r| r.1).unwrap_or(0.0)
            / rows.first().map(|r| r.1).unwrap_or(1.0)
    };

    let mut table = Table::new("par scaling window query throughput", "threads");
    for (i, &t) in thread_counts.iter().enumerate() {
        table.add_row(
            t as f64,
            &[
                ("clients-qps", Some(client_rows[i].1)),
                ("fanout-qps", Some(fanout_rows[i].1)),
            ],
        );
    }
    print!("{}", table.render_text());
    println!(
        "clients speedup @4t: {:.2}x   fanout speedup @4t: {:.2}x   (host cores: {cores})",
        speedup(&client_rows, 4),
        speedup(&fanout_rows, 4)
    );
    println!(
        "pruning: avg {avg_matched:.2}/{shards} shards matched per narrow query, 0 geometry disagreements"
    );
    ph_bench::write_csv("par scaling window query throughput", &table);

    let json = format!(
        "{{\n  \"workload\": {{\"n\": {n}, \"queries\": {nq}, \"shards\": {shards}, \"dims\": 3, \"dataset\": \"uniform cube\", \"seed\": {seed}, \"bulk_load_us\": {load_us:.0}}},\n  \"host_cores\": {cores},\n  \"client_scaling\": {client},\n  \"fanout_scaling\": {fanout},\n  \"speedup_at_4_threads\": {{\"clients\": {s4c:.3}, \"fanout\": {s4f:.3}}},\n  \"pruning\": {{\"avg_shards_matched\": {avg_matched:.3}, \"geometry_disagreements\": {disagreements}}}\n}}\n",
        nq = n_queries,
        client = json_series(&client_rows),
        fanout = json_series(&fanout_rows),
        s4c = speedup(&client_rows, 4),
        s4f = speedup(&fanout_rows, 4),
    );
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("note: cannot create results/: {e}");
    } else if let Err(e) = std::fs::write("results/par_scaling.json", &json) {
        eprintln!("note: cannot write results/par_scaling.json: {e}");
    } else {
        eprintln!("wrote results/par_scaling.json");
    }
}
