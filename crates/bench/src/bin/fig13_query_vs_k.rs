//! Figure 13: query times for varying k at n = 10⁷ (scaled) entries.
//!
//! * part a — CLUSTER point queries: PH-CL0.4, PH-CL0.5, KD2-CL0.5,
//!   CB1-CL0.5.
//! * part b — CUBE point queries: PH, KD2, CB1, CB2.
//! * part c — range queries: PH-CL0.4, PH-CL0.5, PH-CU, KD2-CU (the
//!   paper omits KD-CLUSTER times — 500–1000 µs/entry off the chart;
//!   pass `--with-kd-cluster true` to print them anyway).
//!
//! Usage: `cargo run --release -p ph-bench --bin fig13_query_vs_k --
//!         --part a|b|c [--scale 0.02] [--queries N]`

use measure::{Cli, Table};
use ph_bench::{
    load_timed, point_queries_timed, range_queries_timed, with_k, Cb1, Cb2, Index, Kd2, Ph,
};

fn point_us<I: Index<K>, const K: usize>(name: &str, n: usize, n_q: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let (mut idx, _) = load_timed::<I, K>(&data);
    idx.finalize();
    let queries = datasets::point_query_mix(&data, n_q, &[0.0; K], &[1.0; K], seed);
    point_queries_timed(&idx, &queries)
}

fn range_us<I: Index<K>, const K: usize>(name: &str, n: usize, n_q: usize, seed: u64) -> f64 {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let (mut idx, _) = load_timed::<I, K>(&data);
    idx.finalize();
    let queries = if name.starts_with("cluster") {
        datasets::cluster_range_queries::<K>(n_q, seed)
    } else {
        datasets::range_queries::<K>(n_q, &[0.0; K], &[1.0; K], 0.001, seed)
    };
    let (per, _) = range_queries_timed(&idx, &queries);
    per
}

fn p_ph<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    point_us::<Ph<K>, K>(name, n, q, s)
}
fn p_kd2<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    point_us::<Kd2<K>, K>(name, n, q, s)
}
fn p_cb1<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    point_us::<Cb1<K>, K>(name, n, q, s)
}
fn p_cb2<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    point_us::<Cb2<K>, K>(name, n, q, s)
}
fn r_ph<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    range_us::<Ph<K>, K>(name, n, q, s)
}
fn r_kd2<const K: usize>(name: &str, n: usize, q: usize, s: u64) -> f64 {
    range_us::<Kd2<K>, K>(name, n, q, s)
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let part = cli.get_str("part", "a");
    let n = ((10_000_000_f64 * scale) as usize).max(10_000);
    let n_q = cli.get_u64("queries", ((1_000_000_f64 * scale) as u64).max(20_000)) as usize;
    let with_kd_cluster = cli.get_str("with-kd-cluster", "false") == "true";
    match part.as_str() {
        "a" => {
            let mut t = Table::new(&format!("fig13a CLUSTER point query µs vs k, n = {n}"), "k");
            for k in [2usize, 3, 5, 8, 10, 12, 15] {
                t.add_row(
                    k as f64,
                    &[
                        (
                            "PH-CL0.4",
                            Some(with_k!(k, p_ph("cluster0.4", n, n_q, seed))),
                        ),
                        (
                            "PH-CL0.5",
                            Some(with_k!(k, p_ph("cluster0.5", n, n_q, seed))),
                        ),
                        (
                            "KD2-CL0.5",
                            Some(with_k!(k, p_kd2("cluster0.5", n, n_q, seed))),
                        ),
                        (
                            "CB1-CL0.5",
                            Some(with_k!(k, p_cb1("cluster0.5", n, n_q, seed))),
                        ),
                    ],
                );
            }
            print!("{}", t.render_text());
            ph_bench::write_csv("fig13a cluster point query vs k", &t);
        }
        "b" => {
            let mut t = Table::new(&format!("fig13b CUBE point query µs vs k, n = {n}"), "k");
            for k in [2usize, 3, 5, 8, 10, 12, 15] {
                t.add_row(
                    k as f64,
                    &[
                        ("PH-CU", Some(with_k!(k, p_ph("cube", n, n_q, seed)))),
                        ("KD2-CU", Some(with_k!(k, p_kd2("cube", n, n_q, seed)))),
                        ("CB1-CU", Some(with_k!(k, p_cb1("cube", n, n_q, seed)))),
                        ("CB2-CU", Some(with_k!(k, p_cb2("cube", n, n_q, seed)))),
                    ],
                );
            }
            print!("{}", t.render_text());
            ph_bench::write_csv("fig13b cube point query vs k", &t);
        }
        "c" => {
            let n_rq = cli.get_u64("queries", 100) as usize;
            let mut t = Table::new(
                &format!("fig13c range query µs/returned entry vs k, n = {n}"),
                "k",
            );
            for k in [2usize, 3, 4, 5, 6, 8, 10] {
                let mut cells = vec![
                    (
                        "PH-CL0.4",
                        Some(with_k!(k, r_ph("cluster0.4", n, n_rq, seed))),
                    ),
                    (
                        "PH-CL0.5",
                        Some(with_k!(k, r_ph("cluster0.5", n, n_rq, seed))),
                    ),
                    ("PH-CU", Some(with_k!(k, r_ph("cube", n, n_rq, seed)))),
                    ("KD2-CU", Some(with_k!(k, r_kd2("cube", n, n_rq, seed)))),
                ];
                if with_kd_cluster {
                    cells.push((
                        "KD2-CL0.5",
                        Some(with_k!(k, r_kd2("cluster0.5", n, n_rq, seed))),
                    ));
                }
                t.add_row(k as f64, &cells);
            }
            print!("{}", t.render_text());
            ph_bench::write_csv("fig13c range query vs k", &t);
        }
        other => {
            eprintln!("unknown --part {other}; use a|b|c");
            std::process::exit(2);
        }
    }
}
