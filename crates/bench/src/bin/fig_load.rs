//! Bulk loading vs. sequential insertion (the O(n) bottom-up builder).
//!
//! Usage: `cargo run --release -p ph-bench --bin fig_load --
//!         [--k 8] [--scale 0.02] [--seed 42] [--quick true]
//!         [--json BENCH_phtree.json]`
//!
//! For each dimensionality (one `--k`, or the 3/8/20 sweep by default)
//! the binary loads the same CUBE dataset twice — once through
//! `PhTree::bulk_load`, once through per-key `insert` — and reports µs
//! per entry for both, plus allocation counts from a counting global
//! allocator. With `--json <path>` both timings are recorded into the
//! flat perf-baseline JSON as `fig_load_bulk_cube_k<k>` /
//! `fig_load_seq_cube_k<k>`.
//!
//! Two acceptance checks are hard-asserted (the process aborts on
//! regression):
//!
//! * at `k = 8` with n ≥ 10 000, bulk loading must be at least 2×
//!   faster than sequential insertion;
//! * bulk loading must stay O(1) allocations per entry, amortised.

use measure::alloc_track::{snapshot, CountingAlloc};
use measure::{Cli, Table};
use phtree::key::point_to_key;
use phtree::PhTree;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Minimum wall-clock span of one timed sample (µs); build runs are
/// repeated until a sample reaches it.
const MIN_SAMPLE_US: f64 = 50_000.0;

/// Best-of-`repeats` µs-per-entry for a whole-tree build, each sample
/// calibrated to span at least [`MIN_SAMPLE_US`].
fn best_us_per_entry(n: usize, repeats: usize, mut build: impl FnMut() -> usize) -> f64 {
    let (len, once) = measure::time_us(&mut build);
    std::hint::black_box(len);
    let iters = ((MIN_SAMPLE_US / once.max(1.0)).ceil() as usize).clamp(1, 100_000);
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let (total, us) = measure::time_us(|| {
            let mut total = 0usize;
            for _ in 0..iters {
                total += build();
            }
            total
        });
        std::hint::black_box(total);
        best = best.min(us / (iters * n) as f64);
    }
    best
}

struct LoadResult {
    bulk_us: f64,
    seq_us: f64,
    bulk_allocs_per_entry: f64,
    seq_allocs_per_entry: f64,
    n: usize,
}

fn run_k<const K: usize>(n: usize, repeats: usize, seed: u64) -> LoadResult {
    let items: Vec<([u64; K], ())> = datasets::cube::<K>(n, seed)
        .iter()
        .map(|p| (point_to_key(p), ()))
        .collect();
    // The bulk path consumes its input; the clone is inside the timed
    // region (a flat memcpy — noise next to the Z-order sort, and it
    // biases *against* the bulk loader, so the 2× assertion stays
    // conservative).
    let bulk_us = best_us_per_entry(n, repeats, || {
        std::hint::black_box(PhTree::bulk_load(items.clone())).len()
    });
    let seq_us = best_us_per_entry(n, repeats, || {
        let mut t: PhTree<(), K> = PhTree::new();
        for &(k, v) in &items {
            t.insert(k, v);
        }
        std::hint::black_box(t).len()
    });
    // Allocation rates from one untimed build each.
    let a0 = snapshot();
    let bulk = PhTree::bulk_load(items.clone());
    let a1 = snapshot();
    drop(bulk);
    let mut seq: PhTree<(), K> = PhTree::new();
    let a2 = snapshot();
    for &(k, v) in &items {
        seq.insert(k, v);
    }
    let a3 = snapshot();
    drop(seq);
    LoadResult {
        bulk_us,
        seq_us,
        // The clone of `items` is one allocation; exclude it.
        bulk_allocs_per_entry: (a1.allocs_since(&a0) - 1) as f64 / n as f64,
        seq_allocs_per_entry: a3.allocs_since(&a2) as f64 / n as f64,
        n,
    }
}

fn main() {
    let cli = Cli::from_env();
    ph_bench::maybe_install_counting_sink(&cli);
    let quick = cli.get_str("quick", "false") == "true";
    let scale = cli.get_f64("scale", if quick { 0.01 } else { 0.02 });
    let seed = cli.get_u64("seed", 42);
    let repeats = if quick { 3 } else { 5 };
    let n = ((1_000_000_f64 * scale) as usize).max(1000);
    let json = cli.get_str("json", "");
    let json = (!json.is_empty()).then_some(json);
    let k_arg = cli.get_u64("k", 0) as usize;
    let ks: Vec<usize> = if k_arg != 0 {
        vec![k_arg]
    } else {
        vec![3, 8, 20]
    };

    let mut table = Table::new("fig_load bulk vs sequential load, CUBE", "k");
    for &k in &ks {
        let r = ph_bench::with_k!(k, run_k(n, repeats, seed));
        let speedup = r.seq_us / r.bulk_us;
        println!(
            "fig_load k={k}: n={n} bulk {:.4} µs/e ({:.2} allocs/e), \
             seq {:.4} µs/e ({:.2} allocs/e), speedup {speedup:.2}x",
            r.bulk_us, r.bulk_allocs_per_entry, r.seq_us, r.seq_allocs_per_entry
        );
        table.add_row(
            k as f64,
            &[
                ("bulk µs/e", Some(r.bulk_us)),
                ("seq µs/e", Some(r.seq_us)),
                ("speedup", Some(speedup)),
                ("bulk allocs/e", Some(r.bulk_allocs_per_entry)),
                ("seq allocs/e", Some(r.seq_allocs_per_entry)),
            ],
        );
        if let Some(path) = json.as_deref() {
            for (name, v) in [
                (format!("fig_load_bulk_cube_k{k}"), r.bulk_us),
                (format!("fig_load_seq_cube_k{k}"), r.seq_us),
            ] {
                match ph_bench::perfjson::record(path, &name, v) {
                    Ok(()) => eprintln!("json: {path} <- {name}"),
                    Err(e) => eprintln!("note: cannot update {path}: {e}"),
                }
            }
        }
        // Acceptance: O(n) bottom-up build beats n top-down inserts by
        // at least 2x at the reference point (paper-independent floor;
        // observed speedups are well above it).
        if k == 8 && r.n >= 10_000 {
            assert!(
                speedup >= 2.0,
                "bulk load regression: only {speedup:.2}x faster than sequential at k=8, n={}",
                r.n
            );
        }
        // Acceptance: amortised O(1) allocations per bulk-loaded entry.
        assert!(
            r.bulk_allocs_per_entry < 8.0,
            "bulk load allocates {:.2} times per entry at k={k} — not O(1) amortised",
            r.bulk_allocs_per_entry
        );
    }
    print!("{}", table.render_text());
    ph_bench::write_csv("fig_load bulk vs sequential load", &table);
}
