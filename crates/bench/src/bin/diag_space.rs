//! Diagnostic: PH-tree space breakdown per dataset (not a paper figure).
use measure::Cli;
use ph_bench::{load_timed, Index, Ph};

fn main() {
    let cli = Cli::from_env();
    let n = cli.get_u64("n", 1_000_000) as usize;
    println!(
        "size_of Node<(),2> = {}",
        std::mem::size_of::<phtree::PhTree<(), 2>>()
    );
    {
        let (name, data) = ("tiger", datasets::dedup(datasets::tiger_like(n, 42)));
        let (mut idx, _) = load_timed::<Ph<2>, 2>(&data);
        idx.finalize();
        let s = idx.tree().stats();
        println!("{name}: n={} nodes={} e/n={:.2} hc={} lhc={} depth={} bytes/e={:.1} bit_bytes/e={:.1} allocs={}",
            s.entries, s.nodes, s.entries_per_node(), s.hc_nodes, s.lhc_nodes, s.max_depth,
            s.bytes_per_entry(), s.bit_bytes as f64 / s.entries as f64, s.allocations);
    }
    for (name, data) in [
        ("cube3", datasets::cube::<3>(n, 42)),
        ("cluster0.5_3", datasets::cluster::<3>(n, 0.5, 42)),
    ] {
        let (mut idx, _) = load_timed::<Ph<3>, 3>(&data);
        idx.finalize();
        let s = idx.tree().stats();
        println!("{name}: n={} nodes={} e/n={:.2} hc={} lhc={} depth={} bytes/e={:.1} bit_bytes/e={:.1} allocs={}",
            s.entries, s.nodes, s.entries_per_node(), s.hc_nodes, s.lhc_nodes, s.max_depth,
            s.bytes_per_entry(), s.bit_bytes as f64 / s.entries as f64, s.allocations);
    }
}
