//! Ablation: the adaptive HC/LHC node representation (Sect. 3.2)
//! against trees forced to all-LHC or all-HC nodes.
//!
//! Reports bytes/entry, insert µs/entry and point-query µs for CUBE and
//! CLUSTER0.4 at several k. Expected shape: ForceHc explodes in space
//! as k grows (2^k slot arrays), ForceLhc loses query speed on dense
//! low-k nodes, Adaptive tracks the better of the two.
//!
//! Usage: `cargo run --release -p ph-bench --bin ablation_hclhc --
//!         [--scale 0.05] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{point_queries_timed, with_k, Index, Ph};
use phtree::ReprMode;

struct Cell {
    bpe: f64,
    ins: f64,
    query: f64,
}

fn run_mode<const K: usize>(name: &str, mode: ReprMode, n: usize, n_q: usize, seed: u64) -> Cell {
    let data = ph_bench::make_dataset::<K>(name, n, seed);
    let mut idx = Ph::<K>::with_mode(mode);
    let (_, ins) = measure::time_us_per(data.len(), || {
        for p in &data {
            idx.insert(p);
        }
    });
    idx.finalize();
    let bpe = idx.memory_bytes() as f64 / idx.len() as f64;
    let queries = datasets::point_query_mix(&data, n_q, &[0.0; K], &[1.0; K], seed);
    let query = point_queries_timed(&idx, &queries);
    Cell { bpe, ins, query }
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.05);
    let seed = cli.get_u64("seed", 42);
    let n = ((1_000_000_f64 * scale) as usize).max(10_000);
    let n_q = cli.get_u64("queries", 50_000) as usize;
    for dataset in ["cube", "cluster0.4"] {
        let mut ts = Table::new(
            &format!("ablation HC/LHC space B/entry, {dataset}, n = {n}"),
            "k",
        );
        let mut ti = Table::new(
            &format!("ablation HC/LHC insert µs/entry, {dataset}, n = {n}"),
            "k",
        );
        let mut tq = Table::new(
            &format!("ablation HC/LHC point query µs, {dataset}, n = {n}"),
            "k",
        );
        for k in [2usize, 3, 5, 8, 12] {
            let adaptive = with_k!(k, run_mode(dataset, ReprMode::Adaptive, n, n_q, seed));
            let lhc = with_k!(k, run_mode(dataset, ReprMode::ForceLhc, n, n_q, seed));
            // ForceHc materialises 2^k slots per node: only run for small k.
            let hc = if k <= 8 {
                Some(with_k!(
                    k,
                    run_mode(dataset, ReprMode::ForceHc, n, n_q, seed)
                ))
            } else {
                None
            };
            ts.add_row(
                k as f64,
                &[
                    ("Adaptive", Some(adaptive.bpe)),
                    ("ForceLhc", Some(lhc.bpe)),
                    ("ForceHc", hc.as_ref().map(|c| c.bpe)),
                ],
            );
            ti.add_row(
                k as f64,
                &[
                    ("Adaptive", Some(adaptive.ins)),
                    ("ForceLhc", Some(lhc.ins)),
                    ("ForceHc", hc.as_ref().map(|c| c.ins)),
                ],
            );
            tq.add_row(
                k as f64,
                &[
                    ("Adaptive", Some(adaptive.query)),
                    ("ForceLhc", Some(lhc.query)),
                    ("ForceHc", hc.as_ref().map(|c| c.query)),
                ],
            );
        }
        print!("{}", ts.render_text());
        print!("{}", ti.render_text());
        print!("{}", tq.render_text());
        ph_bench::write_csv(&format!("ablation hclhc space {dataset}"), &ts);
        ph_bench::write_csv(&format!("ablation hclhc insert {dataset}"), &ti);
        ph_bench::write_csv(&format!("ablation hclhc query {dataset}"), &tq);
    }
}
