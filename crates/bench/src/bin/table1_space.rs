//! Table 1: required bytes per entry for n ≥ 5 000 000 entries (scaled),
//! across TIGER-like (2-D), CUBE (3-D) and CLUSTER (3-D), for all five
//! index structures plus the naive `double[]` / `object[]` yardsticks.
//!
//! Usage: `cargo run --release -p ph-bench --bin table1_space --
//!         [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, Cb1, Cb2, Index, Kd1, Kd2, Ph};

fn bytes_per_entry<I: Index<K>, const K: usize>(data: &[[f64; K]]) -> f64 {
    let (mut idx, _) = load_timed::<I, K>(data);
    idx.finalize();
    idx.memory_bytes() as f64 / idx.len() as f64
}

fn row<const K: usize>(data: &[[f64; K]]) -> Vec<(&'static str, Option<f64>)> {
    let n = data.len() as f64;
    let mut d_arr = kdtree::naive::PlainArray::<K>::new();
    let mut o_arr = kdtree::naive::ObjectArray::<K>::new();
    for p in data {
        d_arr.push(p);
        o_arr.push(p);
    }
    vec![
        ("PH", Some(bytes_per_entry::<Ph<K>, K>(data))),
        ("KD1", Some(bytes_per_entry::<Kd1<K>, K>(data))),
        ("KD2", Some(bytes_per_entry::<Kd2<K>, K>(data))),
        ("CB1", Some(bytes_per_entry::<Cb1<K>, K>(data))),
        ("CB2", Some(bytes_per_entry::<Cb2<K>, K>(data))),
        ("double[]", Some(d_arr.memory_bytes() as f64 / n)),
        ("object[]", Some(o_arr.memory_bytes() as f64 / n)),
    ]
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let n = ((5_000_000_f64 * scale) as usize).max(10_000);
    let mut t = Table::new(&format!("table1 bytes per entry, n = {n}"), "dataset#");
    let tiger = datasets::dedup(datasets::tiger_like(n, seed));
    t.add_row(1.0, &row::<2>(&tiger));
    drop(tiger);
    let cube = datasets::cube::<3>(n, seed);
    t.add_row(2.0, &row::<3>(&cube));
    drop(cube);
    let cluster = datasets::cluster::<3>(n, 0.5, seed);
    t.add_row(3.0, &row::<3>(&cluster));
    println!("rows: 1 = TIGER-like (2D), 2 = CUBE (3D), 3 = CLUSTER0.5 (3D)");
    print!("{}", t.render_text());
    ph_bench::write_csv("table1 space", &t);
}
