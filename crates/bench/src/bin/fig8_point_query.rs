//! Figure 8: point query time vs. number of entries, for the
//! TIGER/Line (a), CUBE (b) and CLUSTER (c) datasets. Queries have a
//! 50 % chance of hitting an existing point (Sect. 4.3.2).
//!
//! Usage: `cargo run --release -p ph-bench --bin fig8_point_query --
//!         --dataset tiger|cube|cluster [--scale 0.02] [--queries N]`
//!
//! Perf-baseline mode: `--k <K>` measures PH only on a CUBE dataset at
//! dimensionality `K` (one checkpoint, best of several repeats) and with
//! `--json <path>` records the metric into the flat perf-baseline JSON;
//! `--quick true` shrinks the default scale for CI smoke runs.

use measure::{Cli, Table};
use ph_bench::{
    load_timed, point_queries_timed, scaled_checkpoints, Cb1, Cb2, Index, Kd1, Kd2, Ph, PhWorkload,
};

fn series<I: Index<K>, const K: usize>(
    data: &[[f64; K]],
    cps: &[usize],
    n_queries: usize,
    lo: &[f64; K],
    hi: &[f64; K],
    seed: u64,
) -> Vec<Option<f64>> {
    cps.iter()
        .map(|&n| {
            let slice = &data[..n.min(data.len())];
            let (mut idx, _) = load_timed::<I, K>(slice);
            idx.finalize();
            let queries = datasets::point_query_mix(slice, n_queries, lo, hi, seed);
            Some(point_queries_timed(&idx, &queries))
        })
        .collect()
}

fn run<const K: usize>(
    title: &str,
    data: Vec<[f64; K]>,
    cps: Vec<usize>,
    n_queries: usize,
    lo: [f64; K],
    hi: [f64; K],
    seed: u64,
) {
    let ph = series::<Ph<K>, K>(&data, &cps, n_queries, &lo, &hi, seed);
    let kd1 = series::<Kd1<K>, K>(&data, &cps, n_queries, &lo, &hi, seed);
    let kd2 = series::<Kd2<K>, K>(&data, &cps, n_queries, &lo, &hi, seed);
    let cb1 = series::<Cb1<K>, K>(&data, &cps, n_queries, &lo, &hi, seed);
    let cb2 = series::<Cb2<K>, K>(&data, &cps, n_queries, &lo, &hi, seed);
    let mut t = Table::new(title, "10^6 entries");
    for (i, &n) in cps.iter().enumerate() {
        t.add_row(
            n as f64 / 1e6,
            &[
                ("PH", ph[i]),
                ("KD1", kd1[i]),
                ("KD2", kd2[i]),
                ("CB1", cb1[i]),
                ("CB2", cb2[i]),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv(title, &t);
}

fn main() {
    let cli = Cli::from_env();
    ph_bench::maybe_install_counting_sink(&cli);
    let quick = cli.get_str("quick", "false") == "true";
    let scale = cli.get_f64("scale", if quick { 0.01 } else { 0.02 });
    let seed = cli.get_u64("seed", 42);
    let n_queries = cli.get_u64("queries", ((1_000_000_f64 * scale) as u64).max(20_000)) as usize;
    let k = cli.get_u64("k", 0) as usize;
    if k != 0 {
        let json = cli.get_str("json", "");
        let json = (!json.is_empty()).then_some(json);
        let repeats = if quick { 3 } else { 5 };
        ph_bench::run_ph_only_k(
            PhWorkload::PointQuery,
            k,
            scale,
            n_queries,
            repeats,
            seed,
            json.as_deref(),
        );
        return;
    }
    let dataset = cli.get_str("dataset", "cube");
    match dataset.as_str() {
        "tiger" => {
            let cps = scaled_checkpoints(
                &[
                    1_000_000, 2_000_000, 5_000_000, 10_000_000, 15_000_000, 18_400_000,
                ],
                scale,
            );
            let data = datasets::dedup(datasets::tiger_like(*cps.last().unwrap(), seed));
            run::<2>(
                "fig8a point query µs, 2D TIGER-like",
                data,
                cps,
                n_queries,
                [datasets::TIGER_X.0, datasets::TIGER_Y.0],
                [datasets::TIGER_X.1, datasets::TIGER_Y.1],
                seed,
            );
        }
        "cube" => {
            let cps = scaled_checkpoints(
                &[
                    1_000_000,
                    5_000_000,
                    10_000_000,
                    25_000_000,
                    50_000_000,
                    100_000_000,
                ],
                scale,
            );
            let data = datasets::cube::<3>(*cps.last().unwrap(), seed);
            run::<3>(
                "fig8b point query µs, 3D CUBE",
                data,
                cps,
                n_queries,
                [0.0; 3],
                [1.0; 3],
                seed,
            );
        }
        "cluster" => {
            let cps = scaled_checkpoints(
                &[1_000_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000],
                scale,
            );
            let data = datasets::cluster::<3>(*cps.last().unwrap(), 0.5, seed);
            run::<3>(
                "fig8c point query µs, 3D CLUSTER",
                data,
                cps,
                n_queries,
                [0.0; 3],
                [1.0; 3],
                seed,
            );
        }
        other => {
            eprintln!("unknown --dataset {other}; use tiger|cube|cluster");
            std::process::exit(2);
        }
    }
}
