//! Figure 15: bytes per entry vs. k at n = 10⁷ (scaled) entries for the
//! CUBE dataset: PH, KD1, CB1, CB2, double[], object[].
//!
//! Usage: `cargo run --release -p ph-bench --bin fig15_space_vs_k_cube --
//!         [--scale 0.02] [--seed 42]`

use measure::{Cli, Table};
use ph_bench::{load_timed, with_k, Cb1, Cb2, Index, Kd1, Ph};

fn bpe<I: Index<K>, const K: usize>(n: usize, seed: u64) -> f64 {
    let data = datasets::cube::<K>(n, seed);
    let (mut idx, _) = load_timed::<I, K>(&data);
    idx.finalize();
    idx.memory_bytes() as f64 / idx.len() as f64
}

fn ph_bpe<const K: usize>(n: usize, seed: u64) -> f64 {
    bpe::<Ph<K>, K>(n, seed)
}
fn kd1_bpe<const K: usize>(n: usize, seed: u64) -> f64 {
    bpe::<Kd1<K>, K>(n, seed)
}
fn cb1_bpe<const K: usize>(n: usize, seed: u64) -> f64 {
    bpe::<Cb1<K>, K>(n, seed)
}
fn cb2_bpe<const K: usize>(n: usize, seed: u64) -> f64 {
    bpe::<Cb2<K>, K>(n, seed)
}

fn main() {
    let cli = Cli::from_env();
    let scale = cli.get_f64("scale", 0.02);
    let seed = cli.get_u64("seed", 42);
    let n = ((10_000_000_f64 * scale) as usize).max(10_000);
    let mut t = Table::new(&format!("fig15 bytes per entry vs k, CUBE, n = {n}"), "k");
    for k in [2usize, 3, 4, 5, 6, 8, 10, 12, 15] {
        t.add_row(
            k as f64,
            &[
                ("PH-CU", Some(with_k!(k, ph_bpe(n, seed)))),
                ("KD1-CU", Some(with_k!(k, kd1_bpe(n, seed)))),
                ("CB1", Some(with_k!(k, cb1_bpe(n, seed)))),
                ("CB2", Some(with_k!(k, cb2_bpe(n, seed)))),
                ("double[]", Some((k * 8) as f64)),
                ("object[]", Some((k * 8 + 16 + 4) as f64)),
            ],
        );
    }
    print!("{}", t.render_text());
    ph_bench::write_csv("fig15 space vs k cube", &t);
}
