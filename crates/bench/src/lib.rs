//! Shared harness for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! PH-tree paper; this library supplies the common pieces: a uniform
//! [`Index`] adapter over all five structures (PH, KD1, KD2, CB1, CB2),
//! dataset construction by name, and the sweep runners that time
//! loading, point queries, range queries and unloading the way the
//! paper's figures report them.
//!
//! All binaries accept:
//!
//! * `--scale <f>` — multiplies every entry count (default 0.02; use
//!   `--scale 1` for the paper's full sizes if you have the RAM/time).
//! * `--seed <u64>` — RNG seed (default 42).
//! * `--queries <n>` — query count override where applicable.

#![warn(missing_docs)]

use phtree::key::point_to_key;
use phtree::{PhTreeF64, ReprMode};

/// Uniform adapter over every benchmarked structure. Values are `()` —
/// like the paper, the point itself is the data.
pub trait Index<const K: usize> {
    /// Display name used in tables ("PH", "KD1", …).
    const NAME: &'static str;

    /// Creates an empty index.
    fn new() -> Self;
    /// Inserts a point.
    fn insert(&mut self, p: &[f64; K]);
    /// Point query.
    fn get(&self, p: &[f64; K]) -> bool;
    /// Removes a point; true if it was present.
    fn remove(&mut self, p: &[f64; K]) -> bool;
    /// Counts entries in the window (forces full result enumeration).
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize;
    /// Number of stored points.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Exact structural heap bytes.
    fn memory_bytes(&self) -> usize;
    /// Post-load compaction (the paper's `System.gc()` analogue).
    fn finalize(&mut self) {}
}

/// The PH-tree under test.
pub struct Ph<const K: usize> {
    tree: PhTreeF64<(), K>,
}

impl<const K: usize> Ph<K> {
    /// Access to the wrapped tree (node statistics etc.).
    pub fn tree(&self) -> &PhTreeF64<(), K> {
        &self.tree
    }

    /// Creates a PH index with an explicit representation mode (for the
    /// HC/LHC ablation).
    pub fn with_mode(mode: ReprMode) -> Self {
        Ph {
            tree: PhTreeF64::with_mode(mode),
        }
    }
}

impl<const K: usize> Index<K> for Ph<K> {
    const NAME: &'static str = "PH";

    fn new() -> Self {
        Ph {
            tree: PhTreeF64::new(),
        }
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.tree.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.tree.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.tree.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        self.tree.query(min, max).count()
    }
    fn len(&self) -> usize {
        self.tree.len()
    }
    fn memory_bytes(&self) -> usize {
        self.tree.stats().total_bytes
    }
    fn finalize(&mut self) {
        self.tree.shrink_to_fit();
    }
}

/// KD1 baseline adapter.
pub struct Kd1<const K: usize>(kdtree::KdTree1<(), K>);

impl<const K: usize> Index<K> for Kd1<K> {
    const NAME: &'static str = "KD1";

    fn new() -> Self {
        Kd1(kdtree::KdTree1::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0.window(min, max, &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// KD2 baseline adapter.
pub struct Kd2<const K: usize>(kdtree::KdTree2<(), K>);

impl<const K: usize> Index<K> for Kd2<K> {
    const NAME: &'static str = "KD2";

    fn new() -> Self {
        Kd2(kdtree::KdTree2::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0.window(min, max, &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// CB1 baseline adapter (keys go through the paper's IEEE conversion).
pub struct Cb1<const K: usize>(critbit::CritBit1<(), K>);

impl<const K: usize> Index<K> for Cb1<K> {
    const NAME: &'static str = "CB1";

    fn new() -> Self {
        Cb1(critbit::CritBit1::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(point_to_key(p), ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(&point_to_key(p)).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(&point_to_key(p)).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0
            .window_scan(&point_to_key(min), &point_to_key(max), &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// CB2 baseline adapter.
pub struct Cb2<const K: usize>(critbit::CritBit2<(), K>);

impl<const K: usize> Index<K> for Cb2<K> {
    const NAME: &'static str = "CB2";

    fn new() -> Self {
        Cb2(critbit::CritBit2::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(point_to_key(p), ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(&point_to_key(p)).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(&point_to_key(p)).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0
            .window_scan(&point_to_key(min), &point_to_key(max), &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// Named dataset constructors for `--dataset` flags (k = const generic).
pub fn make_dataset<const K: usize>(name: &str, n: usize, seed: u64) -> Vec<[f64; K]> {
    match name {
        "cube" => datasets::cube::<K>(n, seed),
        "cluster" | "cluster0.5" => datasets::cluster::<K>(n, 0.5, seed),
        "cluster0.4" => datasets::cluster::<K>(n, 0.4, seed),
        other => panic!("unknown dataset {other:?} (use cube|cluster0.4|cluster0.5)"),
    }
}

/// Scales a list of paper checkpoint sizes by `scale`, dropping
/// checkpoints that fall below 1000 entries and deduplicating.
pub fn scaled_checkpoints(base: &[usize], scale: f64) -> Vec<usize> {
    let mut v: Vec<usize> = base
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(1000))
        .collect();
    v.dedup();
    v
}

/// Loads `data[..n]` into a fresh index, returning it with the average
/// insertion time in µs/entry (the paper's Fig. 7 metric).
pub fn load_timed<I: Index<K>, const K: usize>(data: &[[f64; K]]) -> (I, f64) {
    let mut idx = I::new();
    let (_, per) = measure::time_us_per(data.len(), || {
        for p in data {
            idx.insert(p);
        }
    });
    (idx, per)
}

/// Runs point queries, returning µs/query (Fig. 8 metric).
pub fn point_queries_timed<I: Index<K>, const K: usize>(idx: &I, queries: &[[f64; K]]) -> f64 {
    let (hits, per) = measure::time_us_per(queries.len(), || {
        let mut hits = 0usize;
        for q in queries {
            hits += idx.get(q) as usize;
        }
        hits
    });
    std::hint::black_box(hits);
    per
}

/// Runs window queries, returning µs per *returned entry* (Fig. 9
/// metric) and the total number of returned entries.
pub fn range_queries_timed<I: Index<K>, const K: usize>(
    idx: &I,
    queries: &[([f64; K], [f64; K])],
) -> (f64, usize) {
    let (total, us) = measure::time_us(|| {
        let mut total = 0usize;
        for (min, max) in queries {
            total += idx.window_count(min, max);
        }
        total
    });
    let per = if total == 0 {
        f64::NAN
    } else {
        us / total as f64
    };
    (per, total)
}

/// Removes every point of `data` (in the given order), returning
/// µs/entry (Sect. 4.3.4 unloading metric).
pub fn unload_timed<I: Index<K>, const K: usize>(idx: &mut I, data: &[[f64; K]]) -> f64 {
    let (removed, per) = measure::time_us_per(data.len(), || {
        let mut removed = 0usize;
        for p in data {
            removed += idx.remove(p) as usize;
        }
        removed
    });
    std::hint::black_box(removed);
    per
}

/// Writes a table's CSV next to the binary outputs (`results/<slug>.csv`,
/// slug derived from the title). Failures are reported, not fatal.
pub fn write_csv(title: &str, table: &measure::Table) {
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("note: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{slug}.csv"));
    if let Err(e) = std::fs::write(&path, table.render_csv()) {
        eprintln!("note: cannot write {path:?}: {e}");
    } else {
        eprintln!("csv: {}", path.display());
    }
}

/// Dispatches a generic function over the paper's `k` values.
///
/// `$f` must be callable as `f::<K>(args…)` for K in 2..=15.
#[macro_export]
macro_rules! with_k {
    ($k:expr, $f:ident ( $($args:expr),* $(,)? )) => {
        match $k {
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            8 => $f::<8>($($args),*),
            10 => $f::<10>($($args),*),
            12 => $f::<12>($($args),*),
            15 => $f::<15>($($args),*),
            other => panic!("unsupported k = {other} (supported: 2,3,4,5,6,8,10,12,15)"),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapters_agree_on_small_workload() {
        let data = datasets::cube::<3>(2000, 99);
        fn check<I: Index<3>>(data: &[[f64; 3]]) -> (usize, usize) {
            let (mut idx, _) = load_timed::<I, 3>(data);
            idx.finalize();
            let mut hits = 0;
            for p in data.iter().step_by(7) {
                assert!(idx.get(p), "{} lost {p:?}", I::NAME);
                hits += 1;
            }
            let w = idx.window_count(&[0.2; 3], &[0.7; 3]);
            assert!(idx.memory_bytes() > 0);
            (w, hits)
        }
        let ph = check::<Ph<3>>(&data);
        let kd1 = check::<Kd1<3>>(&data);
        let kd2 = check::<Kd2<3>>(&data);
        let cb1 = check::<Cb1<3>>(&data);
        let cb2 = check::<Cb2<3>>(&data);
        assert_eq!(ph, kd1);
        assert_eq!(ph, kd2);
        assert_eq!(ph, cb1);
        assert_eq!(ph, cb2);
    }

    #[test]
    fn unload_removes_everything() {
        let data = datasets::cluster::<2>(3000, 0.5, 1);
        let (mut idx, _) = load_timed::<Ph<2>, 2>(&data);
        let n = idx.len();
        assert!(n > 0);
        unload_timed(&mut idx, &data);
        assert!(idx.is_empty());
        std::hint::black_box(n);
    }

    #[test]
    fn checkpoints_scale_and_dedup() {
        let cps = scaled_checkpoints(&[1_000_000, 5_000_000, 10_000_000], 0.001);
        assert_eq!(cps, vec![1000, 5000, 10000]);
        let tiny = scaled_checkpoints(&[1_000_000, 2_000_000], 1e-9);
        assert_eq!(tiny, vec![1000]);
    }

    #[test]
    fn with_k_dispatch() {
        fn probe<const K: usize>() -> usize {
            K
        }
        assert_eq!(with_k!(2, probe()), 2);
        assert_eq!(with_k!(15, probe()), 15);
    }
}
