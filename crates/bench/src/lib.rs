//! Shared harness for the per-figure reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! PH-tree paper; this library supplies the common pieces: a uniform
//! [`Index`] adapter over all five structures (PH, KD1, KD2, CB1, CB2),
//! dataset construction by name, and the sweep runners that time
//! loading, point queries, range queries and unloading the way the
//! paper's figures report them.
//!
//! All binaries accept:
//!
//! * `--scale <f>` — multiplies every entry count (default 0.02; use
//!   `--scale 1` for the paper's full sizes if you have the RAM/time).
//! * `--seed <u64>` — RNG seed (default 42).
//! * `--queries <n>` — query count override where applicable.

#![warn(missing_docs)]

use phtree::key::point_to_key;
use phtree::{PhTreeF64, ReprMode};

/// Uniform adapter over every benchmarked structure. Values are `()` —
/// like the paper, the point itself is the data.
pub trait Index<const K: usize> {
    /// Display name used in tables ("PH", "KD1", …).
    const NAME: &'static str;

    /// Creates an empty index.
    fn new() -> Self;
    /// Inserts a point.
    fn insert(&mut self, p: &[f64; K]);
    /// Point query.
    fn get(&self, p: &[f64; K]) -> bool;
    /// Removes a point; true if it was present.
    fn remove(&mut self, p: &[f64; K]) -> bool;
    /// Counts entries in the window (forces full result enumeration).
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize;
    /// Number of stored points.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Exact structural heap bytes.
    fn memory_bytes(&self) -> usize;
    /// Post-load compaction (the paper's `System.gc()` analogue).
    fn finalize(&mut self) {}
}

/// The PH-tree under test.
pub struct Ph<const K: usize> {
    tree: PhTreeF64<(), K>,
}

impl<const K: usize> Ph<K> {
    /// Access to the wrapped tree (node statistics etc.).
    pub fn tree(&self) -> &PhTreeF64<(), K> {
        &self.tree
    }

    /// Creates a PH index with an explicit representation mode (for the
    /// HC/LHC ablation).
    pub fn with_mode(mode: ReprMode) -> Self {
        Ph {
            tree: PhTreeF64::with_mode(mode),
        }
    }
}

impl<const K: usize> Index<K> for Ph<K> {
    const NAME: &'static str = "PH";

    fn new() -> Self {
        Ph {
            tree: PhTreeF64::new(),
        }
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.tree.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.tree.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.tree.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        self.tree.query(min, max).count()
    }
    fn len(&self) -> usize {
        self.tree.len()
    }
    fn memory_bytes(&self) -> usize {
        self.tree.stats().total_bytes
    }
    fn finalize(&mut self) {
        self.tree.shrink_to_fit();
    }
}

/// KD1 baseline adapter.
pub struct Kd1<const K: usize>(kdtree::KdTree1<(), K>);

impl<const K: usize> Index<K> for Kd1<K> {
    const NAME: &'static str = "KD1";

    fn new() -> Self {
        Kd1(kdtree::KdTree1::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0.window(min, max, &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// KD2 baseline adapter.
pub struct Kd2<const K: usize>(kdtree::KdTree2<(), K>);

impl<const K: usize> Index<K> for Kd2<K> {
    const NAME: &'static str = "KD2";

    fn new() -> Self {
        Kd2(kdtree::KdTree2::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(*p, ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(p).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(p).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0.window(min, max, &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// CB1 baseline adapter (keys go through the paper's IEEE conversion).
pub struct Cb1<const K: usize>(critbit::CritBit1<(), K>);

impl<const K: usize> Index<K> for Cb1<K> {
    const NAME: &'static str = "CB1";

    fn new() -> Self {
        Cb1(critbit::CritBit1::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(point_to_key(p), ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(&point_to_key(p)).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(&point_to_key(p)).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0
            .window_scan(&point_to_key(min), &point_to_key(max), &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// CB2 baseline adapter.
pub struct Cb2<const K: usize>(critbit::CritBit2<(), K>);

impl<const K: usize> Index<K> for Cb2<K> {
    const NAME: &'static str = "CB2";

    fn new() -> Self {
        Cb2(critbit::CritBit2::new())
    }
    fn insert(&mut self, p: &[f64; K]) {
        self.0.insert(point_to_key(p), ());
    }
    fn get(&self, p: &[f64; K]) -> bool {
        self.0.get(&point_to_key(p)).is_some()
    }
    fn remove(&mut self, p: &[f64; K]) -> bool {
        self.0.remove(&point_to_key(p)).is_some()
    }
    fn window_count(&self, min: &[f64; K], max: &[f64; K]) -> usize {
        let mut n = 0;
        self.0
            .window_scan(&point_to_key(min), &point_to_key(max), &mut |_, _| n += 1);
        n
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

/// Named dataset constructors for `--dataset` flags (k = const generic).
pub fn make_dataset<const K: usize>(name: &str, n: usize, seed: u64) -> Vec<[f64; K]> {
    match name {
        "cube" => datasets::cube::<K>(n, seed),
        "cluster" | "cluster0.5" => datasets::cluster::<K>(n, 0.5, seed),
        "cluster0.4" => datasets::cluster::<K>(n, 0.4, seed),
        other => panic!("unknown dataset {other:?} (use cube|cluster0.4|cluster0.5)"),
    }
}

/// Scales a list of paper checkpoint sizes by `scale`, dropping
/// checkpoints that fall below 1000 entries and deduplicating.
pub fn scaled_checkpoints(base: &[usize], scale: f64) -> Vec<usize> {
    let mut v: Vec<usize> = base
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(1000))
        .collect();
    v.dedup();
    v
}

/// Loads `data[..n]` into a fresh index, returning it with the average
/// insertion time in µs/entry (the paper's Fig. 7 metric).
pub fn load_timed<I: Index<K>, const K: usize>(data: &[[f64; K]]) -> (I, f64) {
    let mut idx = I::new();
    let (_, per) = measure::time_us_per(data.len(), || {
        for p in data {
            idx.insert(p);
        }
    });
    (idx, per)
}

/// Runs point queries, returning µs/query (Fig. 8 metric).
pub fn point_queries_timed<I: Index<K>, const K: usize>(idx: &I, queries: &[[f64; K]]) -> f64 {
    let (hits, per) = measure::time_us_per(queries.len(), || {
        let mut hits = 0usize;
        for q in queries {
            hits += idx.get(q) as usize;
        }
        hits
    });
    std::hint::black_box(hits);
    per
}

/// Runs one untimed pass of a point-query workload, returning the hit
/// count (callers time whole batches of passes themselves).
pub fn point_queries_run<I: Index<K>, const K: usize>(idx: &I, queries: &[[f64; K]]) -> usize {
    let mut hits = 0usize;
    for q in queries {
        hits += idx.get(q) as usize;
    }
    hits
}

/// Runs window queries, returning µs per *returned entry* (Fig. 9
/// metric) and the total number of returned entries.
pub fn range_queries_timed<I: Index<K>, const K: usize>(
    idx: &I,
    queries: &[([f64; K], [f64; K])],
) -> (f64, usize) {
    let (total, us) = measure::time_us(|| {
        let mut total = 0usize;
        for (min, max) in queries {
            total += idx.window_count(min, max);
        }
        total
    });
    let per = if total == 0 {
        f64::NAN
    } else {
        us / total as f64
    };
    (per, total)
}

/// Removes every point of `data` (in the given order), returning
/// µs/entry (Sect. 4.3.4 unloading metric).
pub fn unload_timed<I: Index<K>, const K: usize>(idx: &mut I, data: &[[f64; K]]) -> f64 {
    let (removed, per) = measure::time_us_per(data.len(), || {
        let mut removed = 0usize;
        for p in data {
            removed += idx.remove(p) as usize;
        }
        removed
    });
    std::hint::black_box(removed);
    per
}

/// Logical cores on this host — stamped into perf baselines so a
/// 1-core CI number is never read as a parallel-speedup claim.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Writes a table's CSV next to the binary outputs (`results/<slug>.csv`,
/// slug derived from the title). Failures are reported, not fatal.
pub fn write_csv(title: &str, table: &measure::Table) {
    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("note: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{slug}.csv"));
    if let Err(e) = std::fs::write(&path, table.render_csv()) {
        eprintln!("note: cannot write {path:?}: {e}");
    } else {
        eprintln!("csv: {}", path.display());
    }
}

/// Dispatches a generic function over the paper's `k` values (plus
/// `k = 20` for the perf-regression baseline, which stresses the
/// word-level node kernels with multi-word postfix records).
///
/// `$f` must be callable as `f::<K>(args…)`.
#[macro_export]
macro_rules! with_k {
    ($k:expr, $f:ident ( $($args:expr),* $(,)? )) => {
        match $k {
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            8 => $f::<8>($($args),*),
            10 => $f::<10>($($args),*),
            12 => $f::<12>($($args),*),
            15 => $f::<15>($($args),*),
            20 => $f::<20>($($args),*),
            other => panic!("unsupported k = {other} (supported: 2,3,4,5,6,8,10,12,15,20)"),
        }
    };
}

// ---------------------------------------------------------------------
// Perf-regression baseline support (`--k` mode of the fig7/8/9 bins)
// ---------------------------------------------------------------------

/// Which of the three figure workloads a `--k` run measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhWorkload {
    /// Fig. 7 metric: µs per inserted entry.
    Insert,
    /// Fig. 8 metric: µs per point query (50 % hit mix).
    PointQuery,
    /// Fig. 9 metric: µs per returned range-query entry.
    RangeQuery,
}

impl PhWorkload {
    fn slug(self) -> &'static str {
        match self {
            PhWorkload::Insert => "fig7_insert",
            PhWorkload::PointQuery => "fig8_point_query",
            PhWorkload::RangeQuery => "fig9_range_query",
        }
    }
}

/// Axis-aligned boxes with a fixed per-dimension extent of
/// `coverage^(1/K)` at random positions in the unit cube.
///
/// [`datasets::range_queries`] draws every edge length uniformly and
/// resamples until the box reaches the target volume; at high `K` the
/// product of `K−1` uniform fractions almost never exceeds the coverage,
/// so that rejection loop degenerates. The baseline sweep therefore uses
/// this deterministic-extent variant for every `K`.
pub fn cube_range_queries<const K: usize>(
    n_queries: usize,
    coverage: f64,
    seed: u64,
) -> Vec<([f64; K], [f64; K])> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let f = coverage.powf(1.0 / K as f64);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA5E);
    (0..n_queries)
        .map(|_| {
            let min: [f64; K] = std::array::from_fn(|_| rng.gen::<f64>() * (1.0 - f));
            let max: [f64; K] = std::array::from_fn(|d| min[d] + f);
            (min, max)
        })
        .collect()
}

/// Minimum wall-clock length of one timed sample. Sub-µs operations
/// over a few-thousand-item workload finish in single-digit
/// milliseconds, which is scheduler-jitter territory on a shared
/// machine; repeating the workload until a sample spans this long makes
/// the min-of-samples estimate reproducible to a few percent.
const MIN_SAMPLE_US: f64 = 150_000.0;

/// How many times to repeat a workload whose single pass took
/// `once_us`, so one timed sample reaches [`MIN_SAMPLE_US`].
fn calibrated_iters(once_us: f64) -> usize {
    if !once_us.is_finite() || once_us <= 0.0 {
        return 1;
    }
    ((MIN_SAMPLE_US / once_us).ceil() as usize).clamp(1, 1_000_000)
}

/// One PH-only measurement at compile-time dimensionality `K`: builds a
/// CUBE dataset of `n` points and reports the workload metric as the
/// minimum over `repeats` samples (minimum = least-noise estimate on a
/// shared machine), each sample calibrated to span at least
/// [`MIN_SAMPLE_US`] of wall clock.
pub fn ph_only_measure<const K: usize>(
    workload: PhWorkload,
    n: usize,
    n_queries: usize,
    repeats: usize,
    seed: u64,
) -> f64 {
    let data = datasets::cube::<K>(n, seed);
    let mut best = f64::INFINITY;
    match workload {
        PhWorkload::Insert => {
            // Calibration build doubles as warmup and is not counted.
            let (idx, per_once) = load_timed::<Ph<K>, K>(&data);
            std::hint::black_box(idx.len());
            let iters = calibrated_iters(per_once * data.len() as f64);
            for _ in 0..repeats.max(1) {
                let (built, us) = measure::time_us(|| {
                    let mut total_len = 0usize;
                    for _ in 0..iters {
                        let (idx, _) = load_timed::<Ph<K>, K>(&data);
                        total_len += idx.len();
                    }
                    total_len
                });
                std::hint::black_box(built);
                best = best.min(us / (iters * data.len()) as f64);
            }
        }
        PhWorkload::PointQuery => {
            let (mut idx, _) = load_timed::<Ph<K>, K>(&data);
            idx.finalize();
            let queries = datasets::point_query_mix(&data, n_queries, &[0.0; K], &[1.0; K], seed);
            let iters =
                calibrated_iters(point_queries_timed(&idx, &queries) * queries.len() as f64);
            for _ in 0..repeats.max(1) {
                let (_, us) = measure::time_us(|| {
                    for _ in 0..iters {
                        std::hint::black_box(point_queries_run(&idx, &queries));
                    }
                });
                best = best.min(us / (iters * queries.len()) as f64);
            }
        }
        PhWorkload::RangeQuery => {
            let (mut idx, _) = load_timed::<Ph<K>, K>(&data);
            idx.finalize();
            let queries = cube_range_queries::<K>(n_queries, 0.001, seed);
            let (per_once, total) = range_queries_timed(&idx, &queries);
            if total == 0 {
                return f64::NAN;
            }
            let iters = calibrated_iters(per_once * total as f64);
            for _ in 0..repeats.max(1) {
                let (grand, us) = measure::time_us(|| {
                    let mut grand = 0usize;
                    for _ in 0..iters {
                        for (min, max) in &queries {
                            grand += idx.window_count(min, max);
                        }
                    }
                    grand
                });
                std::hint::black_box(grand);
                best = best.min(us / grand as f64);
            }
        }
    }
    best
}

/// Entry point for the `--k` mode shared by the fig7/8/9 bins: one
/// PH-only measurement on the CUBE dataset at runtime dimensionality
/// `k`, printed as a table row and (optionally) recorded into the flat
/// JSON baseline at `json_path`.
pub fn run_ph_only_k(
    workload: PhWorkload,
    k: usize,
    scale: f64,
    n_queries: usize,
    repeats: usize,
    seed: u64,
    json_path: Option<&str>,
) {
    let n = ((1_000_000_f64 * scale) as usize).max(1000);
    let us = with_k!(k, ph_only_measure(workload, n, n_queries, repeats, seed));
    let name = format!("{}_cube_k{k}", workload.slug());
    println!("{name}: n={n} -> {us:.4} µs");
    if let Some(path) = json_path {
        match perfjson::record(path, &name, us) {
            Ok(()) => eprintln!("json: {path}"),
            Err(e) => eprintln!("note: cannot update {path}: {e}"),
        }
    }
}

/// Installs a minimal counting `TreeSink` (three relaxed atomics) when
/// the harness runs with `--sink true` on a `--features metrics` build.
/// This is how the *enabled*-path overhead quoted in DESIGN.md §13 is
/// measured: the same bins and workload as the committed baseline, with
/// a live sink behind every probe. Without the feature the flag warns
/// and is ignored, so baseline numbers stay honest.
pub fn maybe_install_counting_sink(cli: &measure::Cli) {
    if cli.get_str("sink", "false") != "true" {
        return;
    }
    #[cfg(feature = "metrics")]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        struct CountingSink {
            ops: AtomicU64,
            nodes: AtomicU64,
            switches: AtomicU64,
        }
        impl phtree::telemetry::TreeSink for CountingSink {
            fn op(&self, _op: phtree::telemetry::TreeOp, nodes_visited: u32) {
                self.ops.fetch_add(1, Ordering::Relaxed);
                self.nodes
                    .fetch_add(nodes_visited as u64, Ordering::Relaxed);
            }
            fn repr_switch(&self, _to_hc: bool) {
                self.switches.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sink: &'static CountingSink = Box::leak(Box::new(CountingSink {
            ops: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            switches: AtomicU64::new(0),
        }));
        if phtree::telemetry::set_sink(sink) {
            eprintln!("counting sink installed (enabled-path measurement)");
        }
    }
    #[cfg(not(feature = "metrics"))]
    eprintln!("note: --sink true needs --features metrics; measuring the uninstrumented build");
}

/// Reading and writing the flat perf-baseline JSON
/// (`{"bench_name": µs, …}`) without a serialisation dependency.
pub mod perfjson {
    use std::io;

    /// Parses a flat `{"name": number, …}` JSON object (the only shape
    /// this harness ever writes).
    pub fn parse(text: &str) -> Result<Vec<(String, f64)>, String> {
        let body = text.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or("not a JSON object")?;
        let mut out = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| format!("bad pair {part:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("bad key {key:?}"))?;
            let val: f64 = val
                .trim()
                .parse()
                .map_err(|e| format!("bad value for {key:?}: {e}"))?;
            out.push((key.to_string(), val));
        }
        Ok(out)
    }

    /// Renders entries (sorted by name) as the flat JSON object.
    pub fn render(entries: &[(String, f64)]) -> String {
        let mut sorted: Vec<&(String, f64)> = entries.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("{\n");
        for (i, (k, v)) in sorted.iter().enumerate() {
            out.push_str(&format!("  \"{k}\": {v:.6}"));
            out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }

    /// Inserts or overwrites `name` in the baseline file at `path`,
    /// creating the file if needed.
    pub fn record(path: &str, name: &str, value: f64) -> io::Result<()> {
        let mut entries = match std::fs::read_to_string(path) {
            Ok(text) => parse(&text).map_err(io::Error::other)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        match entries.iter_mut().find(|(k, _)| k == name) {
            Some(e) => e.1 = value,
            None => entries.push((name.to_string(), value)),
        }
        std::fs::write(path, render(&entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapters_agree_on_small_workload() {
        let data = datasets::cube::<3>(2000, 99);
        fn check<I: Index<3>>(data: &[[f64; 3]]) -> (usize, usize) {
            let (mut idx, _) = load_timed::<I, 3>(data);
            idx.finalize();
            let mut hits = 0;
            for p in data.iter().step_by(7) {
                assert!(idx.get(p), "{} lost {p:?}", I::NAME);
                hits += 1;
            }
            let w = idx.window_count(&[0.2; 3], &[0.7; 3]);
            assert!(idx.memory_bytes() > 0);
            (w, hits)
        }
        let ph = check::<Ph<3>>(&data);
        let kd1 = check::<Kd1<3>>(&data);
        let kd2 = check::<Kd2<3>>(&data);
        let cb1 = check::<Cb1<3>>(&data);
        let cb2 = check::<Cb2<3>>(&data);
        assert_eq!(ph, kd1);
        assert_eq!(ph, kd2);
        assert_eq!(ph, cb1);
        assert_eq!(ph, cb2);
    }

    #[test]
    fn unload_removes_everything() {
        let data = datasets::cluster::<2>(3000, 0.5, 1);
        let (mut idx, _) = load_timed::<Ph<2>, 2>(&data);
        let n = idx.len();
        assert!(n > 0);
        unload_timed(&mut idx, &data);
        assert!(idx.is_empty());
        std::hint::black_box(n);
    }

    #[test]
    fn checkpoints_scale_and_dedup() {
        let cps = scaled_checkpoints(&[1_000_000, 5_000_000, 10_000_000], 0.001);
        assert_eq!(cps, vec![1000, 5000, 10000]);
        let tiny = scaled_checkpoints(&[1_000_000, 2_000_000], 1e-9);
        assert_eq!(tiny, vec![1000]);
    }

    #[test]
    fn with_k_dispatch() {
        fn probe<const K: usize>() -> usize {
            K
        }
        assert_eq!(with_k!(2, probe()), 2);
        assert_eq!(with_k!(15, probe()), 15);
        assert_eq!(with_k!(20, probe()), 20);
    }

    #[test]
    fn perfjson_roundtrip() {
        let entries = vec![
            ("fig8_point_query_cube_k3".to_string(), 1.25),
            ("fig7_insert_cube_k20".to_string(), 10.5),
        ];
        let text = perfjson::render(&entries);
        let mut back = perfjson::parse(&text).unwrap();
        back.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "fig7_insert_cube_k20");
        assert!((back[0].1 - 10.5).abs() < 1e-9);
        assert!(perfjson::parse("[1, 2]").is_err());
        assert!(perfjson::parse("{\"a\": \"str\"}").is_err());
    }

    #[test]
    fn perfjson_record_merges() {
        let dir = std::env::temp_dir().join(format!("perfjson_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        perfjson::record(path, "a", 1.0).unwrap();
        perfjson::record(path, "b", 2.0).unwrap();
        perfjson::record(path, "a", 3.0).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let entries = perfjson::parse(&text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.iter().find(|(k, _)| k == "a").unwrap().1, 3.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ph_only_measure_smoke() {
        let us = ph_only_measure::<3>(PhWorkload::Insert, 1000, 0, 1, 7);
        assert!(us.is_finite() && us >= 0.0);
        let us = ph_only_measure::<3>(PhWorkload::PointQuery, 1000, 100, 2, 7);
        assert!(us.is_finite() && us >= 0.0);
        let us = ph_only_measure::<3>(PhWorkload::RangeQuery, 1000, 10, 2, 7);
        assert!(us.is_finite() && us >= 0.0);
    }

    #[test]
    fn cube_range_queries_have_fixed_extent() {
        let qs = cube_range_queries::<4>(20, 0.001, 9);
        let f = 0.001f64.powf(0.25);
        for (min, max) in qs {
            for d in 0..4 {
                assert!(min[d] >= 0.0 && max[d] <= 1.0 + 1e-12);
                assert!((max[d] - min[d] - f).abs() < 1e-12);
            }
        }
    }
}
