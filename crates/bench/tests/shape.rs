//! Structural "shape" regression tests: deterministic properties that
//! encode the paper's qualitative results without timing (so they can
//! run in CI). The PH-tree's structure is canonical — a function of the
//! data only — so node counts for seeded datasets are exact constants.

use ph_bench::{load_timed, Cb1, Index, Kd1, Ph};

fn ph_stats<const K: usize>(name: &str, n: usize) -> phtree::TreeStats {
    let data = ph_bench::make_dataset::<K>(name, n, 42);
    let mut t: phtree::PhTreeF64<(), K> = phtree::PhTreeF64::new();
    for p in &data {
        t.insert(*p, ());
    }
    t.shrink_to_fit();
    t.stats()
}

/// Pinned node counts for the seeded generators (scaled Table 3).
/// These change only if the tree algorithm or the dataset generator
/// changes — both are load-bearing, so pin them.
#[test]
fn node_counts_are_canonical_constants() {
    // Pins regenerated for the vendored RNG stream (see vendor/rand):
    // the dataset generator is seed-deterministic but its stream differs
    // from upstream rand 0.8, so the constants moved with it.
    assert_eq!(ph_stats::<3>("cube", 100_000).nodes, 45_170);
    assert_eq!(ph_stats::<3>("cluster0.4", 100_000).nodes, 68_178);
    assert_eq!(ph_stats::<3>("cluster0.5", 100_000).nodes, 93_849);
}

/// Table 3's qualitative content: CLUSTER0.5 explodes with k while
/// CLUSTER0.4 and CUBE shrink.
#[test]
fn table3_shape_node_count_vs_k() {
    let cu_3 = ph_stats::<3>("cube", 100_000).nodes;
    let cu_10 = ph_stats::<10>("cube", 100_000).nodes;
    assert!(
        cu_10 < cu_3,
        "CUBE node count falls with k: {cu_10} vs {cu_3}"
    );
    let c4_10 = ph_stats::<10>("cluster0.4", 100_000).nodes;
    let c5_10 = ph_stats::<10>("cluster0.5", 100_000).nodes;
    assert!(
        c5_10 > 2 * c4_10,
        "CLUSTER0.5 needs far more nodes at k=10: {c5_10} vs {c4_10}"
    );
}

/// Table 1's qualitative content at laptop scale: the PH-tree beats the
/// per-entry-key structures (CB1, KD1-style boxed nodes) on CUBE, and
/// CLUSTER space improves with n (Table 2's trend) while flat structures
/// stay constant.
#[test]
fn table1_shape_space_ordering() {
    let data = datasets::cube::<3>(200_000, 42);
    let (mut ph, _) = load_timed::<Ph<3>, 3>(&data);
    ph.finalize();
    let (kd1, _) = load_timed::<Kd1<3>, 3>(&data);
    let (cb1, _) = load_timed::<Cb1<3>, 3>(&data);
    let ph_b = ph.memory_bytes() as f64 / ph.len() as f64;
    let kd1_b = kd1.memory_bytes() as f64 / kd1.len() as f64;
    let cb1_b = cb1.memory_bytes() as f64 / cb1.len() as f64;
    assert!(ph_b < cb1_b, "PH {ph_b:.1} must beat CB1 {cb1_b:.1}");
    // The paper has PH well below the (Java) kD-trees; our Rust KD1 is
    // leaner, and our nodes carry a per-node Arc header (+refcount) to
    // support copy-on-write snapshot reads, so assert rough parity
    // rather than dominance.
    assert!(ph_b < kd1_b * 1.7, "PH {ph_b:.1} ≈ KD1 {kd1_b:.1}");
}

/// Fig. 10 / Sect. 4.3.6: the PH-tree's bytes/entry *drops* from k=2 to
/// k=4 (more dimensions per node amortise structure), which no other
/// tested structure does.
#[test]
fn fig10_shape_space_dip_at_low_k() {
    let b2 = ph_stats::<2>("cube", 100_000).bytes_per_entry();
    let b4 = ph_stats::<4>("cube", 100_000).bytes_per_entry();
    assert!(
        b4 < b2,
        "4-D entries must be cheaper per entry than 2-D: {b4:.1} vs {b2:.1}"
    );
}

/// Fig. 14's divergence: at high k CLUSTER0.5 costs much more space than
/// CLUSTER0.4 in the PH-tree.
#[test]
fn fig14_shape_cluster_divergence_at_high_k() {
    let b4 = ph_stats::<12>("cluster0.4", 100_000).bytes_per_entry();
    let b5 = ph_stats::<12>("cluster0.5", 100_000).bytes_per_entry();
    assert!(
        b5 > 1.5 * b4,
        "CLUSTER0.5 at k=12 must cost much more than CLUSTER0.4: {b5:.1} vs {b4:.1}"
    );
}

/// HC prevalence on dense low-k data (Sect. 4.3.1's explanation for the
/// super-constant TIGER behaviour): a dense 2-D tree uses plenty of HC
/// nodes, a sparse high-k tree uses none.
#[test]
fn hc_nodes_appear_on_dense_low_k_data() {
    // A fully dense 2-D grid: the bottom levels are full nodes, which
    // the size comparison switches to HC wholesale.
    let mut t: phtree::PhTree<(), 2> = phtree::PhTree::new();
    for i in 0..(1u64 << 14) {
        t.insert([i & 0x7F, i >> 7], ());
    }
    let s = t.stats();
    assert!(
        s.hc_nodes > s.nodes / 2,
        "a dense grid should be mostly HC nodes: {} of {}",
        s.hc_nodes,
        s.nodes
    );
    // HC prevalence grows with density (the paper's explanation for the
    // super-constant TIGER/CLUSTER behaviour)…
    let lo = ph_stats::<2>("cluster0.4", 50_000);
    let hi = ph_stats::<2>("cluster0.4", 400_000);
    let frac = |s: &phtree::TreeStats| s.hc_nodes as f64 / s.nodes as f64;
    assert!(
        frac(&hi) > frac(&lo),
        "HC share must grow with density: {:.4} vs {:.4}",
        frac(&hi),
        frac(&lo)
    );
    // …while sparse high-k nodes all stay LHC.
    let sparse = ph_stats::<15>("cube", 50_000);
    assert_eq!(sparse.hc_nodes, 0, "sparse k=15 nodes must all stay LHC");
}

/// The depth bound w = 64 holds for every dataset (Sect. 3.6).
#[test]
fn depth_never_exceeds_w() {
    for name in ["cube", "cluster0.4", "cluster0.5"] {
        let s = ph_stats::<3>(name, 50_000);
        assert!(s.max_depth <= 64, "{name}: depth {}", s.max_depth);
    }
}
