//! Workspace integration tests: datasets → every index structure →
//! queries → measurement, cross-checked against each other and against
//! brute force. These are the "do all the pieces agree" tests behind
//! the benchmark harness.

use ph_bench::{Cb1, Cb2, Index, Kd1, Kd2, Ph};

fn all_agree<const K: usize>(data: &[[f64; K]], windows: &[([f64; K], [f64; K])]) {
    let mut ph = Ph::<K>::new();
    let mut kd1 = Kd1::<K>::new();
    let mut kd2 = Kd2::<K>::new();
    let mut cb1 = Cb1::<K>::new();
    let mut cb2 = Cb2::<K>::new();
    for p in data {
        ph.insert(p);
        kd1.insert(p);
        kd2.insert(p);
        cb1.insert(p);
        cb2.insert(p);
    }
    assert_eq!(ph.len(), kd1.len());
    assert_eq!(ph.len(), kd2.len());
    assert_eq!(ph.len(), cb1.len());
    assert_eq!(ph.len(), cb2.len());
    // Point queries: all present, and some misses.
    for p in data.iter().step_by(11) {
        assert!(ph.get(p) && kd1.get(p) && kd2.get(p) && cb1.get(p) && cb2.get(p));
        let miss: [f64; K] = std::array::from_fn(|d| p[d] + 3.33);
        let m = ph.get(&miss);
        assert_eq!(m, kd1.get(&miss));
        assert_eq!(m, cb1.get(&miss));
    }
    // Window queries.
    for (lo, hi) in windows {
        let want = data
            .iter()
            .filter(|p| (0..K).all(|d| lo[d] <= p[d] && p[d] <= hi[d]))
            .map(|p| p.map(f64::to_bits))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(ph.window_count(lo, hi), want, "PH window");
        assert_eq!(kd1.window_count(lo, hi), want, "KD1 window");
        assert_eq!(kd2.window_count(lo, hi), want, "KD2 window");
        assert_eq!(cb1.window_count(lo, hi), want, "CB1 window");
        assert_eq!(cb2.window_count(lo, hi), want, "CB2 window");
    }
    // Removal drains everything everywhere.
    for p in data {
        let r = ph.remove(p);
        assert_eq!(r, kd1.remove(p));
        assert_eq!(r, kd2.remove(p));
        assert_eq!(r, cb1.remove(p));
        assert_eq!(r, cb2.remove(p));
    }
    assert!(ph.is_empty() && kd1.is_empty() && kd2.is_empty());
    assert!(cb1.is_empty() && cb2.is_empty());
}

#[test]
fn cube_3d_all_structures_agree() {
    let data = datasets::cube::<3>(5000, 1);
    let windows = datasets::range_queries::<3>(10, &[0.0; 3], &[1.0; 3], 0.01, 2);
    all_agree(&data, &windows);
}

#[test]
fn cluster_3d_all_structures_agree() {
    let data = datasets::cluster::<3>(5000, 0.5, 1);
    let windows = datasets::cluster_range_queries::<3>(10, 2);
    all_agree(&data, &windows);
}

#[test]
fn tiger_2d_all_structures_agree() {
    let data = datasets::dedup(datasets::tiger_like(5000, 1));
    let lo = [datasets::TIGER_X.0, datasets::TIGER_Y.0];
    let hi = [datasets::TIGER_X.1, datasets::TIGER_Y.1];
    let windows = datasets::range_queries::<2>(10, &lo, &hi, 0.01, 2);
    all_agree(&data, &windows);
}

#[test]
fn high_k_cluster_agrees() {
    let data = datasets::cluster::<10>(2000, 0.4, 3);
    let windows = datasets::cluster_range_queries::<10>(5, 4);
    all_agree(&data, &windows);
}

#[test]
fn cluster05_produces_more_ph_nodes_than_cluster04_at_high_k() {
    // The Sect. 4.3.6 effect end-to-end: same generator, same n, only
    // the offset differs; the 0.5 exponent boundary explodes the node
    // count at high k.
    const K: usize = 10;
    let n = 100_000;
    let mut t04: phtree::PhTreeF64<(), K> = phtree::PhTreeF64::new();
    for p in datasets::cluster::<K>(n, 0.4, 5) {
        t04.insert(p, ());
    }
    let mut t05: phtree::PhTreeF64<(), K> = phtree::PhTreeF64::new();
    for p in datasets::cluster::<K>(n, 0.5, 5) {
        t05.insert(p, ());
    }
    let (n04, n05) = (t04.stats().nodes, t05.stats().nodes);
    assert!(
        n05 > 2 * n04,
        "CLUSTER0.5 should need far more nodes: {n05} vs {n04}"
    );
}

#[test]
fn ph_space_benefits_from_scale_on_clustered_data() {
    // Table 2's trend: PH bytes/entry falls as n grows on CLUSTER data.
    let small = {
        let mut t: phtree::PhTreeF64<(), 3> = phtree::PhTreeF64::new();
        for p in datasets::cluster::<3>(5_000, 0.5, 9) {
            t.insert(p, ());
        }
        t.shrink_to_fit();
        t.stats().bytes_per_entry()
    };
    let large = {
        let mut t: phtree::PhTreeF64<(), 3> = phtree::PhTreeF64::new();
        for p in datasets::cluster::<3>(200_000, 0.5, 9) {
            t.insert(p, ());
        }
        t.shrink_to_fit();
        t.stats().bytes_per_entry()
    };
    assert!(
        large < small,
        "bytes/entry should fall with n: {large:.1} vs {small:.1}"
    );
}

#[test]
fn measurement_harness_runs_end_to_end() {
    let data = datasets::cube::<3>(20_000, 21);
    let (mut idx, ins_us) = ph_bench::load_timed::<Ph<3>, 3>(&data);
    assert!(ins_us > 0.0);
    idx.finalize();
    let queries = datasets::point_query_mix(&data, 5000, &[0.0; 3], &[1.0; 3], 22);
    let q_us = ph_bench::point_queries_timed(&idx, &queries);
    assert!(q_us > 0.0);
    let windows = datasets::range_queries::<3>(10, &[0.0; 3], &[1.0; 3], 0.01, 23);
    let (per_entry, total) = ph_bench::range_queries_timed(&idx, &windows);
    assert!(total > 0, "coverage 1% of 20k points must return entries");
    assert!(per_entry > 0.0);
    let del_us = ph_bench::unload_timed(&mut idx, &data);
    assert!(del_us > 0.0);
    assert!(idx.is_empty());
}
