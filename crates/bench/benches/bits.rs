//! Criterion micro-benchmarks for the bit-stream substrate: the
//! word-wise read/write/shift primitives every PH-tree node update goes
//! through, plus the range-query address successor.

use criterion::{criterion_group, criterion_main, Criterion};
use phbits::{hc, BitBuf};

fn bench_bitbuf(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitbuf");
    let mut buf = BitBuf::new();
    buf.grow(64 * 1024);
    g.bench_function("read_bits_64", |b| {
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 13) % (64 * 1024 - 64);
            std::hint::black_box(buf.read_bits(off, 64))
        })
    });
    g.bench_function("write_bits_64", |b| {
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 13) % (64 * 1024 - 64);
            buf.write_bits(off, 0xDEAD_BEEF_F00D_CAFE, 64);
        })
    });
    g.bench_function("insert_remove_gap_192", |b| {
        // The postfix shift of one insert+delete in a k=3 node.
        b.iter(|| {
            buf.insert_gap(1024, 192);
            buf.remove_range(1024, 192);
        })
    });
    g.finish();
}

fn bench_hc(c: &mut Criterion) {
    let mut g = c.benchmark_group("hc");
    let key = [
        0x0123_4567_89AB_CDEFu64,
        0xFEDC_BA98_7654_3210,
        0xAAAA_5555_AAAA_5555,
    ];
    g.bench_function("addr_extract_k3", |b| {
        let mut bit = 0u32;
        b.iter(|| {
            bit = (bit + 1) % 64;
            std::hint::black_box(hc::addr(&key, bit))
        })
    });
    g.bench_function("next_addr", |b| {
        let (m_l, m_u) = (0b0010_1000u64, 0b1110_1011u64);
        let mut h = m_l;
        b.iter(|| {
            h = hc::next_addr(h, m_l, m_u).unwrap_or(m_l);
            std::hint::black_box(h)
        })
    });
    g.bench_function("masks_k3", |b| {
        let node_min = [0u64; 3];
        let q_min = [100u64, 200, 300];
        let q_max = [u64::MAX / 2; 3];
        b.iter(|| std::hint::black_box(hc::masks(&node_min, &q_min, &q_max, 40)))
    });
    g.finish();
}

criterion_group!(benches, bench_bitbuf, bench_hc);
criterion_main!(benches);
