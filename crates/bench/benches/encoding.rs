//! Criterion micro-benchmarks for the IEEE-754 sortable-key conversion
//! (paper Sect. 3.3) — the fixed per-operation cost every f64 access
//! pays.

use criterion::{criterion_group, criterion_main, Criterion};
use phtree::key::{f64_to_key, key_to_f64, key_to_point, point_to_key};

fn bench_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    let vals: Vec<f64> = (0..1024).map(|i| (i as f64 - 512.0) * 0.7919).collect();
    g.bench_function("f64_to_key_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &vals {
                acc ^= f64_to_key(v);
            }
            std::hint::black_box(acc)
        })
    });
    let keys: Vec<u64> = vals.iter().map(|&v| f64_to_key(v)).collect();
    g.bench_function("key_to_f64_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &k in &keys {
                acc += key_to_f64(k);
            }
            std::hint::black_box(acc)
        })
    });
    let pts: Vec<[f64; 3]> = (0..256)
        .map(|i| [i as f64, (i * 3) as f64 * 0.1, -(i as f64)])
        .collect();
    g.bench_function("point_roundtrip_3d_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in &pts {
                let k = point_to_key(p);
                acc += key_to_point(&k)[1];
            }
            std::hint::black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
