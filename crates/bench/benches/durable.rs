//! Durability-layer benchmarks: journal append throughput and
//! recovery (reopen) time, on the in-memory VFS so the numbers measure
//! the CPU cost of framing/checksumming/replay rather than disk fsync.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phstore::durable::{Durable, DurableConfig};
use phstore::vfs::MemVfs;
use std::path::Path;
use std::sync::Arc;

fn no_sync(checkpoint_bytes: u64) -> DurableConfig {
    DurableConfig {
        checkpoint_bytes,
        sync_writes: false,
        retry: None,
    }
}

fn bench_journal(c: &mut Criterion) {
    let mut g = c.benchmark_group("durable_journal");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    // Checkpointing disabled: pure WAL append + tree insert.
    g.bench_function("append_10k", |b| {
        b.iter(|| {
            let vfs = MemVfs::new();
            let mut d: Durable<u32, 2> =
                Durable::open_with(Arc::new(vfs), Path::new("/db"), no_sync(u64::MAX)).unwrap();
            for i in 0..N {
                d.insert([i % 997, i % 503], i as u32).unwrap();
            }
            std::hint::black_box(d.wal_bytes())
        })
    });
    // With rotation in the loop: includes periodic full snapshots.
    g.bench_function("append_10k_with_checkpoints", |b| {
        b.iter(|| {
            let vfs = MemVfs::new();
            let mut d: Durable<u32, 2> =
                Durable::open_with(Arc::new(vfs), Path::new("/db"), no_sync(64 * 1024)).unwrap();
            for i in 0..N {
                d.insert([i % 997, i % 503], i as u32).unwrap();
            }
            std::hint::black_box(d.generation())
        })
    });
    g.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("durable_recovery");
    for &n in &[1_000u64, 10_000, 50_000] {
        // Prepare a store whose state lives entirely in the WAL, so
        // reopen time is dominated by scan + replay.
        let vfs = MemVfs::new();
        {
            let mut d: Durable<u32, 2> =
                Durable::open_with(Arc::new(vfs.clone()), Path::new("/db"), no_sync(u64::MAX))
                    .unwrap();
            for i in 0..n {
                d.insert([i % 997, i % 503], i as u32).unwrap();
            }
        }
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("replay_open", n), &vfs, |b, vfs| {
            b.iter(|| {
                let d: Durable<u32, 2> =
                    Durable::open_with(Arc::new(vfs.clone()), Path::new("/db"), no_sync(u64::MAX))
                        .unwrap();
                std::hint::black_box(d.recovery_stats().replayed_ops)
            })
        });
        // Same state, but checkpointed: reopen loads the snapshot only.
        let snap_vfs = vfs.deep_clone();
        {
            let mut d: Durable<u32, 2> = Durable::open_with(
                Arc::new(snap_vfs.clone()),
                Path::new("/db"),
                no_sync(u64::MAX),
            )
            .unwrap();
            d.checkpoint().unwrap();
        }
        g.bench_with_input(BenchmarkId::new("snapshot_open", n), &snap_vfs, |b, vfs| {
            b.iter(|| {
                let d: Durable<u32, 2> =
                    Durable::open_with(Arc::new(vfs.clone()), Path::new("/db"), no_sync(u64::MAX))
                        .unwrap();
                std::hint::black_box(d.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_journal, bench_recovery);
criterion_main!(benches);
