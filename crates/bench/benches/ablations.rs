//! Criterion ablation benchmarks: adaptive HC/LHC node representation
//! vs. forced all-LHC / all-HC trees (the central design trade-off of
//! paper Sect. 3.2).

use criterion::{criterion_group, criterion_main, Criterion};
use phtree::{PhTreeF64, ReprMode};

const N: usize = 50_000;

fn bench_modes(c: &mut Criterion) {
    for (ds, data) in [
        ("cube3", datasets::cube::<3>(N, 42)),
        ("cluster0.4_3", datasets::cluster::<3>(N, 0.4, 42)),
    ] {
        let queries = datasets::point_query_mix(&data, 10_000, &[0.0; 3], &[1.0; 3], 7);
        for (mode_name, mode) in [
            ("adaptive", ReprMode::Adaptive),
            ("force_lhc", ReprMode::ForceLhc),
            ("force_hc", ReprMode::ForceHc),
        ] {
            let mut g = c.benchmark_group(format!("repr/{ds}/{mode_name}"));
            g.sample_size(10);
            g.bench_function("load", |b| {
                b.iter(|| {
                    let mut t: PhTreeF64<(), 3> = PhTreeF64::with_mode(mode);
                    for p in &data {
                        t.insert(*p, ());
                    }
                    std::hint::black_box(t.len())
                })
            });
            let mut t: PhTreeF64<(), 3> = PhTreeF64::with_mode(mode);
            for p in &data {
                t.insert(*p, ());
            }
            g.bench_function("point_query", |b| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for q in &queries {
                        hits += t.get(q).is_some() as usize;
                    }
                    std::hint::black_box(hits)
                })
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
