//! Criterion micro-benchmarks: insert / point query / remove / window
//! query for every structure on CUBE and CLUSTER data at fixed n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ph_bench::{Cb1, Cb2, Index, Kd1, Kd2, Ph};

const N: usize = 100_000;
const K: usize = 3;

fn datasets_for_ops() -> Vec<(&'static str, Vec<[f64; K]>)> {
    vec![
        ("cube", datasets::cube::<K>(N, 42)),
        ("cluster0.5", datasets::cluster::<K>(N, 0.5, 42)),
    ]
}

fn bench_structure<I: Index<K>>(c: &mut Criterion) {
    for (ds, data) in datasets_for_ops() {
        let mut g = c.benchmark_group(format!("{}/{ds}", I::NAME));
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("load", N), |b| {
            b.iter(|| {
                let mut idx = I::new();
                for p in &data {
                    idx.insert(p);
                }
                std::hint::black_box(idx.len())
            })
        });
        let mut idx = I::new();
        for p in &data {
            idx.insert(p);
        }
        idx.finalize();
        let queries = datasets::point_query_mix(&data, 10_000, &[0.0; K], &[1.0; K], 7);
        g.bench_function(BenchmarkId::new("point_query", N), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += idx.get(q) as usize;
                }
                std::hint::black_box(hits)
            })
        });
        let windows = if ds == "cube" {
            datasets::range_queries::<K>(20, &[0.0; K], &[1.0; K], 0.001, 7)
        } else {
            datasets::cluster_range_queries::<K>(20, 7)
        };
        g.bench_function(BenchmarkId::new("window", N), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for (lo, hi) in &windows {
                    total += idx.window_count(lo, hi);
                }
                std::hint::black_box(total)
            })
        });
        g.bench_function(BenchmarkId::new("insert_remove_cycle", N), |b| {
            // Steady-state single update: remove + reinsert one point.
            let mut i = 0usize;
            b.iter(|| {
                let p = &data[i % data.len()];
                i += 1;
                idx.remove(p);
                idx.insert(p);
            })
        });
        g.finish();
    }
}

fn all(c: &mut Criterion) {
    bench_structure::<Ph<K>>(c);
    bench_structure::<Kd1<K>>(c);
    bench_structure::<Kd2<K>>(c);
    bench_structure::<Cb1<K>>(c);
    bench_structure::<Cb2<K>>(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
