//! Criterion benchmarks for the paged persistence layer: snapshot save
//! and load throughput (nodes/s, entries/s).

use criterion::{criterion_group, criterion_main, Criterion};
use phtree::key::point_to_key;
use phtree::PhTree;

fn build(n: usize) -> PhTree<u32, 3> {
    let data = datasets::cube::<3>(n, 42);
    let mut t = PhTree::new();
    for (i, p) in data.iter().enumerate() {
        t.insert(point_to_key(p), i as u32);
    }
    t
}

fn bench_store(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("phstore-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bench.pht");
    let tree = build(50_000);
    let mut g = c.benchmark_group("phstore");
    g.sample_size(10);
    g.bench_function("save_50k", |b| {
        b.iter(|| {
            let stats = phstore::save(&tree, &path).unwrap();
            std::hint::black_box(stats.pages)
        })
    });
    phstore::save(&tree, &path).unwrap();
    g.bench_function("load_50k", |b| {
        b.iter(|| {
            let t: PhTree<u32, 3> = phstore::load(&path).unwrap();
            std::hint::black_box(t.len())
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
