//! Crash-point sweep over an **in-flight shard migration**.
//!
//! The central test runs a deterministic script — writes, then
//! `begin_split` on the hot shard, writes *during* the migration
//! (which backlog), `commit_split`, writes after — under a
//! [`FaultVfs`] that cuts the write stream at a given byte budget,
//! then reopens the surviving bytes fault-free and asserts the
//! recovered store holds **exactly** the model state after the
//! acknowledged ops (or one more, for an op that became durable inside
//! the call that crashed): no lost writes, no duplicated or phantom
//! keys, at every single crash offset. Companion tests kill the
//! manifest renames and syncs that fence the protocol's phases.
//!
//! By default the sweep strides across the byte space so it stays
//! fast enough for PR CI; set `MIGRATION_SWEEP_FULL=1` to cut at
//! every byte (the nightly configuration).

use phshard::{DurableSharded, ShardError};
use phstore::vfs::{FaultConfig, FaultVfs, MemVfs};
use phstore::DurableConfig;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

type Key = [u64; 2];
type Model = BTreeMap<Key, u32>;

/// Ops 0..PRE run before `begin_split`, PRE..MID while the migration
/// is in flight (they journal to the source *and* queue on the
/// backlog), MID.. after `commit_split` (routed by the new epoch).
const PRE: usize = 12;
const MID: usize = 22;
const N_OPS: usize = 30;

fn config() -> DurableConfig {
    DurableConfig {
        checkpoint_bytes: u64::MAX, // no auto checkpoints: byte stream stays small
        sync_writes: true,
        retry: None,
    }
}

/// Deterministic workload, concentrated on slot 0 (dim-0 MSB clear) so
/// slot 0 is the hot shard, with a few slot-1 keys and removes mixed
/// in. Values are distinct so a stale overwrite is detectable.
fn workload() -> Vec<(bool, Key, u32)> {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    let mut ops = Vec::with_capacity(N_OPS);
    for i in 0..N_OPS {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // 1 in 4 keys lands on slot 1; the rest heat up slot 0.
        let hi = if x.is_multiple_of(4) { 1u64 << 63 } else { 0 };
        let key = [hi | ((x >> 16) % 16), (x >> 40) % 16];
        // Removes only after enough inserts exist to hit something.
        let is_remove = i > 6 && x.is_multiple_of(5);
        ops.push((is_remove, key, i as u32));
    }
    ops
}

fn apply_model(model: &mut Model, op: &(bool, Key, u32)) {
    let (is_remove, key, value) = *op;
    if is_remove {
        model.remove(&key);
    } else {
        model.insert(key, value);
    }
}

/// `states[n]` = model after the first `n` ops.
fn model_states(ops: &[(bool, Key, u32)]) -> Vec<Model> {
    let mut states = vec![Model::new()];
    let mut model = Model::new();
    for op in ops {
        apply_model(&mut model, op);
        states.push(model.clone());
    }
    states
}

fn store_equals_model(store: &DurableSharded<u32, 2>, model: &Model) -> bool {
    store.len() == model.len()
        && model
            .iter()
            .all(|(k, &v)| store.get_with(k, |got| *got) == Some(v))
}

/// Runs the script on `store`, splitting slot 0 between phases.
/// Returns how many data ops were acknowledged (split calls are not
/// data ops — their effects are content-neutral by construction).
fn run_script(store: &DurableSharded<u32, 2>, ops: &[(bool, Key, u32)]) -> usize {
    let mut acked = 0usize;
    let do_op = |op: &(bool, Key, u32)| -> Result<(), ShardError> {
        let (is_remove, key, value) = *op;
        if is_remove {
            store.remove(&key)?;
        } else {
            store.insert(key, value)?;
        }
        Ok(())
    };
    for op in &ops[..PRE] {
        if do_op(op).is_err() {
            return acked;
        }
        acked += 1;
    }
    let pending = store.begin_split(0, 1).ok();
    for op in &ops[PRE..MID] {
        if do_op(op).is_err() {
            // The VFS is dead; still drive the commit/rollback path so
            // the sweep covers its failure handling too.
            if let Some(p) = pending {
                let _ = store.commit_split(p);
            }
            return acked;
        }
        acked += 1;
    }
    if let Some(p) = pending {
        let _ = store.commit_split(p);
    }
    for op in &ops[MID..] {
        if do_op(op).is_err() {
            return acked;
        }
        acked += 1;
    }
    acked
}

/// Fault-free reference run: asserts the script itself is sound and
/// measures the total byte stream (the sweep space).
fn reference_run() -> (Vec<Model>, u64) {
    let ops = workload();
    let states = model_states(&ops);
    let mem = MemVfs::new();
    let probe = FaultVfs::new(Arc::new(mem.clone()), FaultConfig::default());
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(Arc::new(probe.clone()), Path::new("/db"), 2, config()).unwrap();
    let acked = run_script(&store, &ops);
    assert_eq!(acked, ops.len(), "reference run must ack everything");
    assert!(store.epoch() > 0, "reference run must commit the split");
    assert_eq!(store.shards(), 3, "slot 0 split into two children");
    assert!(store_equals_model(&store, &states[N_OPS]));
    drop(store);
    // And the post-split state must survive a plain reopen.
    let reopened: DurableSharded<u32, 2> =
        DurableSharded::open_with(Arc::new(mem), Path::new("/db"), 2, config()).unwrap();
    assert!(reopened.epoch() > 0);
    assert!(store_equals_model(&reopened, &states[N_OPS]));
    (states, probe.bytes_written())
}

/// THE sweep: cut the full write stream (WALs, snapshots, manifests —
/// everything) at byte offsets across the whole migration, recover,
/// and check the recovered contents are exactly a model state.
#[test]
fn migration_crash_sweep() {
    let (states, total_bytes) = reference_run();
    assert!(total_bytes > 2_000, "sweep space too small: {total_bytes}");
    let ops = workload();
    let full = std::env::var("MIGRATION_SWEEP_FULL").is_ok_and(|v| v == "1");
    let stride = if full { 1 } else { (total_bytes / 192).max(1) };

    let mut rolled_back = 0u32;
    let mut committed = 0u32;
    let mut budget = 0u64;
    while budget <= total_bytes {
        // -- Crash phase: run the script until the injected cut.
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                write_budget: Some(budget),
                ..Default::default()
            },
        );
        let acked = match DurableSharded::<u32, 2>::open_with(
            Arc::new(faulty),
            Path::new("/db"),
            2,
            config(),
        ) {
            Err(_) => 0, // crashed while creating the initial store
            Ok(store) => run_script(&store, &ops),
        };

        // -- Recovery phase: reopen the surviving bytes, fault-free.
        let store =
            DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 2, config())
                .unwrap_or_else(|e| panic!("budget {budget}: recovery must not fail: {e}"));
        if store.rolled_back_migration() {
            rolled_back += 1;
        }
        if store.epoch() > 0 {
            committed += 1;
        }
        // Deterministic landing: pre-migration state (rollback) or
        // post-migration state (commit), never in between — and in
        // both, exactly the acknowledged ops (or one more that became
        // durable inside the crashing call). Never fewer: no lost
        // acks. Never other keys: no duplicated or phantom entries.
        let candidates = [acked, (acked + 1).min(ops.len())];
        assert!(
            candidates
                .iter()
                .any(|&n| store_equals_model(&store, &states[n])),
            "budget {budget}: recovered state diverged (acked {acked}, epoch {})",
            store.epoch()
        );
        budget += stride;
    }
    // The sweep must actually exercise both recovery outcomes.
    assert!(rolled_back > 0, "sweep never rolled a migration back");
    assert!(committed > 0, "sweep never recovered a committed split");
}

/// Kill the manifest *renames* that fence the protocol: the prepare
/// record, the commit point, and the rollback each publish via one
/// atomic rename. A failed rename must leave the previous manifest
/// fully in force.
#[test]
fn migration_rename_kill_lands_pre_or_post() {
    let ops = workload();
    let states = model_states(&ops);
    let mut crashes = 0u32;
    for rename_budget in 0..8u64 {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("phshard.meta".into()),
                rename_budget: Some(rename_budget),
                ..Default::default()
            },
        );
        let acked = match DurableSharded::<u32, 2>::open_with(
            Arc::new(faulty.clone()),
            Path::new("/db"),
            2,
            config(),
        ) {
            Err(_) => 0,
            Ok(store) => run_script(&store, &ops),
        };
        if faulty.crashed() {
            crashes += 1;
        }
        let store =
            DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 2, config())
                .unwrap_or_else(|e| panic!("rename budget {rename_budget}: recovery failed: {e}"));
        let candidates = [acked, (acked + 1).min(ops.len())];
        assert!(
            candidates
                .iter()
                .any(|&n| store_equals_model(&store, &states[n])),
            "rename budget {rename_budget}: diverged (acked {acked})"
        );
    }
    assert!(crashes >= 2, "budgets never hit the manifest renames");
}

/// Kill manifest fsyncs: same deterministic landing guarantee.
#[test]
fn migration_sync_kill_lands_pre_or_post() {
    let ops = workload();
    let states = model_states(&ops);
    let mut crashes = 0u32;
    for sync_budget in 0..8u64 {
        let mem = MemVfs::new();
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("phshard.meta".into()),
                sync_budget: Some(sync_budget),
                ..Default::default()
            },
        );
        let acked = match DurableSharded::<u32, 2>::open_with(
            Arc::new(faulty.clone()),
            Path::new("/db"),
            2,
            config(),
        ) {
            Err(_) => 0,
            Ok(store) => run_script(&store, &ops),
        };
        if faulty.crashed() {
            crashes += 1;
        }
        let store =
            DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 2, config())
                .unwrap_or_else(|e| panic!("sync budget {sync_budget}: recovery failed: {e}"));
        let candidates = [acked, (acked + 1).min(ops.len())];
        assert!(
            candidates
                .iter()
                .any(|&n| store_equals_model(&store, &states[n])),
            "sync budget {sync_budget}: diverged (acked {acked})"
        );
    }
    assert!(crashes >= 2, "budgets never hit the manifest syncs");
}

/// Crash confined to the *children* being built: writes to
/// `shard-002`/`shard-003` are a re-derivable copy, so the split
/// aborts in place (no process death needed — the source VFS is
/// healthy) and the store keeps serving the pre-split topology with
/// nothing lost.
#[test]
fn child_build_failure_aborts_split_in_place() {
    let ops = workload();
    let states = model_states(&ops);
    let mem = MemVfs::new();
    let faulty = FaultVfs::new(
        Arc::new(mem.clone()),
        FaultConfig {
            target: Some("shard-002".into()),
            write_budget: Some(64), // tear the first child's snapshot
            ..Default::default()
        },
    );
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(Arc::new(faulty.clone()), Path::new("/db"), 2, config()).unwrap();
    for op in &ops[..PRE] {
        let (is_remove, key, value) = *op;
        if is_remove {
            store.remove(&key).unwrap();
        } else {
            store.insert(key, value).unwrap();
        }
    }
    let err = store.split_shard(0, 1).expect_err("child build must fail");
    assert!(matches!(err, ShardError::Store(_)), "got {err}");
    assert_eq!(store.epoch(), 0, "failed split must not commit");
    // NOTE: FaultVfs is globally dead after the fault, so further
    // *durable* ops fail — but nothing acknowledged was lost:
    drop(store);
    let store =
        DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 2, config()).unwrap();
    assert_eq!(store.epoch(), 0);
    assert!(store_equals_model(&store, &states[PRE]));
    // The in-place rollback could not persist the record-clear (the
    // faulted VFS was already dead), so recovery finished the job.
    assert!(store.rolled_back_migration());
}

/// Satellite (a): a failed per-shard checkpoint reports a typed
/// [`ShardError::Checkpoint`], never publishes topology past the
/// broken shard (the manifest is untouched by checkpoints), and a
/// reopen recovers every acknowledged write.
#[test]
fn checkpoint_failure_is_typed_and_recoverable() {
    // Size the budget to clear shard 1's initial empty snapshot but
    // tear the (larger) snapshot its checkpoint writes.
    let empty_snapshot_bytes = {
        let probe_mem = MemVfs::new();
        let probe = FaultVfs::new(
            Arc::new(probe_mem),
            FaultConfig {
                target: Some("shard-001/snapshot".into()),
                ..Default::default()
            },
        );
        let _store: DurableSharded<u32, 2> =
            DurableSharded::open_with(Arc::new(probe.clone()), Path::new("/db"), 4, config())
                .unwrap();
        probe.bytes_written()
    };
    let mem = MemVfs::new();
    let manifest_before = {
        let faulty = FaultVfs::new(
            Arc::new(mem.clone()),
            FaultConfig {
                target: Some("shard-001/snapshot".into()),
                write_budget: Some(empty_snapshot_bytes + 16),
                ..Default::default()
            },
        );
        let store: DurableSharded<u32, 2> =
            DurableSharded::open_with(Arc::new(faulty), Path::new("/db"), 4, config()).unwrap();
        for i in 0..64u64 {
            store.insert([(i % 4) << 62 | i, i * 7], i as u32).unwrap();
        }
        let manifest_before = mem.read_file(Path::new("/db/phshard.meta")).unwrap();
        let err = store.checkpoint_all().expect_err("checkpoint must fail");
        assert!(matches!(err, ShardError::Checkpoint { .. }), "got {err}");
        manifest_before
    };
    // The routing manifest never moves on a checkpoint — success or
    // failure — so a partial checkpoint cannot publish topology past
    // the failing shard.
    assert_eq!(
        mem.read_file(Path::new("/db/phshard.meta")).unwrap(),
        manifest_before
    );
    // Every shard recovers from whatever generation it reached.
    let store =
        DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 4, config()).unwrap();
    assert_eq!(store.len(), 64);
    for i in 0..64u64 {
        assert_eq!(
            store.get_with(&[(i % 4) << 62 | i, i * 7], |v| *v),
            Some(i as u32)
        );
    }
}

/// A legacy `PHSHARD1` manifest (magic + u32 shard count) opens as the
/// uniform epoch-0 topology, and the first committed split upgrades it
/// to v2 on disk.
#[test]
fn legacy_manifest_reads_and_upgrades_on_split() {
    let mem = MemVfs::new();
    let mut legacy = Vec::new();
    legacy.extend_from_slice(b"PHSHARD1");
    legacy.extend_from_slice(&2u32.to_le_bytes());
    mem.write_file(Path::new("/db/phshard.meta"), legacy);
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(Arc::new(mem.clone()), Path::new("/db"), 2, config()).unwrap();
    assert_eq!(store.epoch(), 0);
    assert_eq!(store.shards(), 2);
    for i in 0..32u64 {
        store.insert([i, i], i as u32).unwrap();
    }
    store.split_shard(0, 1).unwrap();
    drop(store);
    let manifest = mem.read_file(Path::new("/db/phshard.meta")).unwrap();
    assert_eq!(&manifest[..8], b"PHSHARD2");
    let store =
        DurableSharded::<u32, 2>::open_with(Arc::new(mem), Path::new("/db"), 2, config()).unwrap();
    assert!(store.epoch() > 0);
    assert_eq!(store.len(), 32);
}
