//! Online rebalancing: skew statistics, live hot-shard splits on both
//! layers, write shedding under a full migration backlog, and the
//! background [`Rebalancer`] splitting under concurrent traffic.

use phmetrics::Registry;
use phshard::{
    DurableSharded, RebalancePolicy, Rebalancer, ShardError, ShardedTree, SkewReport, Splittable,
};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn config() -> DurableConfig {
    DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    }
}

/// Clustered keys: everything under one top-bit prefix, so the
/// uniform router piles the whole load onto one shard.
fn clustered(n: u64) -> impl Iterator<Item = ([u64; 2], u32)> {
    (0..n).map(|i| {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 3; // top bits clear
        ([h >> 32, h & 0xFFFF_FFFF], i as u32)
    })
}

// ---------------------------------------------------- skew edge cases

#[test]
fn skew_of_empty_tree_is_one() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(4);
    let s = t.stats();
    assert_eq!(s.skew(), 1.0);
    assert_eq!(s.hottest(), None);
}

#[test]
fn skew_of_single_nonempty_shard_is_shard_count() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(4);
    // Both keys route to slot 0 (top Z-bits 00).
    t.insert([1, 1], 1);
    t.insert([2, 2], 2);
    let s = t.stats();
    assert_eq!(s.skew(), 4.0, "all load on one of four shards");
    assert_eq!(s.hottest(), Some((0, 2)));
}

#[test]
fn skew_of_equal_shards_is_one() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(4);
    // One key per quadrant: slots 0..4 get exactly one entry each.
    t.insert([0, 0], 0);
    t.insert([0, u64::MAX], 1);
    t.insert([u64::MAX, 0], 2);
    t.insert([u64::MAX, u64::MAX], 3);
    let s = t.stats();
    assert_eq!(s.per_shard, vec![1, 1, 1, 1]);
    assert_eq!(s.skew(), 1.0);
}

#[test]
fn skew_with_one_shard_is_always_one() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(1);
    for (k, v) in clustered(100) {
        t.insert(k, v);
    }
    assert_eq!(t.stats().skew(), 1.0, "S=1 cannot be skewed");
}

#[test]
fn skew_report_mirrors_shard_stats() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(4);
    for (k, v) in clustered(50) {
        t.insert(k, v);
    }
    let stats = t.stats();
    let report = SkewReport::from(&stats);
    assert_eq!(report.skew(), stats.skew());
    assert_eq!(report.hottest(), stats.hottest());
    assert_eq!(report.epoch, stats.epoch);
}

// ------------------------------------------- in-memory split behavior

#[test]
fn in_memory_split_preserves_contents_and_queries() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(2);
    let mut model = BTreeMap::new();
    for (k, v) in clustered(500) {
        t.insert(k, v);
        model.insert(k, v);
    }
    assert!(t.stats().skew() > 1.9, "clustered keys must skew");
    let (hot, _) = t.stats().hottest().unwrap();

    let report = t.split_shard(hot, 1).unwrap();
    assert_eq!(report.src, hot);
    assert_eq!(report.children.len(), 2);
    assert_eq!(report.migrated, model.len());
    assert_eq!(report.epoch, 1);

    let s = t.stats();
    assert_eq!(s.epoch, 1);
    assert_eq!(s.shards, 3);
    assert!(!s.live_slots.contains(&hot), "parent slot retired");

    // Every key still readable, full query identical, kNN sane.
    assert_eq!(t.len(), model.len());
    for (k, &v) in &model {
        assert_eq!(t.get(k), Some(v));
    }
    let mut got = t.query(&[0, 0], &[u64::MAX, u64::MAX]);
    got.sort();
    let mut want: Vec<_> = model.iter().map(|(&k, &v)| (k, v)).collect();
    want.sort();
    assert_eq!(got, want);
    let nn = t.knn(&[0, 0], 5);
    assert_eq!(nn.len(), 5);

    // A second split of one child deepens further.
    let (hot2, _) = t.stats().hottest().unwrap();
    let r2 = t.split_shard(hot2, 2).unwrap();
    assert_eq!(r2.children.len(), 4);
    assert_eq!(t.stats().epoch, 2);
    assert_eq!(t.len(), model.len());
}

#[test]
fn split_errors_are_typed() {
    let t: ShardedTree<u32, 2> = ShardedTree::new(2);
    t.insert([1, 1], 1);
    assert!(matches!(
        t.split_shard(99, 1),
        Err(ShardError::UnknownSlot { slot: 99 })
    ));
    assert!(matches!(
        t.split_shard(0, 0),
        Err(ShardError::SplitDepth { .. })
    ));
    let report = t.split_shard(0, 1).unwrap();
    // The retired parent can no longer be split.
    assert!(matches!(
        t.split_shard(0, 1),
        Err(ShardError::UnknownSlot { slot: 0 })
    ));
    // But its children can.
    t.split_shard(report.children[0], 1).unwrap();
}

// --------------------------------------------- durable split behavior

#[test]
fn durable_split_preserves_contents_across_reopen() {
    let vfs = Arc::new(MemVfs::new());
    let dir = Path::new("/db");
    let mut model = BTreeMap::new();
    {
        let store: DurableSharded<u32, 2> =
            DurableSharded::open_with(vfs.clone(), dir, 2, config()).unwrap();
        for (k, v) in clustered(400) {
            store.insert(k, v).unwrap();
            model.insert(k, v);
        }
        let (hot, _) = store.stats().hottest().unwrap();
        let report = store.split_shard(hot, 1).unwrap();
        assert_eq!(report.migrated, model.len());
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), model.len());
        // Writes after the split land on the children.
        store.insert([1u64 << 63, 7], 9999).unwrap();
        model.insert([1u64 << 63, 7], 9999);
        store.sync_all().unwrap();
    }
    let store: DurableSharded<u32, 2> = DurableSharded::open_with(vfs, dir, 2, config()).unwrap();
    assert_eq!(store.epoch(), 1, "epoch persists");
    assert_eq!(store.len(), model.len());
    for (k, &v) in &model {
        assert_eq!(store.get_with(k, |got| *got), Some(v));
    }
    let got = store.query(&[0, 0], &[u64::MAX, u64::MAX]);
    assert_eq!(got.len(), model.len());
}

#[test]
fn staged_split_backlogs_writes_and_drains_at_commit() {
    let vfs = Arc::new(MemVfs::new());
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(vfs, Path::new("/db"), 2, config()).unwrap();
    for (k, v) in clustered(100) {
        store.insert(k, v).unwrap();
    }
    let pending = store.begin_split(0, 1).unwrap();
    assert_eq!(pending.src(), 0);
    // Writes during the migration are acknowledged and readable.
    for i in 0..50u64 {
        store.insert([i, 1 << 40 | i], 7000 + i as u32).unwrap();
    }
    assert_eq!(store.get_with(&[3, 1 << 40 | 3], |v| *v), Some(7003));
    let report = store.commit_split(pending).unwrap();
    assert_eq!(report.backlog_drained, 50, "mid-migration writes drained");
    assert_eq!(store.len(), 150);
    assert_eq!(store.get_with(&[3, 1 << 40 | 3], |v| *v), Some(7003));
}

#[test]
fn full_backlog_sheds_with_typed_overloaded() {
    let vfs = Arc::new(MemVfs::new());
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(vfs, Path::new("/db"), 2, config()).unwrap();
    for (k, v) in clustered(50) {
        store.insert(k, v).unwrap();
    }
    store.set_backlog_capacity(4);
    let pending = store.begin_split(0, 1).unwrap();
    for i in 0..4u64 {
        store.insert([i, 1 << 40], i as u32).unwrap();
    }
    // Fifth mid-migration write overflows the backlog: typed shed,
    // nothing journaled, reads unaffected.
    let err = store.insert([99, 1 << 40], 99).expect_err("must shed");
    assert!(
        matches!(
            err,
            ShardError::Overloaded {
                slot: 0,
                backlog: 4
            }
        ),
        "got {err}"
    );
    assert_eq!(store.get_with(&[99, 1 << 40], |v| *v), None);
    assert_eq!(store.get_with(&[2, 1 << 40], |v| *v), Some(2));
    store.commit_split(pending).unwrap();
    // After the commit the same write is accepted.
    store.insert([99, 1 << 40], 99).unwrap();
    assert_eq!(store.len(), 55);
}

#[test]
fn abort_split_restores_pre_split_serving() {
    let vfs = Arc::new(MemVfs::new());
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(vfs, Path::new("/db"), 2, config()).unwrap();
    for (k, v) in clustered(100) {
        store.insert(k, v).unwrap();
    }
    let pending = store.begin_split(0, 1).unwrap();
    store.insert([5, 1 << 41], 555).unwrap(); // backlogged
    store.abort_split(pending).unwrap();
    assert_eq!(store.epoch(), 0, "abort keeps the old topology");
    assert_eq!(store.len(), 101, "backlogged write survives the abort");
    assert_eq!(store.get_with(&[5, 1 << 41], |v| *v), Some(555));
    // The slot is immediately splittable again.
    store.split_shard(0, 1).unwrap();
    assert_eq!(store.len(), 101);
}

// ------------------------------------------------ rebalancer end-to-end

#[test]
fn rebalancer_splits_hot_shard_under_traffic() {
    let registry = Registry::new();
    let t: Arc<ShardedTree<u32, 2>> = Arc::new(ShardedTree::with_metrics(4, 0, &registry));
    let policy = RebalancePolicy {
        max_skew: 1.5,
        min_entries: 64,
        split_bits: 1,
        interval: Duration::from_millis(1),
        ..RebalancePolicy::default()
    };
    let rebalancer = Rebalancer::spawn(Arc::clone(&t), policy);

    // Clustered ingest from two writer threads while the rebalancer
    // watches: every key lands under one top prefix.
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let t = Arc::clone(&t);
            scope.spawn(move || {
                for i in 0..3_000u64 {
                    let h = (w * 3_000 + i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 2;
                    t.insert([h >> 32, h & 0xFFFF_FFFF], i as u32);
                    if i % 64 == 0 {
                        // Reads keep flowing mid-split.
                        t.query(&[0, 0], &[1 << 30, 1 << 30]);
                    }
                }
            });
        }
        // Give the rebalancer a few sampling intervals under load.
        std::thread::sleep(Duration::from_millis(40));
    });
    let reports = rebalancer.stop();
    assert!(
        !reports.is_empty(),
        "rebalancer never split a hot shard (skew {})",
        t.stats().skew()
    );
    assert_eq!(t.len(), 6_000, "no entry lost across live splits");
    assert_eq!(t.stats().epoch, reports.last().unwrap().epoch);
    // Splits are visible to the metrics registry.
    let dump = registry.render_prometheus();
    assert!(
        dump.contains("phshard_rebalance_splits_total"),
        "rebalance instruments missing:\n{dump}"
    );
}

#[test]
fn rebalancer_is_quiescent_on_balanced_load() {
    let t: Arc<ShardedTree<u32, 2>> = Arc::new(ShardedTree::new(4));
    for i in 0..1_000u64 {
        // Spread across all four quadrants evenly.
        let q = i % 4;
        t.insert([(q >> 1) << 63 | i, (q & 1) << 63 | i], i as u32);
    }
    let policy = RebalancePolicy {
        max_skew: 2.0,
        min_entries: 64,
        interval: Duration::from_millis(1),
        ..RebalancePolicy::default()
    };
    let rebalancer = Rebalancer::spawn(Arc::clone(&t), policy);
    std::thread::sleep(Duration::from_millis(20));
    let reports = rebalancer.stop();
    assert!(reports.is_empty(), "balanced load must not trigger splits");
    assert_eq!(t.stats().epoch, 0);
}

#[test]
fn rebalancer_drives_durable_store() {
    let vfs = Arc::new(MemVfs::new());
    let store: Arc<DurableSharded<u32, 2>> =
        Arc::new(DurableSharded::open_with(vfs, Path::new("/db"), 2, config()).unwrap());
    for (k, v) in clustered(2_000) {
        store.insert(k, v).unwrap();
    }
    assert!(store.skew_report().skew() > 1.9);
    let policy = RebalancePolicy {
        max_skew: 1.5,
        min_entries: 128,
        interval: Duration::from_millis(1),
        ..RebalancePolicy::default()
    };
    let rebalancer = Rebalancer::spawn(Arc::clone(&store), policy);
    std::thread::sleep(Duration::from_millis(50));
    let reports = rebalancer.stop();
    assert!(!reports.is_empty(), "durable hot shard never split");
    assert!(store.epoch() > 0);
    assert_eq!(store.len(), 2_000);
}
