//! Differential tests: the same op stream drives a [`ShardedTree`] (at
//! shard counts 1, 2 and 8), a plain [`PhTree`], a dynamic-K
//! [`PhTreeDyn`] and a `BTreeMap` oracle — all four must agree at every
//! step. This pins down const-K vs dynamic-K parity *under the shard
//! router*: routing must never change what a key maps to, only where
//! it lives.

use phshard::{DurableSharded, ShardedTree};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use phtree::{PhTree, PhTreeDyn};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Insert([u64; 3], u32),
    Remove([u64; 3]),
    Get([u64; 3]),
}

/// Keys mixing dense low coordinates (deep trees, one shard) with
/// high-bit patterns (the bits the router actually consumes).
fn key_strategy() -> impl Strategy<Value = [u64; 3]> {
    prop_oneof![
        [0u64..16, 0u64..16, 0u64..16],
        [0u64..4, 0u64..4, 0u64..4].prop_map(|k| k.map(|v| v << 62)),
        [any::<u64>(), any::<u64>(), any::<u64>()],
        [0u32..64, 0u32..64, 0u32..64].prop_map(|k| k.map(|b| 1u64 << b)),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        1 => key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Point-op and full-scan parity across shard counts.
    #[test]
    fn sharded_matches_unsharded_and_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        for shards in [1usize, 2, 8] {
            // threads=2 exercises the pool even under proptest.
            let sharded: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 2);
            let mut plain: PhTree<u32, 3> = PhTree::new();
            let mut dynk: PhTreeDyn<u32> = PhTreeDyn::new(3);
            let mut oracle: BTreeMap<[u64; 3], u32> = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => {
                        let want = oracle.insert(k, v);
                        prop_assert_eq!(sharded.insert(k, v), want, "S={} insert {:?}", shards, k);
                        prop_assert_eq!(plain.insert(k, v), want);
                        prop_assert_eq!(dynk.insert(&k, v), want);
                    }
                    Op::Remove(k) => {
                        let want = oracle.remove(&k);
                        prop_assert_eq!(sharded.remove(&k), want, "S={} remove {:?}", shards, k);
                        prop_assert_eq!(plain.remove(&k), want);
                        prop_assert_eq!(dynk.remove(&k), want);
                    }
                    Op::Get(k) => {
                        let want = oracle.get(&k).copied();
                        prop_assert_eq!(sharded.get(&k), want, "S={} get {:?}", shards, k);
                        prop_assert_eq!(plain.get(&k).copied(), want);
                        prop_assert_eq!(dynk.get(&k).copied(), want);
                    }
                }
                prop_assert_eq!(sharded.len(), oracle.len());
            }
            // Full-space window = full contents, in the same global
            // Z-order as the unsharded tree (shard ids are Z-prefixes).
            let got = sharded.query(&[0; 3], &[u64::MAX; 3]);
            let want: Vec<([u64; 3], u32)> =
                plain.query(&[0; 3], &[u64::MAX; 3]).map(|(k, &v)| (k, v)).collect();
            prop_assert_eq!(got, want, "S={} full scan order", shards);
        }
    }

    /// Window-query parity (contents *and* order) plus the pruning
    /// soundness invariant, across shard counts.
    #[test]
    fn sharded_window_queries_match(
        keys in proptest::collection::vec(key_strategy(), 1..150),
        qa in key_strategy(),
        qb in key_strategy(),
    ) {
        let min: [u64; 3] = std::array::from_fn(|d| qa[d].min(qb[d]));
        let max: [u64; 3] = std::array::from_fn(|d| qa[d].max(qb[d]));
        let mut plain: PhTree<u32, 3> = PhTree::new();
        for (i, &k) in keys.iter().enumerate() {
            plain.insert(k, i as u32);
        }
        let want: Vec<([u64; 3], u32)> = plain.query(&min, &max).map(|(k, &v)| (k, v)).collect();
        for shards in [1usize, 2, 8] {
            let sharded: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 2);
            for (i, &k) in keys.iter().enumerate() {
                sharded.insert(k, i as u32);
            }
            prop_assert_eq!(sharded.query(&min, &max), want.clone(), "S={}", shards);
            prop_assert_eq!(sharded.query_count(&min, &max), want.len());
            // Pruning soundness: every pruned shard's box is disjoint
            // from the query box (the acceptance criterion).
            let matching = sharded.router().matching_shards(&min, &max);
            for s in 0..shards {
                let (bmin, bmax) = sharded.router().shard_box(s);
                let intersects = (0..3).all(|d| bmin[d] <= max[d] && bmax[d] >= min[d]);
                prop_assert_eq!(
                    matching.contains(&s),
                    intersects,
                    "S={} shard {} pruning disagrees with geometry", shards, s
                );
            }
        }
    }

    /// kNN parity: the sharded bounded heap merge returns the same
    /// distance profile as the single tree, across shard counts.
    #[test]
    fn sharded_knn_matches(
        keys in proptest::collection::vec(key_strategy(), 1..100),
        center in key_strategy(),
        n in 1usize..8,
    ) {
        let mut plain: PhTree<u32, 3> = PhTree::new();
        for (i, &k) in keys.iter().enumerate() {
            plain.insert(k, i as u32);
        }
        let want: Vec<f64> = plain.knn(&center, n).into_iter().map(|nb| nb.dist).collect();
        for shards in [1usize, 2, 8] {
            let sharded: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 2);
            for (i, &k) in keys.iter().enumerate() {
                sharded.insert(k, i as u32);
            }
            let got: Vec<f64> = sharded.knn(&center, n).into_iter().map(|e| e.2).collect();
            prop_assert_eq!(got.len(), want.len(), "S={}", shards);
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-9, "S={} dist {} vs {}", shards, g, w);
            }
        }
    }

    /// bulk_load is equivalent to sequential inserts — into empty trees
    /// (the bottom-up bulk-build path) and into pre-populated trees
    /// (the per-key fallback), across shard counts, with duplicate keys
    /// and empty/singleton batches included in the generated cases.
    #[test]
    fn bulk_load_equals_inserts(
        keys in proptest::collection::vec(key_strategy(), 0..150),
        split in 0usize..150,
    ) {
        let items: Vec<([u64; 3], u32)> =
            keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let split = split.min(items.len());
        for shards in [1usize, 2, 8] {
            let bulk: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 2);
            // Pre-populate a prefix one by one, then bulk the rest:
            // shards untouched by the prefix take the bottom-up path,
            // the others the insert-loop fallback.
            let mut new = 0;
            for &(k, v) in &items[..split] {
                if bulk.insert(k, v).is_none() {
                    new += 1;
                }
            }
            new += bulk.bulk_load(items[split..].to_vec());
            let seq: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 0);
            let mut fresh = 0;
            for (k, v) in items.clone() {
                if seq.insert(k, v).is_none() {
                    fresh += 1;
                }
            }
            prop_assert_eq!(new, fresh, "S={} new-key count", shards);
            prop_assert_eq!(bulk.len(), seq.len());
            prop_assert_eq!(
                bulk.query(&[0; 3], &[u64::MAX; 3]),
                seq.query(&[0; 3], &[u64::MAX; 3])
            );
        }
    }

    /// Snapshot consistency on the in-memory layer: a snapshot pinned
    /// mid-op-stream equals the model frozen at exactly that point — no
    /// later write, remove or batch leaks in, across shard counts.
    #[test]
    fn snapshot_equals_model_frozen_at_cut(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        cut in 0usize..80,
    ) {
        let cut = cut.min(ops.len());
        for shards in [1usize, 2, 8] {
            let sharded: ShardedTree<u32, 3> = ShardedTree::with_threads(shards, 2);
            let mut oracle: BTreeMap<[u64; 3], u32> = BTreeMap::new();
            for op in &ops[..cut] {
                match *op {
                    Op::Insert(k, v) => { oracle.insert(k, v); sharded.insert(k, v); }
                    Op::Remove(k) => { oracle.remove(&k); sharded.remove(&k); }
                    Op::Get(_) => {}
                }
            }
            let frozen = oracle.clone();
            let snap = sharded.snapshot();
            for op in &ops[cut..] {
                match *op {
                    Op::Insert(k, v) => { oracle.insert(k, v); sharded.insert(k, v); }
                    Op::Remove(k) => { oracle.remove(&k); sharded.remove(&k); }
                    Op::Get(k) => {
                        prop_assert_eq!(sharded.get(&k), oracle.get(&k).copied());
                    }
                }
            }
            prop_assert_eq!(snap.len(), frozen.len(), "S={} snapshot len", shards);
            let seen: BTreeMap<[u64; 3], u32> =
                snap.query(&[0; 3], &[u64::MAX; 3]).into_iter().collect();
            prop_assert_eq!(&seen, &frozen, "S={} snapshot contents", shards);
            for op in &ops {
                let k = match *op { Op::Insert(k, _) | Op::Remove(k) | Op::Get(k) => k };
                prop_assert_eq!(snap.get(&k).copied(), frozen.get(&k).copied(),
                    "S={} snapshot get {:?}", shards, k);
            }
            // The live tree kept moving past the pinned cut.
            prop_assert_eq!(sharded.len(), oracle.len(), "S={} live len", shards);
        }
    }

    /// The same snapshot-at-cut property on the durable layer (WAL-
    /// backed cells publish through the same machinery).
    #[test]
    fn durable_snapshot_equals_model_frozen_at_cut(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        cut in 0usize..50,
    ) {
        let cut = cut.min(ops.len());
        let config = DurableConfig {
            checkpoint_bytes: u64::MAX,
            sync_writes: false,
            retry: None,
        };
        for shards in [1usize, 2, 8] {
            let vfs = Arc::new(MemVfs::new());
            let store: DurableSharded<u32, 3> =
                DurableSharded::open_with(vfs, Path::new("/db"), shards, config.clone()).unwrap();
            let mut oracle: BTreeMap<[u64; 3], u32> = BTreeMap::new();
            for op in &ops[..cut] {
                match *op {
                    Op::Insert(k, v) => { oracle.insert(k, v); store.insert(k, v).unwrap(); }
                    Op::Remove(k) => { oracle.remove(&k); store.remove(&k).unwrap(); }
                    Op::Get(_) => {}
                }
            }
            let frozen = oracle.clone();
            let snap = store.snapshot();
            for op in &ops[cut..] {
                match *op {
                    Op::Insert(k, v) => { oracle.insert(k, v); store.insert(k, v).unwrap(); }
                    Op::Remove(k) => { oracle.remove(&k); store.remove(&k).unwrap(); }
                    Op::Get(k) => {
                        prop_assert_eq!(store.get_with(&k, |v| *v), oracle.get(&k).copied());
                    }
                }
            }
            prop_assert_eq!(snap.len(), frozen.len(), "S={} snapshot len", shards);
            let seen: BTreeMap<[u64; 3], u32> =
                snap.query(&[0; 3], &[u64::MAX; 3]).into_iter().collect();
            prop_assert_eq!(&seen, &frozen, "S={} snapshot contents", shards);
            prop_assert_eq!(store.len(), oracle.len(), "S={} live len", shards);
        }
    }
}
