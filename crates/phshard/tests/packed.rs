//! Packed-checkpoint round trip: a consistent cut of a live sharded
//! store, packed to per-shard artifacts + manifest, must reopen
//! read-only (on both page-cache backends) and answer the full read
//! surface identically to the snapshot it froze — including after a
//! shard split changed the topology.

use phpack::CacheMode;
use phshard::{DurableSharded, PackedShards, ShardError, PACKED_MANIFEST};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use std::path::Path;
use std::sync::Arc;

fn cfg() -> DurableConfig {
    DurableConfig {
        checkpoint_bytes: 1 << 20,
        sync_writes: false,
        retry: None,
    }
}

fn key(i: u64) -> [u64; 2] {
    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    [h, h.rotate_left(32)]
}

fn check_matches(store: &DurableSharded<u64, 2>, packed: &PackedShards<u64, 2>, n: u64) {
    let snap = store.snapshot();
    assert_eq!(packed.len(), snap.len());
    assert_eq!(packed.epoch(), snap.epoch());
    assert_eq!(packed.shards(), snap.shards());
    for i in 0..n {
        let k = key(i);
        assert_eq!(packed.get(&k).unwrap(), snap.get(&k).copied(), "get {k:?}");
        assert_eq!(packed.contains(&k).unwrap(), snap.contains(&k));
    }
    let (lo, hi) = ([0u64; 2], [u64::MAX; 2]);
    assert_eq!(packed.query(&lo, &hi).unwrap(), snap.query(&lo, &hi));
    assert_eq!(
        packed.query_count(&lo, &hi).unwrap(),
        snap.query_count(&lo, &hi)
    );
    let window = ([0u64, 0], [u64::MAX / 3, u64::MAX / 2]);
    assert_eq!(
        packed.query(&window.0, &window.1).unwrap(),
        snap.query(&window.0, &window.1)
    );
    for c in [[0u64, 0], [u64::MAX / 2; 2], key(7)] {
        let got = packed.knn(&c, 9).unwrap();
        let want = snap.knn(&c, 9);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0, "knn key @{c:?}");
            assert_eq!(g.1, w.1);
            assert_eq!(g.2.to_bits(), w.2.to_bits());
        }
    }
    let st = packed.stats();
    let want = snap.stats();
    assert_eq!(st.entries, want.entries);
    assert_eq!(st.per_shard, want.per_shard);
    assert_eq!(st.live_slots, want.live_slots);
    assert_eq!(st.epoch, want.epoch);
}

#[test]
fn packed_checkpoint_round_trips() {
    let vfs = Arc::new(MemVfs::new());
    let store: DurableSharded<u64, 2> =
        DurableSharded::open_with(vfs.clone(), Path::new("/store"), 4, cfg()).unwrap();
    let n = 2_000u64;
    for i in 0..n {
        store.insert(key(i), i).unwrap();
    }
    for i in (0..n).step_by(5) {
        store.remove(&key(i)).unwrap();
    }

    let dir = Path::new("/packed");
    let ck = store.checkpoint_packed(dir).unwrap();
    assert_eq!(ck.shards, 4);
    assert_eq!(ck.entries as usize, store.len());
    assert!(ck.file_bytes > 0);

    for mode in [CacheMode::Resident, CacheMode::Lru { pages: 4 }] {
        let packed: PackedShards<u64, 2> = PackedShards::open_in(&*vfs, dir, mode).unwrap();
        check_matches(&store, &packed, n);
    }

    // Writes continuing on the live store do not disturb the artifact:
    // it stays pinned at its cut.
    let frozen_len = store.len();
    for i in n..n + 100 {
        store.insert(key(i), i).unwrap();
    }
    let packed: PackedShards<u64, 2> =
        PackedShards::open_in(&*vfs, dir, CacheMode::Resident).unwrap();
    assert_eq!(packed.len(), frozen_len);
}

#[test]
fn packed_checkpoint_follows_topology_changes() {
    let vfs = Arc::new(MemVfs::new());
    let store: DurableSharded<u64, 2> =
        DurableSharded::open_with(vfs.clone(), Path::new("/store"), 2, cfg()).unwrap();
    for i in 0..1_500u64 {
        store.insert(key(i), i).unwrap();
    }
    // Split the hottest shard: the manifest must carry the new trie.
    let hot = store.stats();
    let slot = *hot
        .live_slots
        .iter()
        .max_by_key(|&&s| hot.per_shard[hot.live_slots.iter().position(|&x| x == s).unwrap()])
        .unwrap();
    store.split_shard(slot, 1).unwrap();

    let dir = Path::new("/packed2");
    let ck = store.checkpoint_packed(dir).unwrap();
    assert_eq!(ck.shards, store.stats().shards);
    let packed: PackedShards<u64, 2> =
        PackedShards::open_in(&*vfs, dir, CacheMode::Resident).unwrap();
    check_matches(&store, &packed, 1_500);
    assert!(packed.epoch() > 0);
}

#[test]
fn packed_open_rejects_missing_or_torn_manifest() {
    let vfs = MemVfs::new();
    // No manifest at all.
    assert!(
        PackedShards::<u64, 2>::open_in(&vfs, Path::new("/nowhere"), CacheMode::Resident).is_err()
    );

    // A checkpoint whose manifest byte got flipped must be refused.
    let store: DurableSharded<u64, 2> =
        DurableSharded::open_with(Arc::new(MemVfs::new()), Path::new("/s"), 2, cfg()).unwrap();
    for i in 0..200u64 {
        store.insert(key(i), i).unwrap();
    }
    let dir = Path::new("/p");
    phshard::write_packed_checkpoint(&store.snapshot(), &vfs, dir).unwrap();
    assert!(vfs.corrupt(&dir.join(PACKED_MANIFEST), 40, 0x10));
    assert!(
        PackedShards::<u64, 2>::open_in(&vfs, dir, CacheMode::Resident).is_err(),
        "corrupt manifest must not open"
    );
}

#[test]
fn read_only_error_is_typed() {
    // The serving layer maps write attempts against packed backends to
    // this variant; it must be constructible and display usefully.
    let e = ShardError::ReadOnly;
    assert!(e.to_string().contains("read-only"));
}
