//! Integration tests for the serving layer's instrument wiring and
//! the `ShardStats::skew` routing diagnostic.

use phmetrics::Registry;
use phshard::ShardedTree;

#[test]
fn clustered_keys_provably_skew_the_router() {
    // The Z-prefix router shards on the *top* interleaved bits. Keys
    // clustered in the low half of every dimension share the top bit
    // pattern 0...0, so every one of them routes to shard 0 — the
    // router's provable worst case.
    let shards = 8;
    let t: ShardedTree<u32, 2> = ShardedTree::with_threads(shards, 0);
    for i in 0..400u64 {
        t.insert([i, i * 31 % 997], i as u32); // all far below 2^63
    }
    let stats = t.stats();
    assert_eq!(stats.per_shard[0], stats.entries, "all keys on shard 0");
    assert_eq!(stats.skew(), shards as f64, "max/mean == shard count");

    // Spreading keys across all top-bit prefixes balances the router:
    // one key per 3-bit Z-prefix per round. For K=2 the first three
    // interleaved bits are (d0 bit63, d1 bit63, d0 bit62).
    let u: ShardedTree<u32, 2> = ShardedTree::with_threads(shards, 0);
    for i in 0..400u64 {
        let p = i % 8;
        let d0 = ((p >> 2) & 1) << 63 | (p & 1) << 62;
        let d1 = ((p >> 1) & 1) << 63;
        u.insert([d0 | i, d1 | i], i as u32);
    }
    let stats = u.stats();
    assert!(
        stats.per_shard.iter().all(|&n| n == stats.entries / shards),
        "balanced: {:?}",
        stats.per_shard
    );
    assert_eq!(stats.skew(), 1.0);

    // Empty tree: skew defined as 1.0 (no imbalance).
    let e: ShardedTree<u32, 2> = ShardedTree::with_threads(shards, 0);
    assert_eq!(e.stats().skew(), 1.0);
}

#[test]
fn sharded_tree_records_into_registry() {
    let reg = Registry::new();
    let t: ShardedTree<u64, 3> = ShardedTree::with_metrics(4, 2, &reg);

    for i in 0..100u64 {
        t.insert([i, i * 7, i * 13], i);
    }
    for i in 0..50u64 {
        assert_eq!(t.get(&[i, i * 7, i * 13]), Some(i));
    }
    assert!(t.remove(&[0, 0, 0]).is_some());
    let hits = t.query(&[0, 0, 0], &[u64::MAX, u64::MAX, u64::MAX]);
    assert_eq!(hits.len(), 99);
    assert_eq!(
        t.query_count(&[0, 0, 0], &[u64::MAX, u64::MAX, u64::MAX]),
        99
    );
    let nn = t.knn(&[5, 35, 65], 3);
    assert_eq!(nn.len(), 3);
    let loaded = t.bulk_load((1000..1100u64).map(|i| ([i, i, i], i)).collect());
    assert_eq!(loaded, 100);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("phshard_ops_total{op=\"insert\"}"), Some(100));
    assert_eq!(snap.counter("phshard_ops_total{op=\"get\"}"), Some(50));
    assert_eq!(snap.counter("phshard_ops_total{op=\"remove\"}"), Some(1));
    assert_eq!(snap.counter("phshard_ops_total{op=\"query\"}"), Some(1));
    assert_eq!(
        snap.counter("phshard_ops_total{op=\"query_count\"}"),
        Some(1)
    );
    assert_eq!(snap.counter("phshard_ops_total{op=\"knn\"}"), Some(1));
    assert_eq!(snap.counter("phshard_ops_total{op=\"bulk_load\"}"), Some(1));

    // Latency histograms saw exactly as many samples as ops ran.
    let lat = snap
        .histogram("phshard_op_latency_ns{op=\"insert\"}")
        .expect("insert latency histogram");
    assert_eq!(lat.count(), 100);
    assert!(lat.max() > 0);

    // Fan-out width: both full-space window ops matched all 4 shards.
    let fanout = snap.histogram("phshard_query_fanout").expect("fanout");
    assert_eq!(fanout.count(), 2);
    assert_eq!(fanout.max(), 7, "bucket upper bound for value 4");

    // kNN merge candidates: at most shards * k, at least k.
    let merge = snap
        .histogram("phshard_knn_merge_candidates")
        .expect("merge candidates");
    assert_eq!(merge.count(), 1);

    // Per-shard routing counters cover every single-key op and the
    // bulk partition sizes: 100 inserts + 50 gets + 1 remove + 100
    // bulk-loaded keys.
    let routed: u64 = (0..4)
        .map(|s| {
            snap.counter(&format!("phshard_shard_ops_total{{shard=\"{s}\"}}"))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(routed, 100 + 50 + 1 + 100);

    // The pool ran the fan-out tasks and never panicked.
    assert!(snap.counter("phshard_pool_tasks_total").unwrap_or(0) > 0);
    assert_eq!(snap.counter("phshard_pool_task_panics_total"), Some(0));
    let depth = snap.gauge("phshard_pool_queue_depth").expect("queue depth");
    assert!(depth.high_water >= 0);

    // The exposition renders every instrument family.
    let text = reg.render_prometheus();
    for needle in [
        "# TYPE phshard_ops_total counter",
        "# TYPE phshard_op_latency_ns histogram",
        "# TYPE phshard_shard_ops_total counter",
        "# TYPE phshard_query_fanout histogram",
        "# TYPE phshard_pool_queue_depth gauge",
        "phshard_pool_queue_depth_peak",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn unmetered_tree_still_works_and_registry_stays_empty() {
    let t: ShardedTree<u8, 2> = ShardedTree::with_threads(4, 1);
    t.insert([1, 2], 3);
    assert_eq!(t.get(&[1, 2]), Some(3));
    assert_eq!(t.query(&[0, 0], &[10, 10]).len(), 1);
    // A disabled registry hands out no-op handles and renders nothing.
    let reg = Registry::disabled();
    let d: ShardedTree<u8, 2> = ShardedTree::with_metrics(2, 0, &reg);
    d.insert([5, 5], 9);
    assert_eq!(d.get(&[5, 5]), Some(9));
    assert_eq!(reg.render_prometheus(), "");
}

/// Pins the MVCC-lite publication instruments on the scrape:
/// `phshard_root_swaps_total` (one per write/batch/split publication),
/// `phshard_snapshot_live` (live snapshot handles, with peak), and
/// `phshard_root_age_ns` (reader-observed age of the published root).
#[test]
fn mvcc_instruments_record_and_render() {
    let reg = Registry::new();
    let t: ShardedTree<u64, 2> = ShardedTree::with_metrics(4, 0, &reg);

    // 10 single-key writes → 10 root publications.
    for i in 0..10u64 {
        t.insert([i, i * 3], i); // low keys: all on shard 0
    }
    assert_eq!(reg.snapshot().counter("phshard_root_swaps_total"), Some(10));

    // A split republishes through its children: +2 swaps for 2 children.
    t.split_shard(0, 1).unwrap();
    assert_eq!(reg.snapshot().counter("phshard_root_swaps_total"), Some(12));

    // Every lock-free get records the age of the root it served from.
    for i in 0..5u64 {
        assert_eq!(t.get(&[i, i * 3]), Some(i));
    }
    let snap = reg.snapshot();
    let age = snap.histogram("phshard_root_age_ns").expect("root age");
    assert_eq!(age.count(), 5);

    // Live-snapshot gauge follows pin/drop, and the peak sticks.
    let s1 = t.snapshot();
    let s2 = t.snapshot();
    let live = reg.snapshot();
    let g = live.gauge("phshard_snapshot_live").expect("snapshot gauge");
    assert_eq!(g.value, 2);
    drop(s1);
    drop(s2);
    let live = reg.snapshot();
    let g = live.gauge("phshard_snapshot_live").expect("snapshot gauge");
    assert_eq!(g.value, 0);
    assert!(g.high_water >= 2);

    // All three families render in the Prometheus exposition.
    let text = reg.render_prometheus();
    for needle in [
        "# TYPE phshard_root_swaps_total counter",
        "# TYPE phshard_snapshot_live gauge",
        "phshard_snapshot_live_peak",
        "# TYPE phshard_root_age_ns histogram",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The durable layer publishes through the same instruments.
    let dreg = Registry::new();
    let vfs = std::sync::Arc::new(phstore::vfs::MemVfs::new());
    let cfg = phstore::DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    };
    let store: phshard::DurableSharded<u64, 2> =
        phshard::DurableSharded::open_observed(vfs, std::path::Path::new("/m"), 2, cfg, &dreg)
            .unwrap();
    for i in 0..4u64 {
        store.insert([i << 62, i], i).unwrap();
    }
    store.get_with(&[0, 0], |v| *v);
    let dsnap = dreg.snapshot();
    assert_eq!(dsnap.counter("phshard_root_swaps_total"), Some(4));
    assert_eq!(
        dsnap.histogram("phshard_root_age_ns").map(|h| h.count()),
        Some(1)
    );
}
