//! Pins the MVCC-lite contract: the read path acquires **zero** data
//! locks. `get`/`contains`/`query`/`query_count`/`knn`/`stats` and
//! every read on a pinned [`Snapshot`] must serve entirely from
//! published tree versions; a lock acquisition anywhere on those paths
//! is a regression this test turns into a failure.
//!
//! The counter ([`phshard::data_lock_acquisitions`]) is a global,
//! debug-only tally of shard state-lock acquisitions — it counts pool
//! workers too, so a fan-out that sneaks a lock in a task is caught.
//! Because the counter is global, this file holds exactly ONE `#[test]`
//! fn: a second test running in parallel would pollute the delta.

#![cfg(debug_assertions)]

use phshard::{DurableSharded, ShardedTree, Snapshot};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use std::path::Path;
use std::sync::Arc;

fn keys(n: u64) -> impl Iterator<Item = ([u64; 2], u32)> {
    (0..n).map(|i| {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ([h >> 32, h & 0xFFFF_FFFF], i as u32)
    })
}

/// Runs every read shape against `get`-style closures and a snapshot,
/// returning a value so the reads can't be optimised away.
fn exercise_snapshot(snap: &Snapshot<u32, 2>, probe: &[u64; 2]) -> usize {
    let mut touched = 0usize;
    touched += snap.get(probe).map(|v| *v as usize).unwrap_or(0);
    touched += usize::from(snap.contains(probe));
    touched += snap.len();
    touched += snap.query(&[0, 0], &[u64::MAX, u64::MAX]).len();
    touched += snap.query_count(&[0, 0], &[u64::MAX >> 1, u64::MAX]);
    touched += snap.knn(probe, 3).len();
    touched += snap.stats().entries;
    touched
}

#[test]
fn read_path_acquires_zero_data_locks() {
    // ---- in-memory layer ----
    let tree: ShardedTree<u32, 2> = ShardedTree::new(4);
    let mut probe = [0u64; 2];
    for (k, v) in keys(500) {
        tree.insert(k, v);
        probe = k;
    }

    let before = phshard::data_lock_acquisitions();
    let mut touched = 0usize;
    touched += tree.get(&probe).map(|v| v as usize).unwrap_or(0);
    touched += usize::from(tree.contains(&probe));
    touched += tree.len();
    touched += tree.query(&[0, 0], &[u64::MAX, u64::MAX]).len();
    touched += tree.query_count(&[0, 0], &[u64::MAX >> 1, u64::MAX]);
    touched += tree.knn(&probe, 3).len();
    touched += tree.stats().entries;
    let snap = tree.snapshot();
    touched += exercise_snapshot(&snap, &probe);
    drop(snap);
    assert!(touched > 0, "reads must have observed data");
    assert_eq!(
        phshard::data_lock_acquisitions(),
        before,
        "in-memory read path acquired a data lock"
    );

    // ---- durable layer ----
    let vfs = Arc::new(MemVfs::new());
    let config = DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    };
    let store: DurableSharded<u32, 2> =
        DurableSharded::open_with(vfs, Path::new("/db"), 4, config).unwrap();
    for (k, v) in keys(500) {
        store.insert(k, v).unwrap();
        probe = k;
    }

    let before = phshard::data_lock_acquisitions();
    let mut touched = 0usize;
    touched += store.get_with(&probe, |v| *v as usize).unwrap_or(0);
    touched += usize::from(store.contains(&probe));
    touched += store.len();
    touched += store.query(&[0, 0], &[u64::MAX, u64::MAX]).len();
    touched += store.knn(&probe, 3).len();
    touched += store.stats().entries;
    let snap = store.snapshot();
    touched += exercise_snapshot(&snap, &probe);
    drop(snap);
    assert!(touched > 0, "reads must have observed data");
    assert_eq!(
        phshard::data_lock_acquisitions(),
        before,
        "durable read path acquired a data lock"
    );
}
