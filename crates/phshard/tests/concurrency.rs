//! Concurrency stress: many writers and readers sharing one
//! [`ShardedTree`], plus durable-mode recovery checks.

use phshard::{DurableSharded, ShardedTree};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use std::path::Path;
use std::sync::Arc;

#[test]
fn sharded_tree_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedTree<u64, 3>>();
    assert_send_sync::<ShardedTree<String, 2>>();
    assert_send_sync::<DurableSharded<u64, 3>>();
}

/// Writers fill disjoint key ranges while readers continuously run
/// window queries, kNN and point reads. Afterwards the contents must
/// be exactly the union of all writes — nothing lost, nothing torn.
#[test]
fn concurrent_writers_and_readers() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    let tree: Arc<ShardedTree<u64, 3>> = Arc::new(ShardedTree::with_threads(8, 2));

    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread across shards: mix high bits from a hash.
                    let h = (w * PER_WRITER + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let key = [h, h.rotate_left(21), h.rotate_left(42)];
                    assert_eq!(tree.insert(key, w), None, "writers own disjoint keys");
                    if i % 7 == 0 {
                        assert_eq!(tree.get(&key), Some(w), "read-your-write");
                    }
                }
            });
        }
        for _ in 0..3 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                let mut last_len = 0usize;
                for _ in 0..50 {
                    // len never decreases (insert-only workload) —
                    // read-committed still forbids going backwards
                    // past what this thread already observed... per
                    // shard. Cross-shard sums are monotone here since
                    // every shard only grows.
                    let len = tree.len();
                    assert!(len >= last_len, "insert-only len went backwards");
                    last_len = len;
                    let hits = tree.query(&[0; 3], &[u64::MAX >> 1; 3]);
                    assert!(hits.len() <= len);
                    let nn = tree.knn(&[u64::MAX / 2; 3], 3);
                    assert!(nn.len() <= 3);
                }
            });
        }
    });

    assert_eq!(tree.len(), WRITERS * PER_WRITER as usize);
    let stats = tree.stats();
    assert_eq!(stats.entries, WRITERS * PER_WRITER as usize);
    assert_eq!(stats.shards, 8);
    // The hash mixes high bits, so every shard should hold something.
    assert!(
        stats.per_shard.iter().all(|&n| n > 0),
        "routing imbalance: {:?}",
        stats.per_shard
    );
    // Full-space queries scan all shards; the half-space ones prune.
    assert!(stats.shards_scanned > 0);
}

/// Removals racing point reads on other shards: the per-key result is
/// always either the old or the new state, never garbage.
#[test]
fn concurrent_remove_and_get() {
    let tree: Arc<ShardedTree<u64, 2>> = Arc::new(ShardedTree::with_threads(4, 2));
    let n = 4_000u64;
    for i in 0..n {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        tree.insert([h, h.rotate_left(32)], i);
    }
    std::thread::scope(|s| {
        let remover = Arc::clone(&tree);
        s.spawn(move || {
            for i in (0..n).step_by(2) {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                assert_eq!(remover.remove(&[h, h.rotate_left(32)]), Some(i));
            }
        });
        for _ in 0..3 {
            let reader = Arc::clone(&tree);
            s.spawn(move || {
                for i in (1..n).step_by(2) {
                    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    // Odd keys are never removed.
                    assert_eq!(reader.get(&[h, h.rotate_left(32)]), Some(i));
                }
            });
        }
    });
    assert_eq!(tree.len(), n as usize / 2);
}

#[test]
fn durable_sharded_recovers_all_shards() {
    let vfs = Arc::new(MemVfs::new());
    let dir = Path::new("/store");
    let cfg = DurableConfig {
        checkpoint_bytes: 1 << 14, // force some checkpoints
        sync_writes: false,
        retry: None,
    };
    let n = 1_000u64;
    {
        let store: DurableSharded<u64, 2> =
            DurableSharded::open_with(vfs.clone(), dir, 4, cfg.clone()).unwrap();
        assert_eq!(store.shards(), 4);
        for i in 0..n {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            store.insert([h, h.rotate_left(32)], i).unwrap();
        }
        for i in (0..n).step_by(3) {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            store.remove(&[h, h.rotate_left(32)]).unwrap();
        }
        store.sync_all().unwrap();
    } // drop without checkpoint: recovery must replay WALs

    let store: DurableSharded<u64, 2> =
        DurableSharded::open_with(vfs.clone(), dir, 4, cfg.clone()).unwrap();
    let expected = (n as usize) - n.div_ceil(3) as usize;
    assert_eq!(store.len(), expected);
    for i in 0..n {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let want = if i % 3 == 0 { None } else { Some(i) };
        assert_eq!(store.get_with(&[h, h.rotate_left(32)], |v| *v), want);
    }
    assert_eq!(store.recovery_stats().len(), 4);
    // Window queries work over the recovered shards and prune like the
    // in-memory layer.
    let full = store.query(&[0; 2], &[u64::MAX; 2]);
    assert_eq!(full.len(), expected);

    // Shard-count mismatch is refused, not silently misrouted.
    let wrong = DurableSharded::<u64, 2>::open_with(vfs.clone(), dir, 8, cfg);
    assert!(wrong.is_err(), "reopening with 8 shards must fail");
}

#[test]
fn durable_sharded_checkpoint_and_reopen() {
    let vfs = Arc::new(MemVfs::new());
    let dir = Path::new("/cp");
    let cfg = DurableConfig {
        checkpoint_bytes: u64::MAX, // manual checkpoints only
        sync_writes: false,
        retry: None,
    };
    {
        let store: DurableSharded<String, 3> =
            DurableSharded::open_with(vfs.clone(), dir, 2, cfg.clone()).unwrap();
        for i in 0..200u64 {
            store.insert([i << 56, i, i * 3], format!("v{i}")).unwrap();
        }
        let gens = store.checkpoint_all().unwrap();
        assert_eq!(gens.len(), 2);
        assert!(gens.iter().all(|&(_, g)| g >= 1));
    }
    let store: DurableSharded<String, 3> = DurableSharded::open_with(vfs, dir, 2, cfg).unwrap();
    assert_eq!(store.len(), 200);
    // Checkpointed shards replay nothing.
    assert!(store.recovery_stats().iter().all(|r| r.replayed_ops == 0));
    assert_eq!(
        store
            .get_with(&[5u64 << 56, 5, 15], String::clone)
            .as_deref(),
        Some("v5")
    );
}
