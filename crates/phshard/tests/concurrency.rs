//! Concurrency stress: many writers and readers sharing one
//! [`ShardedTree`], plus durable-mode recovery checks.

use phshard::{DurableSharded, ShardedTree};
use phstore::vfs::MemVfs;
use phstore::DurableConfig;
use std::path::Path;
use std::sync::Arc;

#[test]
fn sharded_tree_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedTree<u64, 3>>();
    assert_send_sync::<ShardedTree<String, 2>>();
    assert_send_sync::<DurableSharded<u64, 3>>();
}

/// Writers fill disjoint key ranges while readers continuously run
/// window queries, kNN and point reads. Afterwards the contents must
/// be exactly the union of all writes — nothing lost, nothing torn.
#[test]
fn concurrent_writers_and_readers() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 2_000;
    let tree: Arc<ShardedTree<u64, 3>> = Arc::new(ShardedTree::with_threads(8, 2));

    std::thread::scope(|s| {
        for w in 0..WRITERS as u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Spread across shards: mix high bits from a hash.
                    let h = (w * PER_WRITER + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let key = [h, h.rotate_left(21), h.rotate_left(42)];
                    assert_eq!(tree.insert(key, w), None, "writers own disjoint keys");
                    if i % 7 == 0 {
                        assert_eq!(tree.get(&key), Some(w), "read-your-write");
                    }
                }
            });
        }
        for _ in 0..3 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                let mut last_len = 0usize;
                for _ in 0..50 {
                    // len never decreases (insert-only workload) —
                    // read-committed still forbids going backwards
                    // past what this thread already observed... per
                    // shard. Cross-shard sums are monotone here since
                    // every shard only grows.
                    let len = tree.len();
                    assert!(len >= last_len, "insert-only len went backwards");
                    last_len = len;
                    let hits = tree.query(&[0; 3], &[u64::MAX >> 1; 3]);
                    assert!(hits.len() <= len);
                    let nn = tree.knn(&[u64::MAX / 2; 3], 3);
                    assert!(nn.len() <= 3);
                }
            });
        }
    });

    assert_eq!(tree.len(), WRITERS * PER_WRITER as usize);
    let stats = tree.stats();
    assert_eq!(stats.entries, WRITERS * PER_WRITER as usize);
    assert_eq!(stats.shards, 8);
    // The hash mixes high bits, so every shard should hold something.
    assert!(
        stats.per_shard.iter().all(|&n| n > 0),
        "routing imbalance: {:?}",
        stats.per_shard
    );
    // Full-space queries scan all shards; the half-space ones prune.
    assert!(stats.shards_scanned > 0);
}

/// Removals racing point reads on other shards: the per-key result is
/// always either the old or the new state, never garbage.
#[test]
fn concurrent_remove_and_get() {
    let tree: Arc<ShardedTree<u64, 2>> = Arc::new(ShardedTree::with_threads(4, 2));
    let n = 4_000u64;
    for i in 0..n {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        tree.insert([h, h.rotate_left(32)], i);
    }
    std::thread::scope(|s| {
        let remover = Arc::clone(&tree);
        s.spawn(move || {
            for i in (0..n).step_by(2) {
                let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                assert_eq!(remover.remove(&[h, h.rotate_left(32)]), Some(i));
            }
        });
        for _ in 0..3 {
            let reader = Arc::clone(&tree);
            s.spawn(move || {
                for i in (1..n).step_by(2) {
                    let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    // Odd keys are never removed.
                    assert_eq!(reader.get(&[h, h.rotate_left(32)]), Some(i));
                }
            });
        }
    });
    assert_eq!(tree.len(), n as usize / 2);
}

#[test]
fn durable_sharded_recovers_all_shards() {
    let vfs = Arc::new(MemVfs::new());
    let dir = Path::new("/store");
    let cfg = DurableConfig {
        checkpoint_bytes: 1 << 14, // force some checkpoints
        sync_writes: false,
        retry: None,
    };
    let n = 1_000u64;
    {
        let store: DurableSharded<u64, 2> =
            DurableSharded::open_with(vfs.clone(), dir, 4, cfg.clone()).unwrap();
        assert_eq!(store.shards(), 4);
        for i in 0..n {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            store.insert([h, h.rotate_left(32)], i).unwrap();
        }
        for i in (0..n).step_by(3) {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            store.remove(&[h, h.rotate_left(32)]).unwrap();
        }
        store.sync_all().unwrap();
    } // drop without checkpoint: recovery must replay WALs

    let store: DurableSharded<u64, 2> =
        DurableSharded::open_with(vfs.clone(), dir, 4, cfg.clone()).unwrap();
    let expected = (n as usize) - n.div_ceil(3) as usize;
    assert_eq!(store.len(), expected);
    for i in 0..n {
        let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let want = if i % 3 == 0 { None } else { Some(i) };
        assert_eq!(store.get_with(&[h, h.rotate_left(32)], |v| *v), want);
    }
    assert_eq!(store.recovery_stats().len(), 4);
    // Window queries work over the recovered shards and prune like the
    // in-memory layer.
    let full = store.query(&[0; 2], &[u64::MAX; 2]);
    assert_eq!(full.len(), expected);

    // Shard-count mismatch is refused, not silently misrouted.
    let wrong = DurableSharded::<u64, 2>::open_with(vfs.clone(), dir, 8, cfg);
    assert!(wrong.is_err(), "reopening with 8 shards must fail");
}

#[test]
fn durable_sharded_checkpoint_and_reopen() {
    let vfs = Arc::new(MemVfs::new());
    let dir = Path::new("/cp");
    let cfg = DurableConfig {
        checkpoint_bytes: u64::MAX, // manual checkpoints only
        sync_writes: false,
        retry: None,
    };
    {
        let store: DurableSharded<String, 3> =
            DurableSharded::open_with(vfs.clone(), dir, 2, cfg.clone()).unwrap();
        for i in 0..200u64 {
            store.insert([i << 56, i, i * 3], format!("v{i}")).unwrap();
        }
        let gens = store.checkpoint_all().unwrap();
        assert_eq!(gens.len(), 2);
        assert!(gens.iter().all(|&(_, g)| g >= 1));
    }
    let store: DurableSharded<String, 3> = DurableSharded::open_with(vfs, dir, 2, cfg).unwrap();
    assert_eq!(store.len(), 200);
    // Checkpointed shards replay nothing.
    assert!(store.recovery_stats().iter().all(|r| r.replayed_ops == 0));
    assert_eq!(
        store
            .get_with(&[5u64 << 56, 5, 15], String::clone)
            .as_deref(),
        Some("v5")
    );
}

/// Torn-scan regression: a scan concurrent with batch inserts and
/// online splits must never observe a partially applied batch.
///
/// In-memory, `bulk_load` publishes each shard's partition as one
/// version (per-shard batch atomicity), so batches whose keys co-route
/// — here they share the top 8 bits of every coordinate, more prefix
/// than the router can ever consume (`MAX_DEPTH` = 16 interleaved bits
/// at K=2) — are atomic to snapshots even across splits. Durable,
/// `bulk_load` publishes every involved shard inside one write-clock
/// bracket, so arbitrary cross-shard batches are atomic.
#[test]
fn scans_never_observe_torn_batches() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const B: u64 = 8; // batch size; every item of batch b carries value b
    let check = |got: Vec<([u64; 2], u64)>, layer: &str| {
        let mut counts = std::collections::HashMap::new();
        for (_, v) in got {
            *counts.entry(v).or_insert(0u64) += 1;
        }
        for (b, n) in counts {
            assert_eq!(n, B, "{layer}: scan saw {n}/{B} items of batch {b}");
        }
    };

    // ---- in-memory: co-routed batches + splits ----
    let tree: Arc<ShardedTree<u64, 2>> = Arc::new(ShardedTree::with_threads(4, 2));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for b in 1..=400u64 {
                    let h = b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let batch: Vec<([u64; 2], u64)> = (0..B)
                        .map(|i| ([(h & !0xFF) | i, h.rotate_left(17)], b))
                        .collect();
                    tree.bulk_load(batch);
                    if b % 80 == 0 {
                        if let Some((hot, _)) = tree.stats().hottest() {
                            let _ = tree.split_shard(hot, 1);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    check(tree.snapshot().query(&[0; 2], &[u64::MAX; 2]), "mem");
                }
            });
        }
    });
    check(tree.query(&[0; 2], &[u64::MAX; 2]), "mem-final");
    assert_eq!(tree.len(), 400 * B as usize);

    // ---- durable: cross-shard batches + splits ----
    let vfs = Arc::new(MemVfs::new());
    let cfg = DurableConfig {
        checkpoint_bytes: u64::MAX,
        sync_writes: false,
        retry: None,
    };
    let store: Arc<DurableSharded<u64, 2>> =
        Arc::new(DurableSharded::open_with(vfs, Path::new("/torn"), 2, cfg).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for b in 1..=200u64 {
                    let batch: Vec<([u64; 2], u64)> = (0..B)
                        .map(|i| {
                            let h = (b * B + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            ([h, h.rotate_left(32)], b)
                        })
                        .collect();
                    store.bulk_load(batch).unwrap();
                    if b % 60 == 0 {
                        if let Some((hot, _)) = store.stats().hottest() {
                            let _ = store.split_shard(hot, 1);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    check(store.snapshot().query(&[0; 2], &[u64::MAX; 2]), "dur");
                }
            });
        }
    });
    check(store.query(&[0; 2], &[u64::MAX; 2]), "dur-final");
    assert_eq!(store.len(), 200 * B as usize);
}

/// Sustained read-under-write stress for CI (run with `-- --ignored`):
/// ≥5 seconds of lock-free readers against a churning writer and a
/// live rebalancer, with the torn-batch assertion running the whole
/// time. Under debug assertions this also exercises the lock counter,
/// the swap cell's reader accounting and the COW tree's internal
/// invariants.
#[test]
#[ignore = "long-running; CI invokes it explicitly"]
fn read_under_write_stress() {
    use phshard::{RebalancePolicy, Rebalancer};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    const B: u64 = 8;
    let tree: Arc<ShardedTree<u64, 2>> = Arc::new(ShardedTree::with_threads(4, 2));
    let policy = RebalancePolicy {
        max_skew: 1.5,
        min_entries: 256,
        split_bits: 1,
        interval: Duration::from_millis(5),
        ..RebalancePolicy::default()
    };
    let rebalancer = Rebalancer::spawn(Arc::clone(&tree), policy);
    let stop = Arc::new(AtomicBool::new(false));
    let batches = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs(5);

    std::thread::scope(|s| {
        {
            // Writer: clustered co-routed batches (skewed on purpose so
            // the rebalancer fires), plus point churn with
            // read-your-write checks.
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let batches = Arc::clone(&batches);
            s.spawn(move || {
                let mut b = 0u64;
                while Instant::now() < deadline {
                    b += 1;
                    // Low top bits: everything clusters under one prefix.
                    let h = b.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 8;
                    let batch: Vec<([u64; 2], u64)> = (0..B)
                        .map(|i| ([(h & !0xFF) | i, h.rotate_left(17)], b))
                        .collect();
                    tree.bulk_load(batch);
                    let probe = [(h & !0xFF) | (B + 1), h.rotate_left(17)];
                    tree.insert(probe, u64::MAX);
                    assert_eq!(tree.get(&probe), Some(u64::MAX), "read-your-write");
                    tree.remove(&probe);
                    batches.store(b, Ordering::Relaxed);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        for _ in 0..3 {
            // Readers: full scans with the torn-batch assertion, point
            // reads, kNN — all on the lock-free path.
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = tree.snapshot();
                    let mut counts = std::collections::HashMap::new();
                    for (_, v) in snap.query(&[0; 2], &[u64::MAX; 2]) {
                        if v != u64::MAX {
                            *counts.entry(v).or_insert(0u64) += 1;
                        }
                    }
                    for (b, n) in counts {
                        assert_eq!(n, B, "stress: scan saw {n}/{B} items of batch {b}");
                    }
                    tree.knn(&[u64::MAX / 2; 2], 3);
                }
            });
        }
    });
    let reports = rebalancer.stop();
    let b = batches.load(Ordering::Relaxed);
    assert!(b > 0, "writer made no progress");
    assert_eq!(tree.len(), (b * B) as usize, "no entry lost under stress");
    assert!(
        !reports.is_empty(),
        "rebalancer never split under skewed load (skew {})",
        tree.stats().skew()
    );
}
