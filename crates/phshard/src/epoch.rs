//! Epoch-versioned, non-uniform shard routing over the Z-bit stream.
//!
//! The original [`crate::Router`] consumes a *fixed* number of Z-order
//! prefix bits, so every shard sits at the same depth — rebalancing
//! would have to double the whole shard count to split one hot shard.
//! [`ShardMap`] generalises the router to a binary trie over the same
//! bit stream: each leaf is one shard (identified by a stable *slot*
//! id), and a hot leaf can be deepened independently of its siblings
//! by [`ShardMap::split`], producing `2^bits` children that partition
//! exactly the parent's region. A map that has never split routes
//! bit-for-bit identically to `Router` (property-tested below).
//!
//! Z-bit `t` of a key is bit `63 - t/K` of dimension `t % K` — the
//! MSB-first interleaving the PH-tree itself branches on, so every
//! leaf still owns an axis-aligned hypercube prefix region
//! ([`ShardMap::shard_box`]) and window queries still prune whole
//! shards ([`ShardMap::matching_shards`]).
//!
//! Slot ids are allocated monotonically and **never reused**: a split
//! retires the parent's slot and assigns fresh ids to the children.
//! That makes a slot id a safe handle across a routing change — a
//! reader holding a stale map can detect retirement instead of
//! silently addressing the wrong shard — and gives each durable shard
//! directory (`shard-NNN/`) a name that never refers to two different
//! key regions over the store's lifetime.
//!
//! The `epoch` counts routing changes; layers above publish it as a
//! gauge and bump it on every committed split.

use crate::error::ShardError;

/// Maximum trie depth in Z-bits (so at most `2^16` shards along any
/// path-count bound), matching [`crate::MAX_SHARDS`].
pub const MAX_DEPTH: u32 = 16;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    /// A shard: the slot id addressing its storage cell.
    Leaf(u32),
    /// One more Z-bit consumed: `[bit = 0, bit = 1]`.
    Split(Box<Node>, Box<Node>),
}

/// A versioned shard-routing trie over the Z-order bit stream.
///
/// Immutable once built — [`ShardMap::split`] returns a *new* map, so
/// concurrent readers can hold an `Arc<ShardMap>` snapshot while a
/// rebalance installs the successor (the routing-epoch pattern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap<const K: usize> {
    root: Node,
    epoch: u64,
    next_slot: u32,
    leaves: usize,
}

impl<const K: usize> ShardMap<K> {
    /// A uniform map over `shards = 2^s` shards at epoch 0, routing
    /// identically to [`crate::Router::new`]`(shards)`: slot ids are
    /// the Z-order prefix values, in order.
    ///
    /// # Panics
    /// If `shards` is zero, not a power of two, or above
    /// [`crate::MAX_SHARDS`].
    pub fn uniform(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards <= crate::MAX_SHARDS,
            "shard count must be a power of two in 1..={}, got {shards}",
            crate::MAX_SHARDS
        );
        assert!(K >= 1, "zero-dimensional keys cannot be routed");
        let bits = shards.trailing_zeros();
        let mut next = 0u32;
        let root = Self::perfect(bits, &mut next);
        ShardMap {
            root,
            epoch: 0,
            next_slot: next,
            leaves: shards,
        }
    }

    /// A perfect subtree of `depth` levels whose leaves take ids from
    /// `next` in Z-order (left to right).
    fn perfect(depth: u32, next: &mut u32) -> Node {
        if depth == 0 {
            let slot = *next;
            *next += 1;
            Node::Leaf(slot)
        } else {
            let zero = Self::perfect(depth - 1, next);
            let one = Self::perfect(depth - 1, next);
            Node::Split(Box::new(zero), Box::new(one))
        }
    }

    /// Routing epoch: 0 for a fresh uniform map, +1 per committed
    /// split.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards (trie leaves).
    #[inline]
    pub fn shards(&self) -> usize {
        self.leaves
    }

    /// The next slot id a split would assign; also the exclusive upper
    /// bound on every live slot id (for sizing slot-indexed tables).
    #[inline]
    pub fn slot_bound(&self) -> usize {
        self.next_slot as usize
    }

    /// Live slot ids in Z-order of their regions. For a uniform map
    /// this is `0..shards`, and concatenating per-shard query results
    /// in this order yields global Z-order.
    pub fn live_slots(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.leaves);
        fn walk(n: &Node, out: &mut Vec<usize>) {
            match n {
                Node::Leaf(s) => out.push(*s as usize),
                Node::Split(z, o) => {
                    walk(z, out);
                    walk(o, out);
                }
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Whether `slot` is a live leaf.
    pub fn is_live(&self, slot: usize) -> bool {
        self.live_slots().contains(&slot)
    }

    /// The slot owning `key`: descend the trie consuming the key's
    /// Z-bit stream, MSB-first interleaved exactly as the tree's
    /// hypercube addresses are.
    #[inline]
    pub fn route(&self, key: &[u64; K]) -> usize {
        let mut node = &self.root;
        let mut t = 0u32;
        loop {
            match node {
                Node::Leaf(s) => return *s as usize,
                Node::Split(z, o) => {
                    let level = t / K as u32;
                    let dim = (t % K as u32) as usize;
                    let bit = (key[dim] >> (63 - level)) & 1;
                    node = if bit == 0 { z } else { o };
                    t += 1;
                }
            }
        }
    }

    /// The axis-aligned box of keys owned by `slot`: its trie-path
    /// prefix with all remaining bits free, `(min, max)` inclusive.
    ///
    /// # Panics
    /// If `slot` is not a live leaf.
    pub fn shard_box(&self, slot: usize) -> ([u64; K], [u64; K]) {
        fn find<const K: usize>(
            n: &Node,
            t: u32,
            min: [u64; K],
            max: [u64; K],
            slot: u32,
        ) -> Option<([u64; K], [u64; K])> {
            match n {
                Node::Leaf(s) => (*s == slot).then_some((min, max)),
                Node::Split(z, o) => {
                    let (zr, or) = child_regions(&min, &max, t);
                    find(z, t + 1, zr.0, zr.1, slot).or_else(|| find(o, t + 1, or.0, or.1, slot))
                }
            }
        }
        find::<K>(&self.root, 0, [0u64; K], [u64::MAX; K], slot as u32)
            .unwrap_or_else(|| panic!("slot {slot} is not a live shard"))
    }

    /// Depth (Z-bits consumed) of the leaf holding `slot`, or `None`
    /// if it is not live.
    pub fn slot_depth(&self, slot: usize) -> Option<u32> {
        fn find(n: &Node, t: u32, slot: u32) -> Option<u32> {
            match n {
                Node::Leaf(s) => (*s == slot).then_some(t),
                Node::Split(z, o) => find(z, t + 1, slot).or_else(|| find(o, t + 1, slot)),
            }
        }
        find(&self.root, 0, slot as u32)
    }

    /// Slots whose region intersects the query box `[q_min, q_max]`,
    /// in Z-order of their regions (the order
    /// [`ShardMap::live_slots`] uses — concatenating per-shard query
    /// results in this order preserves global Z-order). Every omitted
    /// shard provably contains no matching key.
    pub fn matching_shards(&self, q_min: &[u64; K], q_max: &[u64; K]) -> Vec<usize> {
        #[allow(clippy::too_many_arguments)]
        fn walk<const K: usize>(
            n: &Node,
            t: u32,
            min: [u64; K],
            max: [u64; K],
            q_min: &[u64; K],
            q_max: &[u64; K],
            out: &mut Vec<usize>,
        ) {
            for d in 0..K {
                if min[d] > q_max[d] || max[d] < q_min[d] {
                    return;
                }
            }
            match n {
                Node::Leaf(s) => out.push(*s as usize),
                Node::Split(z, o) => {
                    let (zr, or) = child_regions(&min, &max, t);
                    walk(z, t + 1, zr.0, zr.1, q_min, q_max, out);
                    walk(o, t + 1, or.0, or.1, q_min, q_max, out);
                }
            }
        }
        let mut out = Vec::new();
        walk::<K>(
            &self.root,
            0,
            [0u64; K],
            [u64::MAX; K],
            q_min,
            q_max,
            &mut out,
        );
        out
    }

    /// Deepens the leaf `slot` by `bits` Z-bits, partitioning its
    /// region into `2^bits` children with freshly allocated slot ids
    /// (returned in Z-order). The parent slot is retired — absent from
    /// the new map, never reassigned. Epoch increments by one.
    ///
    /// Fails if `slot` is not live, `bits` is zero, the resulting leaf
    /// depth would exceed [`MAX_DEPTH`], or the shard count would pass
    /// [`crate::MAX_SHARDS`].
    pub fn split(&self, slot: usize, bits: u32) -> Result<(ShardMap<K>, Vec<usize>), ShardError> {
        if bits == 0 {
            return Err(ShardError::SplitDepth { slot, depth: 0 });
        }
        let depth = self
            .slot_depth(slot)
            .ok_or(ShardError::UnknownSlot { slot })?;
        if depth + bits > MAX_DEPTH {
            return Err(ShardError::SplitDepth {
                slot,
                depth: depth + bits,
            });
        }
        let grown = self.leaves + (1usize << bits) - 1;
        if grown > crate::MAX_SHARDS {
            return Err(ShardError::TooManyShards {
                requested: grown,
                max: crate::MAX_SHARDS,
            });
        }
        let mut next = self.next_slot;
        let mut root = self.root.clone();
        fn replace(n: &mut Node, slot: u32, bits: u32, next: &mut u32) -> bool {
            match n {
                Node::Leaf(s) if *s == slot => {
                    *n = ShardMap::<1>::perfect(bits, next);
                    true
                }
                Node::Leaf(_) => false,
                Node::Split(z, o) => replace(z, slot, bits, next) || replace(o, slot, bits, next),
            }
        }
        let replaced = replace(&mut root, slot as u32, bits, &mut next);
        debug_assert!(replaced);
        let children: Vec<usize> = (self.next_slot..next).map(|s| s as usize).collect();
        Ok((
            ShardMap {
                root,
                epoch: self.epoch + 1,
                next_slot: next,
                leaves: grown,
            },
            children,
        ))
    }

    /// Serialises the map (without the epoch — the manifest layer owns
    /// versioning metadata): preorder walk, one tag byte per node
    /// (`1` = split, `0` = leaf followed by the slot id LE).
    pub fn encode(&self, out: &mut Vec<u8>) {
        fn walk(n: &Node, out: &mut Vec<u8>) {
            match n {
                Node::Leaf(s) => {
                    out.push(0);
                    out.extend_from_slice(&s.to_le_bytes());
                }
                Node::Split(z, o) => {
                    out.push(1);
                    walk(z, out);
                    walk(o, out);
                }
            }
        }
        walk(&self.root, out);
    }

    /// Rebuilds a map from [`ShardMap::encode`] bytes plus the
    /// externally stored `epoch` and `next_slot`. Returns `None` on
    /// malformed input (truncated, trailing bytes, bad tag, depth
    /// overflow, or a slot id at or above `next_slot`).
    pub fn decode(bytes: &[u8], epoch: u64, next_slot: u32) -> Option<ShardMap<K>> {
        fn parse(bytes: &[u8], pos: &mut usize, depth: u32, bound: u32) -> Option<Node> {
            if depth > MAX_DEPTH {
                return None;
            }
            let tag = *bytes.get(*pos)?;
            *pos += 1;
            match tag {
                0 => {
                    let raw = bytes.get(*pos..*pos + 4)?;
                    *pos += 4;
                    let slot = u32::from_le_bytes(raw.try_into().unwrap());
                    (slot < bound).then_some(Node::Leaf(slot))
                }
                1 => {
                    let z = parse(bytes, pos, depth + 1, bound)?;
                    let o = parse(bytes, pos, depth + 1, bound)?;
                    Some(Node::Split(Box::new(z), Box::new(o)))
                }
                _ => None,
            }
        }
        let mut pos = 0usize;
        let root = parse(bytes, &mut pos, 0, next_slot)?;
        if pos != bytes.len() {
            return None;
        }
        let mut leaves = 0usize;
        fn count(n: &Node, leaves: &mut usize) {
            match n {
                Node::Leaf(_) => *leaves += 1,
                Node::Split(z, o) => {
                    count(z, leaves);
                    count(o, leaves);
                }
            }
        }
        count(&root, &mut leaves);
        Some(ShardMap {
            root,
            epoch,
            next_slot,
            leaves,
        })
    }
}

/// An axis-aligned key region as inclusive `(min, max)` corners.
type Region<const K: usize> = ([u64; K], [u64; K]);

/// The two child regions of a split at Z-bit `t`: clearing/setting bit
/// `63 - t/K` of dimension `t % K`.
fn child_regions<const K: usize>(min: &[u64; K], max: &[u64; K], t: u32) -> (Region<K>, Region<K>) {
    let level = t / K as u32;
    let dim = (t % K as u32) as usize;
    let bit = 63 - level;
    let mut zero_max = *max;
    zero_max[dim] &= !(1u64 << bit);
    let mut one_min = *min;
    one_min[dim] |= 1u64 << bit;
    ((*min, zero_max), (one_min, *max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Router;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed;
        move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        }
    }

    fn rand_key<const K: usize>(r: &mut impl FnMut() -> u64) -> [u64; K] {
        let mut k = [0u64; K];
        for d in k.iter_mut() {
            *d = r();
        }
        k
    }

    fn boxes_intersect<const K: usize>(
        a_min: &[u64; K],
        a_max: &[u64; K],
        b_min: &[u64; K],
        b_max: &[u64; K],
    ) -> bool {
        (0..K).all(|d| a_min[d] <= b_max[d] && a_max[d] >= b_min[d])
    }

    #[test]
    fn uniform_map_routes_identically_to_router() {
        let mut r = rng(7);
        for &s in &[1usize, 2, 4, 8, 32, 64] {
            let map: ShardMap<3> = ShardMap::uniform(s);
            let router: Router<3> = Router::new(s);
            assert_eq!(map.shards(), s);
            assert_eq!(map.live_slots(), (0..s).collect::<Vec<_>>());
            for _ in 0..300 {
                let key = rand_key::<3>(&mut r);
                assert_eq!(map.route(&key), router.route(&key), "S={s} key {key:?}");
            }
            for slot in 0..s {
                assert_eq!(map.shard_box(slot), router.shard_box(slot), "S={s}");
            }
        }
    }

    #[test]
    fn uniform_matching_shards_identical_to_router() {
        let mut r = rng(21);
        for &s in &[1usize, 2, 8, 32] {
            let map: ShardMap<3> = ShardMap::uniform(s);
            let router: Router<3> = Router::new(s);
            for _ in 0..150 {
                let mut lo = [0u64; 3];
                let mut hi = [0u64; 3];
                for d in 0..3 {
                    let a = r();
                    let b = r();
                    lo[d] = a.min(b);
                    hi[d] = a.max(b);
                }
                assert_eq!(
                    map.matching_shards(&lo, &hi),
                    router.matching_shards(&lo, &hi),
                    "S={s}"
                );
            }
        }
    }

    #[test]
    fn split_partitions_exactly_the_parent_region() {
        let mut r = rng(99);
        let map: ShardMap<2> = ShardMap::uniform(4);
        let (pmin, pmax) = map.shard_box(2);
        let (map2, children) = map.split(2, 2).unwrap();
        assert_eq!(children, vec![4, 5, 6, 7]);
        assert_eq!(map2.shards(), 7);
        assert_eq!(map2.epoch(), 1);
        assert!(!map2.is_live(2), "parent slot retired");
        assert_eq!(map2.slot_bound(), 8);
        // Every key routes to the same slot as before, except parent
        // keys which now land in one of the children — and the child's
        // box sits inside the parent's.
        for _ in 0..500 {
            let key = rand_key::<2>(&mut r);
            let old = map.route(&key);
            let new = map2.route(&key);
            if old == 2 {
                assert!(children.contains(&new), "key {key:?} → {new}");
                let (cmin, cmax) = map2.shard_box(new);
                for d in 0..2 {
                    assert!(pmin[d] <= cmin[d] && cmax[d] <= pmax[d]);
                }
            } else {
                assert_eq!(old, new, "non-parent key rerouted");
            }
        }
        // Child boxes are pairwise disjoint and ordered in live_slots.
        let live = map2.live_slots();
        assert_eq!(live, vec![0, 1, 4, 5, 6, 7, 3]);
        for (i, &a) in live.iter().enumerate() {
            for &b in &live[i + 1..] {
                let (amin, amax) = map2.shard_box(a);
                let (bmin, bmax) = map2.shard_box(b);
                assert!(!boxes_intersect(&amin, &amax, &bmin, &bmax));
            }
        }
    }

    #[test]
    fn matching_shards_on_split_map_equals_brute_force() {
        let mut r = rng(5);
        let map: ShardMap<3> = ShardMap::uniform(8);
        let (map, _) = map.split(0, 3).unwrap();
        let (map, _) = map.split(5, 1).unwrap();
        let live = map.live_slots();
        for _ in 0..200 {
            let mut lo = [0u64; 3];
            let mut hi = [0u64; 3];
            for d in 0..3 {
                let a = r();
                let b = r();
                lo[d] = a.min(b);
                hi[d] = a.max(b);
            }
            let got = map.matching_shards(&lo, &hi);
            let want: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&s| {
                    let (bmin, bmax) = map.shard_box(s);
                    boxes_intersect(&bmin, &bmax, &lo, &hi)
                })
                .collect();
            assert_eq!(got, want, "query {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn route_always_lands_in_the_slot_box() {
        let mut r = rng(13);
        let map: ShardMap<3> = ShardMap::uniform(4);
        let (map, _) = map.split(1, 3).unwrap();
        for _ in 0..500 {
            let key = rand_key::<3>(&mut r);
            let slot = map.route(&key);
            let (lo, hi) = map.shard_box(slot);
            for d in 0..3 {
                assert!(lo[d] <= key[d] && key[d] <= hi[d]);
            }
        }
    }

    #[test]
    fn split_errors_are_typed() {
        let map: ShardMap<2> = ShardMap::uniform(2);
        assert!(matches!(
            map.split(9, 1),
            Err(ShardError::UnknownSlot { slot: 9 })
        ));
        assert!(matches!(
            map.split(0, 0),
            Err(ShardError::SplitDepth { .. })
        ));
        assert!(matches!(
            map.split(0, MAX_DEPTH),
            Err(ShardError::SplitDepth { .. })
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let map: ShardMap<3> = ShardMap::uniform(8);
        let (map, _) = map.split(3, 2).unwrap();
        let (map, _) = map.split(9, 1).unwrap();
        let mut bytes = Vec::new();
        map.encode(&mut bytes);
        let back: ShardMap<3> =
            ShardMap::decode(&bytes, map.epoch(), map.slot_bound() as u32).unwrap();
        assert_eq!(back, map);
        // Malformed inputs are rejected, not misparsed.
        assert!(ShardMap::<3>::decode(&bytes[..bytes.len() - 1], 2, 13).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(ShardMap::<3>::decode(&trailing, 2, 13).is_none());
        let mut bad_tag = bytes.clone();
        bad_tag[0] = 7;
        assert!(ShardMap::<3>::decode(&bad_tag, 2, 13).is_none());
        // Slot id out of bound.
        assert!(ShardMap::<3>::decode(&bytes, 2, 3).is_none());
    }
}
