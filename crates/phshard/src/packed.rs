//! Packed checkpoints: freeze one consistent [`Snapshot`] into
//! per-shard `phpack` artifacts plus a tiny routing manifest, then
//! serve the whole topology read-only with a millisecond open.
//!
//! A packed checkpoint is a *serving* artifact, not a recovery log: it
//! complements (never replaces) the WAL+snapshot durability chain.
//! [`DurableSharded::checkpoint_packed`] cuts one snapshot across all
//! shards — so the artifact set is globally consistent, unlike
//! per-shard WAL checkpoints which are only per-shard consistent — and
//! packs each live shard's pinned tree. The manifest (routing trie +
//! dimensions + entry count, one superblock-checksummed page) is
//! written **last**, atomically: a crash mid-checkpoint leaves no
//! manifest and the partial artifact set is simply never opened.
//!
//! [`PackedShards::open_in`] is the fast path: decode one page, open
//! each shard artifact (superblock + checksum-table reads — no WAL
//! replay, no tree rebuild), and route reads exactly like a live
//! snapshot: point gets by trie routing, window queries over
//! prefix-pruned shards concatenated in Z-order, kNN as the same
//! bounded k-way merge of per-shard lists.

use crate::epoch::ShardMap;
use crate::error::ShardError;
use crate::merge::merge_nearest;
use crate::sharded::ShardStats;
use crate::snapshot::Snapshot;
use crate::DurableSharded;
use phpack::{pack_tree_in, CacheMode, PackedTree};
use phstore::vfs::{StdVfs, Vfs};
use phstore::{superblock, Corruption, StoreError, ValueCodec};
use std::path::Path;

/// Manifest file name inside a packed-checkpoint directory.
pub const PACKED_MANIFEST: &str = "packed.meta";

/// Superblock magic of the packed-checkpoint manifest.
pub const PACKED_SHARDS_MAGIC: &[u8; 8] = b"PHPACKS1";

const MANIFEST_VERSION: u16 = 1;

/// Per-shard artifact file name.
fn shard_file(slot: usize) -> String {
    format!("shard-{slot}.phk")
}

/// What a packed checkpoint produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedCheckpoint {
    /// Live shards packed.
    pub shards: usize,
    /// Entries across all artifacts (= snapshot length).
    pub entries: u64,
    /// Total artifact bytes including the manifest.
    pub file_bytes: u64,
}

impl<V: ValueCodec + Clone + Send + Sync, const K: usize> DurableSharded<V, K> {
    /// Packs one consistent snapshot of every live shard into `dir`
    /// (see the module docs). Read traffic keeps flowing; the snapshot
    /// pins versions copy-on-write.
    pub fn checkpoint_packed(&self, dir: &Path) -> Result<PackedCheckpoint, ShardError> {
        write_packed_checkpoint(&self.snapshot(), self.vfs().as_ref(), dir)
    }
}

/// Packs `snap` into `dir` on `vfs`: one `phpack` artifact per live
/// shard, then the routing manifest, written last and atomically.
pub fn write_packed_checkpoint<V: ValueCodec + Clone, const K: usize>(
    snap: &Snapshot<V, K>,
    vfs: &dyn Vfs,
    dir: &Path,
) -> Result<PackedCheckpoint, ShardError> {
    let io = |e: std::io::Error| ShardError::Store(e.into());
    vfs.create_dir_all(dir).map_err(io)?;
    let map = snap.router();
    let live = map.live_slots();
    let (mut entries, mut file_bytes) = (0u64, 0u64);
    for &slot in &live {
        let stats = pack_tree_in(snap.shard_tree(slot), vfs, &dir.join(shard_file(slot)))?;
        entries += stats.entries;
        file_bytes += stats.file_bytes;
    }

    // Manifest meta: version, dimensions, routing epoch/bound, entry
    // count, and the routing trie itself.
    let mut trie = Vec::new();
    map.encode(&mut trie);
    let mut meta = Vec::new();
    meta.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    meta.extend_from_slice(&(K as u16).to_le_bytes());
    meta.extend_from_slice(&map.epoch().to_le_bytes());
    meta.extend_from_slice(&(map.slot_bound() as u32).to_le_bytes());
    meta.extend_from_slice(&entries.to_le_bytes());
    meta.extend_from_slice(&(trie.len() as u32).to_le_bytes());
    meta.extend_from_slice(&trie);
    let page = superblock::encode(PACKED_SHARDS_MAGIC, 1, &meta);

    let path = dir.join(PACKED_MANIFEST);
    let tmp = dir.join("packed.meta.tmp");
    {
        let mut f = vfs.create(&tmp).map_err(io)?;
        f.write_all_at(&page, 0).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    vfs.rename(&tmp, &path).map_err(io)?;
    vfs.sync_dir(dir).map_err(io)?;
    Ok(PackedCheckpoint {
        shards: live.len(),
        entries,
        file_bytes: file_bytes + page.len() as u64,
    })
}

/// A read-only sharded tree served from a packed checkpoint: the
/// recovery fast path (no WAL replay, no tree rebuild — open decodes
/// one manifest page and the per-shard superblocks).
pub struct PackedShards<V, const K: usize> {
    map: ShardMap<K>,
    /// Slot-indexed; `None` for slots not live in the manifest epoch.
    trees: Vec<Option<PackedTree<V, K>>>,
    entries: u64,
}

impl<V: ValueCodec, const K: usize> PackedShards<V, K> {
    /// Opens a packed checkpoint directory on the real filesystem.
    pub fn open(dir: &Path, mode: CacheMode) -> Result<PackedShards<V, K>, StoreError> {
        Self::open_in(&StdVfs, dir, mode)
    }

    /// Opens a packed checkpoint directory on any [`Vfs`].
    pub fn open_in(
        vfs: &dyn Vfs,
        dir: &Path,
        mode: CacheMode,
    ) -> Result<PackedShards<V, K>, StoreError> {
        let mut f = vfs.open(&dir.join(PACKED_MANIFEST))?;
        let mut page = vec![0u8; superblock::PAGE_SIZE];
        f.read_exact_at(&mut page, 0)?;
        let (n_pages, meta) = superblock::decode(PACKED_SHARDS_MAGIC, &page)?;
        if n_pages != 1 {
            return Err(Corruption::new("manifest page count").at_page(0).into());
        }
        let err = |what| StoreError::from(Corruption::new(what).at_page(0));
        if meta.len() < 26 {
            return Err(err("manifest metadata truncated"));
        }
        let version = u16::from_le_bytes(meta[0..2].try_into().unwrap());
        let k = u16::from_le_bytes(meta[2..4].try_into().unwrap());
        let epoch = u64::from_le_bytes(meta[4..12].try_into().unwrap());
        let bound = u32::from_le_bytes(meta[12..16].try_into().unwrap());
        let entries = u64::from_le_bytes(meta[16..24].try_into().unwrap());
        let trie_len = u32::from_le_bytes(meta[24..28].try_into().unwrap()) as usize;
        if version != MANIFEST_VERSION {
            return Err(err("unsupported packed manifest version"));
        }
        if k as usize != K {
            return Err(err("manifest dimension count mismatch"));
        }
        if meta.len() != 28 + trie_len {
            return Err(err("manifest metadata length mismatch"));
        }
        let map: ShardMap<K> = ShardMap::decode(&meta[28..], epoch, bound)
            .ok_or_else(|| err("undecodable routing trie"))?;

        let mut trees: Vec<Option<PackedTree<V, K>>> =
            (0..map.slot_bound()).map(|_| None).collect();
        let mut total = 0u64;
        for slot in map.live_slots() {
            let t = PackedTree::open_in(vfs, &dir.join(shard_file(slot)), mode)?;
            total += t.len() as u64;
            trees[slot] = Some(t);
        }
        if total != entries {
            return Err(err("manifest entry count disagrees with artifacts"));
        }
        Ok(PackedShards {
            map,
            trees,
            entries,
        })
    }

    #[inline]
    fn tree(&self, slot: usize) -> &PackedTree<V, K> {
        self.trees[slot]
            .as_ref()
            .expect("routing map addressed a missing packed shard")
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.entries as usize
    }

    /// Whether the checkpoint holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Routing epoch the checkpoint was cut at.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// Point lookup, routed by the manifest's trie.
    pub fn get(&self, key: &[u64; K]) -> Result<Option<V>, StoreError> {
        self.tree(self.map.route(key)).get(key)
    }

    /// Whether `key` is stored.
    pub fn contains(&self, key: &[u64; K]) -> Result<bool, StoreError> {
        self.tree(self.map.route(key)).contains(key)
    }

    /// All entries in `[min, max]` in global Z-order (prefix-pruned
    /// shards, concatenated in slot Z-order — the same shape as
    /// [`Snapshot::query`]).
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Result<Vec<([u64; K], V)>, StoreError> {
        let mut out = Vec::new();
        for s in self.map.matching_shards(min, max) {
            for item in self.tree(s).query(min, max) {
                out.push(item?);
            }
        }
        Ok(out)
    }

    /// Counts entries in `[min, max]` without materialising them.
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> Result<usize, StoreError> {
        let mut n = 0usize;
        for s in self.map.matching_shards(min, max) {
            n += self.tree(s).query_count(min, max)?;
        }
        Ok(n)
    }

    /// The `n` nearest entries to `center`, nearest first — the same
    /// bounded k-way merge of per-shard kNN lists as the live layers.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Result<Vec<([u64; K], V, f64)>, StoreError> {
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut lists = Vec::with_capacity(self.map.shards());
        for s in self.map.live_slots() {
            let nbs = self.tree(s).knn(center, n)?;
            lists.push(
                nbs.into_iter()
                    .map(|nb| (nb.key, nb.value, nb.dist))
                    .collect(),
            );
        }
        Ok(merge_nearest(lists, n, |e| e.2))
    }

    /// Per-shard statistics shaped like [`ShardStats`] (pool and
    /// pruning counters are zero: a packed checkpoint has neither).
    pub fn stats(&self) -> ShardStats {
        let live_slots = self.map.live_slots();
        let per_shard: Vec<usize> = live_slots.iter().map(|&s| self.tree(s).len()).collect();
        ShardStats {
            shards: self.map.shards(),
            threads: 0,
            entries: per_shard.iter().sum(),
            per_shard,
            live_slots,
            epoch: self.map.epoch(),
            shards_scanned: 0,
            shards_pruned: 0,
        }
    }
}
