//! Debug-mode accounting of data-path lock acquisitions.
//!
//! The MVCC-lite read path claims `get`/`query`/`knn`/`snapshot` take
//! **zero** locks on shard state: readers load published tree versions
//! through the lock-free [`crate::swap::Swap`] cell and traverse pure
//! data. That claim is pinned by a test, not a comment: every lock
//! guarding shard *data* in this crate is acquired through
//! [`DataMutex`], which (under `debug_assertions` only) bumps a global
//! counter. The `read_lockfree` integration test asserts the counter
//! does not move across reads.
//!
//! Scope: the counter covers shard state and cell locks — the locks
//! whose absence on the read path is the point. It deliberately does
//! *not* cover the worker pool's internal queue mutex (scheduling, not
//! data; reads of published roots never contend with writers through
//! it) or `Swap`'s internal writer mutex (write path only — `load`
//! takes no lock at all).

use std::sync::{Mutex, MutexGuard};

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(debug_assertions)]
static DATA_LOCK_ACQS: AtomicU64 = AtomicU64::new(0);

/// Data-path lock acquisitions since process start (debug builds
/// only). Sample before and after an operation to count what it took;
/// a lock-free read path leaves the value unchanged.
#[cfg(debug_assertions)]
pub fn data_lock_acquisitions() -> u64 {
    DATA_LOCK_ACQS.load(Ordering::SeqCst)
}

#[inline]
fn note_acquisition() {
    #[cfg(debug_assertions)]
    DATA_LOCK_ACQS.fetch_add(1, Ordering::SeqCst);
}

/// A `Mutex` guarding shard data, instrumented so debug builds can
/// prove which paths acquire it. Poisoning is swallowed (`lock` on a
/// poisoned mutex panics, matching the `.unwrap()` idiom it replaces).
pub(crate) struct DataMutex<T>(Mutex<T>);

impl<T> DataMutex<T> {
    pub(crate) fn new(value: T) -> Self {
        DataMutex(Mutex::new(value))
    }

    /// Locks, counting the acquisition in debug builds.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        note_acquisition();
        self.0.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(debug_assertions)]
    fn lock_bumps_the_counter() {
        let m = DataMutex::new(7u32);
        let before = data_lock_acquisitions();
        {
            let g = m.lock();
            assert_eq!(*g, 7);
        }
        assert!(data_lock_acquisitions() > before);
    }
}
