//! A small std-only worker pool for query fan-out.
//!
//! No rayon (the workspace builds offline): a fixed set of worker
//! threads drains a `Mutex<VecDeque>` of boxed jobs, woken by a
//! condvar. With `threads == 0` the pool degenerates to inline
//! execution on the caller — the zero-cost configuration for
//! single-core hosts or embedding in an outer scheduler.
//!
//! Panic containment: a job that panics on a worker is caught there
//! (the worker survives — a dead worker would silently shrink the pool
//! for the process lifetime) and counted in
//! `phshard_pool_task_panics_total`; [`WorkerPool::scatter`] resurfaces
//! the first panic on the caller with the task's label and index
//! attached, instead of the anonymous "worker lost" it used to raise.

use crate::metrics::PoolMetrics;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<State>,
    cv: Condvar,
    metrics: PoolMetrics,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Fixed-size worker pool executing boxed jobs in FIFO order.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers. `threads == 0` means *inline*: jobs
    /// run on the submitting thread, no workers are spawned.
    pub fn new(threads: usize) -> Self {
        Self::with_metrics(threads, PoolMetrics::disabled())
    }

    /// Like [`WorkerPool::new`], recording queue depth, task/panic
    /// counts and worker busy time into `metrics`.
    pub fn with_metrics(threads: usize, metrics: PoolMetrics) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            metrics,
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (0 = inline execution).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job. Inline pools run it before returning (panics
    /// propagate to the caller directly — no containment needed).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.metrics.tasks.inc();
        if self.handles.is_empty() {
            job();
            return;
        }
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.jobs.push_back(Box::new(job));
            self.shared.metrics.queue_depth.set(q.jobs.len() as i64);
        }
        self.shared.cv.notify_one();
    }

    /// Runs `tasks` across the pool and returns their results in task
    /// order. The last task runs inline on the caller (it would
    /// otherwise idle-wait), so even a 1-thread pool overlaps two
    /// tasks.
    ///
    /// # Panics
    /// If a task panics, the panic is caught (workers survive), all
    /// other tasks still run, and the first panic in task order is
    /// resurfaced here with the task index attached. Use
    /// [`WorkerPool::scatter_labeled`] to attach a meaningful label
    /// (e.g. a shard id) instead of a bare index.
    pub fn scatter<R: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        self.scatter_impl(tasks, None)
    }

    /// [`WorkerPool::scatter`] with a label per task; a panicking
    /// task's label and index are attached to the resurfaced panic.
    pub fn scatter_labeled<R: Send + 'static>(
        &self,
        tasks: Vec<(String, Box<dyn FnOnce() -> R + Send + 'static>)>,
    ) -> Vec<R> {
        let (labels, tasks): (Vec<String>, Vec<_>) = tasks.into_iter().unzip();
        self.scatter_impl(tasks, Some(labels))
    }

    fn scatter_impl<R: Send + 'static>(
        &self,
        mut tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
        labels: Option<Vec<String>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let last = tasks.pop().unwrap();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        for (i, t) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            let panics = self.shared.metrics.panics.clone();
            self.execute(move || {
                let r = catch_unwind(AssertUnwindSafe(t));
                if r.is_err() {
                    panics.inc();
                }
                let _ = tx.send((i, r));
            });
        }
        drop(tx);
        let mut out: Vec<Option<std::thread::Result<R>>> = (0..n).map(|_| None).collect();
        let last_r = catch_unwind(AssertUnwindSafe(last));
        if last_r.is_err() {
            self.shared.metrics.panics.inc();
        }
        out[n - 1] = Some(last_r);
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .enumerate()
            .map(|(i, o)| match o.expect("scatter result lost") {
                Ok(r) => r,
                Err(payload) => {
                    let label = match &labels {
                        Some(l) => l[i].as_str(),
                        None => "unlabeled",
                    };
                    // The label carries the op + shard slot (e.g.
                    // "query:shard-3"): snapshot the flight recorder
                    // *before* resurfacing, so a contained panic
                    // leaves the spans that led up to it behind.
                    phtrace::trigger_dump(&format!(
                        "scatter task '{label}' (index {i}) panicked: {}",
                        payload_msg(payload.as_ref())
                    ));
                    panic!(
                        "scatter task '{label}' (index {i}) panicked: {}",
                        payload_msg(payload.as_ref())
                    );
                }
            })
            .collect()
    }
}

/// Best-effort display of a panic payload (panics carry `&str` or
/// `String` unless raised via `panic_any`).
fn payload_msg(p: &(dyn Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    shared.metrics.queue_depth.set(q.jobs.len() as i64);
                    break j;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        let start = shared.metrics.busy_ns.is_enabled().then(Instant::now);
        // Contain panics from plain `execute` jobs so they cannot kill
        // the worker; scatter tasks catch their own (to ship the
        // payload back to the caller), so no double count here.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.metrics.panics.inc();
        }
        if let Some(t) = start {
            shared.metrics.busy_ns.add(t.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_in_order() {
        for threads in [0usize, 1, 4] {
            let pool = WorkerPool::new(threads);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.scatter(tasks);
            assert_eq!(out, (0..16usize).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn execute_runs_everything() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_scatter_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u8> = pool.scatter(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn scatter_panic_carries_label_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<(String, Box<dyn FnOnce() -> usize + Send>)> = (0..4usize)
            .map(|i| {
                let task: Box<dyn FnOnce() -> usize + Send> = if i == 1 {
                    Box::new(|| panic!("boom"))
                } else {
                    Box::new(move || i)
                };
                (format!("shard-{i}"), task)
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.scatter_labeled(tasks)))
            .expect_err("must resurface the task panic");
        let msg = payload_msg(err.as_ref());
        assert!(msg.contains("shard-1"), "panic message: {msg}");
        assert!(msg.contains("index 1"), "panic message: {msg}");
        assert!(msg.contains("boom"), "panic message: {msg}");
        // The workers survived the panic: the pool still computes.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i + 1) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(pool.scatter(tasks), (1..=8usize).collect::<Vec<_>>());
    }
}
