//! A small std-only worker pool for query fan-out.
//!
//! No rayon (the workspace builds offline): a fixed set of worker
//! threads drains a `Mutex<VecDeque>` of boxed jobs, woken by a
//! condvar. With `threads == 0` the pool degenerates to inline
//! execution on the caller — the zero-cost configuration for
//! single-core hosts or embedding in an outer scheduler.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<State>,
    cv: Condvar,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Fixed-size worker pool executing boxed jobs in FIFO order.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers. `threads == 0` means *inline*: jobs
    /// run on the submitting thread, no workers are spawned.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (0 = inline execution).
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submits a job. Inline pools run it before returning.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if self.handles.is_empty() {
            job();
            return;
        }
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.jobs.push_back(Box::new(job));
        }
        self.shared.cv.notify_one();
    }

    /// Runs `tasks` across the pool and returns their results in task
    /// order. The last task runs inline on the caller (it would
    /// otherwise idle-wait), so even a 1-thread pool overlaps two
    /// tasks.
    ///
    /// # Panics
    /// If a task panics on a worker, the panic is surfaced here as
    /// "scatter worker lost" (the pool itself survives).
    pub fn scatter<R: Send + 'static>(
        &self,
        mut tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    ) -> Vec<R> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let last = tasks.pop().unwrap();
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        for (i, t) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let _ = tx.send((i, t()));
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        out[n - 1] = Some(last());
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("scatter worker lost"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break j;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_in_order() {
        for threads in [0usize, 1, 4] {
            let pool = WorkerPool::new(threads);
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = pool.scatter(tasks);
            assert_eq!(out, (0..16usize).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn execute_runs_everything() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn empty_scatter_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u8> = pool.scatter(Vec::new());
        assert!(out.is_empty());
    }
}
