//! Key-space shard routing by top-level hypercube address bits.
//!
//! A [`Router`] assigns every key to one of `S = 2^s` shards using the
//! first `s` bits of the key's Z-order (Morton) interleaving — exactly
//! the bit stream the PH-tree itself branches on. Level `l` of the tree
//! contributes the `K`-bit hypercube address [`hc::addr`]`(key, 63 - l)`
//! (dimension 0 in the MSB), so the shard id is the path the root
//! region would take through the first `ceil(s / K)` levels of a
//! global tree.
//!
//! Because each shard therefore owns a *hypercube prefix region* — an
//! axis-aligned box ([`Router::shard_box`]) — a window query can prune
//! whole shards with the same `mL`/`mU` mechanics the in-node range
//! iterator uses (paper Sect. 3.5): [`Router::matching_shards`] walks
//! the prefix levels, computes [`hc::masks`] per level, and descends
//! only into quadrants the query box intersects.

use phbits::hc;

/// Upper bound on the shard count (2^16); routing uses at most 16
/// prefix bits, which keeps every mask shift in range and is far more
/// shards than any realistic core count needs.
pub const MAX_SHARDS: usize = 1 << 16;

/// Routes keys and window queries to shards by Z-order prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Router<const K: usize> {
    /// log2 of the shard count: number of prefix bits consumed.
    bits: u32,
}

impl<const K: usize> Router<K> {
    /// A router over `shards` shards. `shards` must be a power of two
    /// in `1 ..= 2^16` (the id is a bit prefix, so only powers of two
    /// partition the space evenly).
    ///
    /// # Panics
    /// If `shards` is zero, not a power of two, or above [`MAX_SHARDS`].
    pub fn new(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two() && shards <= MAX_SHARDS,
            "shard count must be a power of two in 1..={MAX_SHARDS}, got {shards}"
        );
        assert!(K >= 1, "zero-dimensional keys cannot be routed");
        Router {
            bits: shards.trailing_zeros(),
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        1usize << self.bits
    }

    /// Number of Z-order prefix bits consumed by routing.
    #[inline]
    pub fn prefix_bits(&self) -> u32 {
        self.bits
    }

    /// The shard owning `key`: the first [`Self::prefix_bits`] bits of
    /// the key's Z-order interleaving, MSB first.
    #[inline]
    pub fn route(&self, key: &[u64; K]) -> usize {
        let mut id = 0u64;
        let mut need = self.bits;
        let mut level = 0u32;
        while need > 0 {
            let h = hc::addr(key, 63 - level);
            let take = need.min(K as u32);
            id = (id << take) | (h >> (K as u32 - take));
            need -= take;
            level += 1;
        }
        id as usize
    }

    /// The axis-aligned box of keys owned by `shard`: its Z-order
    /// prefix with all remaining bits free. `(min, max)` inclusive.
    pub fn shard_box(&self, shard: usize) -> ([u64; K], [u64; K]) {
        debug_assert!(shard < self.shards());
        let mut min = [0u64; K];
        let mut max = [u64::MAX; K];
        let mut consumed = 0u32;
        let mut level = 0u32;
        while consumed < self.bits {
            let take = (self.bits - consumed).min(K as u32);
            let chunk = (shard as u64 >> (self.bits - consumed - take)) & ((1u64 << take) - 1);
            let bit = 63 - level;
            let (cmin, cmax) = child_region(&min, &max, chunk, take, bit);
            min = cmin;
            max = cmax;
            consumed += take;
            level += 1;
        }
        (min, max)
    }

    /// Shards whose region intersects the query box `[q_min, q_max]`,
    /// in ascending shard order. Every other shard provably contains no
    /// matching key, so window queries skip it entirely.
    ///
    /// Uses the paper's `mL`/`mU` quadrant masks level by level over
    /// the routing prefix — the same pruning the in-node iterator does,
    /// lifted to the shard map.
    pub fn matching_shards(&self, q_min: &[u64; K], q_max: &[u64; K]) -> Vec<usize> {
        if self.bits == 0 {
            return vec![0];
        }
        let mut out = Vec::new();
        self.descend(0, 0, 0, [0u64; K], [u64::MAX; K], q_min, q_max, &mut out);
        out
    }

    /// Recursive quadrant walk over the routing prefix. `node_min` /
    /// `node_max` bound the current prefix region; addresses are
    /// explored in ascending order, so `out` ends up sorted.
    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        level: u32,
        consumed: u32,
        prefix: u64,
        node_min: [u64; K],
        node_max: [u64; K],
        q_min: &[u64; K],
        q_max: &[u64; K],
        out: &mut Vec<usize>,
    ) {
        for d in 0..K {
            if node_min[d] > q_max[d] || node_max[d] < q_min[d] {
                return;
            }
        }
        if consumed == self.bits {
            out.push(prefix as usize);
            return;
        }
        let bit = 63 - level;
        let take = (self.bits - consumed).min(K as u32);
        let (m_l, m_u) = hc::masks(&node_min, q_min, q_max, bit);
        if take == K as u32 {
            for h in hc::valid_addrs(m_l, m_u) {
                let (cmin, cmax) = child_region(&node_min, &node_max, h, K as u32, bit);
                self.descend(
                    level + 1,
                    consumed + take,
                    (prefix << take) | h,
                    cmin,
                    cmax,
                    q_min,
                    q_max,
                    out,
                );
            }
        } else {
            // Partial last level: only the top `take` address bits
            // (dimensions 0..take) are part of the shard id; the
            // remaining dimensions stay unconstrained. Restrict the
            // masks to those dimensions by dropping the low bits.
            let pm_l = m_l >> (K as u32 - take);
            let pm_u = m_u >> (K as u32 - take);
            for h in hc::valid_addrs(pm_l, pm_u) {
                let (cmin, cmax) = child_region(&node_min, &node_max, h, take, bit);
                self.descend(
                    level + 1,
                    consumed + take,
                    (prefix << take) | h,
                    cmin,
                    cmax,
                    q_min,
                    q_max,
                    out,
                );
            }
        }
    }
}

/// Region of the child at partial-or-full address `h` covering
/// dimensions `0..dims`: set/clear `bit` in each constrained dimension.
fn child_region<const K: usize>(
    node_min: &[u64; K],
    node_max: &[u64; K],
    h: u64,
    dims: u32,
    bit: u32,
) -> ([u64; K], [u64; K]) {
    let mut cmin = *node_min;
    let mut cmax = *node_max;
    for d in 0..dims as usize {
        if (h >> (dims as usize - 1 - d)) & 1 == 1 {
            cmin[d] |= 1u64 << bit;
        } else {
            cmax[d] &= !(1u64 << bit);
        }
    }
    (cmin, cmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes_intersect<const K: usize>(
        a_min: &[u64; K],
        a_max: &[u64; K],
        b_min: &[u64; K],
        b_max: &[u64; K],
    ) -> bool {
        (0..K).all(|d| a_min[d] <= b_max[d] && a_max[d] >= b_min[d])
    }

    #[test]
    fn route_matches_shard_box() {
        // Every key must land in the shard whose box contains it.
        for &s in &[1usize, 2, 4, 8, 16, 64] {
            let r: Router<3> = Router::new(s);
            let mut x = 7u64;
            for _ in 0..500 {
                let mut key = [0u64; 3];
                for k in key.iter_mut() {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *k = x;
                }
                let id = r.route(&key);
                assert!(id < s);
                let (lo, hi) = r.shard_box(id);
                for d in 0..3 {
                    assert!(lo[d] <= key[d] && key[d] <= hi[d], "shard {id} box dim {d}");
                }
            }
        }
    }

    #[test]
    fn shard_boxes_partition_the_space() {
        // Boxes are pairwise disjoint (a key routes to exactly one).
        let r: Router<2> = Router::new(8); // 3 bits: one full level + 1
        let boxes: Vec<_> = (0..8).map(|s| r.shard_box(s)).collect();
        for i in 0..8 {
            for j in (i + 1)..8 {
                let (imin, imax) = boxes[i];
                let (jmin, jmax) = boxes[j];
                assert!(
                    !boxes_intersect(&imin, &imax, &jmin, &jmax),
                    "shards {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn matching_shards_equals_brute_force() {
        // The mask walk must select exactly the shards whose box
        // intersects the query — no false negatives (correctness) and
        // no false positives (the pruning acceptance criterion).
        let mut x = 99u64;
        let mut rng = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for &s in &[1usize, 2, 4, 8, 32] {
            let r: Router<3> = Router::new(s);
            for _ in 0..200 {
                let mut lo = [0u64; 3];
                let mut hi = [0u64; 3];
                for d in 0..3 {
                    let a = rng();
                    let b = rng();
                    lo[d] = a.min(b);
                    hi[d] = a.max(b);
                }
                let got = r.matching_shards(&lo, &hi);
                let want: Vec<usize> = (0..s)
                    .filter(|&id| {
                        let (bmin, bmax) = r.shard_box(id);
                        boxes_intersect(&bmin, &bmax, &lo, &hi)
                    })
                    .collect();
                assert_eq!(got, want, "S={s} query {lo:?}..{hi:?}");
            }
        }
    }

    #[test]
    fn full_space_query_matches_all_shards() {
        let r: Router<2> = Router::new(16);
        assert_eq!(
            r.matching_shards(&[0; 2], &[u64::MAX; 2]),
            (0..16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_shard_router_is_trivial() {
        let r: Router<4> = Router::new(1);
        assert_eq!(r.route(&[u64::MAX; 4]), 0);
        assert_eq!(r.matching_shards(&[1; 4], &[2; 4]), vec![0]);
        assert_eq!(r.shard_box(0), ([0u64; 4], [u64::MAX; 4]));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Router::<2>::new(3);
    }
}
