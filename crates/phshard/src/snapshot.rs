//! Snapshot reads: pinned tree versions and the consistent-cut
//! protocol behind [`crate::ShardedTree::snapshot`] /
//! [`crate::DurableSharded::snapshot`].
//!
//! Every shard cell publishes an immutable [`Published`] version of
//! its tree after each write (an O(1) structural clone — tree versions
//! share nodes copy-on-write). A [`Snapshot`] pins one published
//! version per shard, chosen so the set forms a **consistent cut** of
//! the write history: for every write, either its effect is visible in
//! the snapshot or it isn't — never half of a multi-shard topology
//! change, never a torn per-shard batch.
//!
//! ## The cut protocol
//!
//! A global [`WriteClock`] counts writes twice: `begun` increments
//! before a writer publishes, `done` after. Taking a snapshot
//! optimistically:
//!
//! 1. read `done`, then `begun`; retry unless equal (no publication
//!    in flight at that instant),
//! 2. load the routing state and every live cell's published root,
//! 3. re-read `begun`; if unchanged, no write *began* during step 2,
//!    so every root collected belongs to the same write-history
//!    prefix — a cut.
//!
//! Under sustained writes the optimistic loop could starve, so after a
//! bounded number of attempts the slow path locks every live cell's
//! writer lock in slot order (publications happen under the cell
//! writer lock, so holding all of them freezes the cut), collects, and
//! releases. Readers therefore never block writers; a snapshot under
//! heavy write pressure briefly blocks writers instead — the
//! deliberate trade.
//!
//! Splits bracket their whole topology flip (retire parent + install
//! successor state) in one `begun`/`done` pair while holding the
//! parent's writer lock, so a snapshot can never observe a half-split
//! topology, and a snapshot pinned *before* a split keeps reading the
//! parent's last published version — retiring a cell does not revoke
//! its published root.

use crate::epoch::ShardMap;
use crate::merge::merge_nearest;
use crate::metrics::SwapMetrics;
use crate::ShardStats;
use phtree::PhTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One immutable published version of a shard's tree, stamped with its
/// publication time (the reader-observed root-age metric reads the
/// stamp).
pub(crate) struct Published<V, const K: usize> {
    pub(crate) tree: PhTree<V, K>,
    pub(crate) stamp: Instant,
}

impl<V, const K: usize> Published<V, K> {
    pub(crate) fn now(tree: PhTree<V, K>) -> Arc<Self> {
        Arc::new(Published {
            tree,
            stamp: Instant::now(),
        })
    }
}

/// How many optimistic attempts [`crate::ShardedTree::snapshot`] makes
/// before falling back to locking the cells.
pub(crate) const SNAPSHOT_SPIN: usize = 64;

/// The global write counter pair backing the consistent-cut protocol
/// (see module docs).
#[derive(Default)]
pub(crate) struct WriteClock {
    begun: AtomicU64,
    done: AtomicU64,
}

impl WriteClock {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Runs `f` (the publication) bracketed by `begun`/`done`.
    /// Multi-shard publications wrapped in a single bracket are atomic
    /// to snapshots.
    #[inline]
    pub(crate) fn bracket<R>(&self, f: impl FnOnce() -> R) -> R {
        self.begun.fetch_add(1, Ordering::SeqCst);
        let out = f();
        self.done.fetch_add(1, Ordering::SeqCst);
        out
    }

    /// The begun-count if no publication is in flight right now, else
    /// `None`. (`done` is read first: `begun == done` can then only
    /// mean an instant with no open bracket.)
    #[inline]
    pub(crate) fn stable(&self) -> Option<u64> {
        let d = self.done.load(Ordering::SeqCst);
        let b = self.begun.load(Ordering::SeqCst);
        (b == d).then_some(b)
    }

    #[inline]
    pub(crate) fn begun(&self) -> u64 {
        self.begun.load(Ordering::SeqCst)
    }
}

/// A consistent point-in-time view across all shards, returned by
/// [`crate::ShardedTree::snapshot`] and
/// [`crate::DurableSharded::snapshot`].
///
/// The handle is cheap: it pins one `Arc` per shard (the published
/// tree versions, which share structure with the live trees
/// copy-on-write) plus the routing map of its epoch. Reads on it are
/// pure traversals — no locks, no retries, no interaction with
/// concurrent writers — and always observe the one consistent cut the
/// snapshot captured. Memory: holding a snapshot keeps at most the
/// captured versions alive; nodes unchanged since the capture are
/// shared with the live trees, so the marginal cost is the writes that
/// happened since (path copies), not a full second index.
pub struct Snapshot<V, const K: usize> {
    map: Arc<ShardMap<K>>,
    /// Slot-indexed; `None` for slots not live in this epoch.
    roots: Vec<Option<Arc<Published<V, K>>>>,
    metrics: SwapMetrics,
}

impl<V, const K: usize> Snapshot<V, K> {
    pub(crate) fn new(
        map: Arc<ShardMap<K>>,
        roots: Vec<Option<Arc<Published<V, K>>>>,
        metrics: SwapMetrics,
    ) -> Self {
        metrics.snapshot_live.add(1);
        Snapshot {
            map,
            roots,
            metrics,
        }
    }

    /// The routing map of the snapshot's epoch.
    pub fn router(&self) -> &ShardMap<K> {
        &self.map
    }

    /// Routing epoch this snapshot was cut at.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// Number of shards in the snapshot.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    pub(crate) fn root(&self, slot: usize) -> &Arc<Published<V, K>> {
        self.roots[slot]
            .as_ref()
            .expect("snapshot routing map addressed a missing root")
    }

    /// The pinned tree of live slot `slot` (for packed checkpoints).
    pub(crate) fn shard_tree(&self, slot: usize) -> &PhTree<V, K> {
        &self.root(slot).tree
    }

    /// Total entries at the snapshot instant.
    pub fn len(&self) -> usize {
        self.map
            .live_slots()
            .into_iter()
            .map(|s| self.root(s).tree.len())
            .sum()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point lookup against the pinned version — returns a borrow into
    /// the snapshot (no clone, no lock).
    pub fn get(&self, key: &[u64; K]) -> Option<&V> {
        let slot = self.map.route(key);
        let _d = phtrace::span(phtrace::Phase::Descent).with_shard(slot);
        self.root(slot).tree.get(key)
    }

    /// Whether `key` was present at the snapshot instant.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get(key).is_some()
    }

    /// Counts entries in the window `[min, max]` without materialising
    /// them, pruning shards by prefix mask.
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> usize {
        self.map
            .matching_shards(min, max)
            .into_iter()
            .map(|s| self.root(s).tree.query(min, max).count())
            .sum()
    }

    /// Per-shard statistics of the pinned versions, shaped like
    /// [`ShardStats`] (pool/pruning counters are zero: a snapshot has
    /// neither).
    pub fn stats(&self) -> ShardStats {
        let live_slots = self.map.live_slots();
        let per_shard: Vec<usize> = live_slots
            .iter()
            .map(|&s| self.root(s).tree.len())
            .collect();
        ShardStats {
            shards: self.map.shards(),
            threads: 0,
            entries: per_shard.iter().sum(),
            per_shard,
            live_slots,
            epoch: self.map.epoch(),
            shards_scanned: 0,
            shards_pruned: 0,
        }
    }
}

impl<V: Clone, const K: usize> Snapshot<V, K> {
    /// All entries in the window `[min, max]` (inclusive corners), in
    /// global Z-order. Runs sequentially on the calling thread;
    /// [`crate::ShardedTree::query`] is the pooled variant (it scans a
    /// snapshot too — same consistency, fanned out).
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)> {
        let matching = self.map.matching_shards(min, max);
        let fan = phtrace::span(phtrace::Phase::FanOut);
        phtrace::add(phtrace::PayloadCounter::Fanout, matching.len() as u64);
        let mut out = Vec::new();
        for s in matching {
            let _d = phtrace::span(phtrace::Phase::Descent).with_shard(s);
            out.extend(
                self.root(s)
                    .tree
                    .query(min, max)
                    .map(|(k, v)| (k, v.clone())),
            );
        }
        drop(fan);
        out
    }

    /// The `n` entries nearest to `center` under integer Euclidean
    /// distance, nearest first, as `(key, value, distance)` — the same
    /// bounded k-way merge of per-shard kNN lists the live layers use,
    /// answered entirely from the pinned versions.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], V, f64)> {
        if n == 0 {
            return Vec::new();
        }
        let slots = self.map.live_slots();
        let fan = phtrace::span(phtrace::Phase::FanOut);
        phtrace::add(phtrace::PayloadCounter::Fanout, slots.len() as u64);
        let lists: Vec<Vec<([u64; K], V, f64)>> = slots
            .into_iter()
            .map(|s| {
                let _d = phtrace::span(phtrace::Phase::Descent).with_shard(s);
                self.root(s)
                    .tree
                    .knn(center, n)
                    .into_iter()
                    .map(|nb| (nb.key, nb.value.clone(), nb.dist))
                    .collect()
            })
            .collect();
        let out = merge_nearest(lists, n, |e| e.2);
        drop(fan);
        out
    }
}

impl<V, const K: usize> Drop for Snapshot<V, K> {
    fn drop(&mut self) {
        self.metrics.snapshot_live.add(-1);
    }
}
