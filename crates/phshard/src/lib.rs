//! # phshard — a concurrent, sharded PH-tree serving layer
//!
//! The PH-tree's structural properties (paper Sect. 3/5) make it
//! unusually easy to serve concurrently: its shape is a pure function
//! of its contents, updates touch at most two nodes, and the top of the
//! tree branches on exactly the bit stream a Z-order prefix router
//! uses. This crate exploits that:
//!
//! * [`ShardedTree`] partitions the key space into `S = 2^s` shards by
//!   the first `s` bits of each key's Z-order interleaving
//!   ([`Router`]). Every shard owns an axis-aligned hypercube prefix
//!   region, so a window query prunes non-matching shards with the
//!   *same* `mL`/`mU` masks the in-node range iterator uses.
//! * Each shard's [`phtree::PhTree`] sits in a reader-writer cell:
//!   point ops lock one shard; window queries / kNN / bulk loads fan
//!   out across a std-only [`WorkerPool`] (no rayon — the workspace
//!   builds offline) and merge results (kNN via a bounded k-way heap
//!   merge).
//! * [`DurableSharded`] gives every shard its own [`phstore::Durable`]
//!   write-ahead log in `base/shard-NNN/`, so journaling never
//!   serialises across shards and crash recovery replays all shards in
//!   parallel.
//! * Both layers **split hot shards online**: [`ShardMap`] is a routing
//!   trie that deepens one leaf's Z-prefix into `2^bits` children while
//!   serving continues, and the durable layer makes the migration
//!   crash-safe with a two-phase manifest commit (see
//!   `phshard::durable` module docs). A [`Rebalancer`] watches per-shard
//!   skew and fires splits by [`RebalancePolicy`].
//!
//! ## Consistency model
//!
//! See [`Consistency`]: per-shard linearizable, cross-shard
//! read-committed.
//!
//! ## Quick start
//!
//! ```
//! use phshard::ShardedTree;
//!
//! // 4 shards, pool sized to the host (0 extra threads on 1 core).
//! let t: ShardedTree<u32, 3> = ShardedTree::new(4);
//! t.insert([1, 2, 3], 10);
//! t.insert([u64::MAX, 0, 7], 20);
//! assert_eq!(t.get(&[1, 2, 3]), Some(10));
//! // Window query: prunes shards whose prefix region misses the box.
//! assert_eq!(t.query(&[0, 0, 0], &[9, 9, 9]), vec![([1, 2, 3], 10)]);
//! assert_eq!(t.knn(&[1, 2, 2], 1)[0].0, [1, 2, 3]);
//! ```

#![warn(missing_docs)]

mod durable;
mod epoch;
mod error;
mod merge;
mod metrics;
mod pool;
mod rebalance;
mod route;
mod sharded;

pub use durable::{DurableSharded, PendingSplit, DEFAULT_BACKLOG_CAP, MANIFEST_FILE};
pub use epoch::{ShardMap, MAX_DEPTH};
pub use error::ShardError;
pub use metrics::PoolMetrics;
pub use pool::WorkerPool;
pub use rebalance::{RebalancePolicy, Rebalancer, SkewReport, Splittable};
pub use route::{Router, MAX_SHARDS};
pub use sharded::{ShardStats, ShardedTree, SplitReport};

/// The consistency guarantee of an operation on a sharded tree.
///
/// The sharded layer deliberately trades global ordering for
/// parallelism, and this enum documents exactly where the line is:
///
/// * Operations touching **one key** (`insert`, `remove`, `get`,
///   `get_with`, `contains`) acquire the owning shard's reader-writer
///   lock and are therefore [`Consistency::Linearizable`] — there is a
///   single total order of operations per shard, and every read sees
///   the latest acknowledged write of its key.
/// * Operations spanning **multiple shards** (`query`, `query_count`,
///   `knn`, `len`, `bulk_load`, `stats`) lock each shard independently
///   (never two at once — no lock-order deadlocks, writers never stall
///   behind a long cross-shard scan). Each shard contributes a
///   committed snapshot, but the snapshots are not taken at one global
///   instant: [`Consistency::ReadCommitted`]. A query concurrent with
///   writes may reflect a write on shard A and miss an *earlier* write
///   on shard B; it never sees torn or uncommitted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Single total order; reads see the latest acknowledged write.
    /// Holds for all single-key operations (they lock one shard).
    Linearizable,
    /// Per-shard committed snapshots without a global instant. Holds
    /// for all cross-shard operations.
    ReadCommitted,
}

/// The guarantee an operation enjoys, by whether it can span shards.
/// (Single-key ops never span shards; everything else may.)
pub const fn consistency(spans_shards: bool) -> Consistency {
    if spans_shards {
        Consistency::ReadCommitted
    } else {
        Consistency::Linearizable
    }
}

// Compile-time thread-safety guarantees: the whole point of this crate
// is `&self` access from many threads, so a regression here must be a
// compile error.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<ShardedTree<String, 3>>();
    send_sync::<DurableSharded<String, 3>>();
    send_sync::<Router<3>>();
    send_sync::<WorkerPool>();
};
