//! # phshard — a concurrent, sharded PH-tree serving layer
//!
//! The PH-tree's structural properties (paper Sect. 3/5) make it
//! unusually easy to serve concurrently: its shape is a pure function
//! of its contents, updates touch at most two nodes, and the top of the
//! tree branches on exactly the bit stream a Z-order prefix router
//! uses. This crate exploits that:
//!
//! * [`ShardedTree`] partitions the key space into `S = 2^s` shards by
//!   the first `s` bits of each key's Z-order interleaving
//!   ([`Router`]). Every shard owns an axis-aligned hypercube prefix
//!   region, so a window query prunes non-matching shards with the
//!   *same* `mL`/`mU` masks the in-node range iterator uses.
//! * The read path is **lock-free** (MVCC-lite): every write publishes
//!   an immutable tree version — an O(1) structural clone, versions
//!   share nodes copy-on-write — through an atomic swap cell, and
//!   `get`/`query`/`knn` serve from published versions without
//!   acquiring any lock (pinned by a debug-mode lock counter,
//!   [`data_lock_acquisitions`]). Writes lock one shard; window
//!   queries / kNN / bulk loads fan out across a std-only
//!   [`WorkerPool`] (no rayon — the workspace builds offline) and
//!   merge results (kNN via a bounded k-way heap merge).
//! * [`ShardedTree::snapshot`] / [`DurableSharded::snapshot`] pin a
//!   [`Snapshot`]: a consistent cut across all shards, so cross-shard
//!   scans are snapshot reads instead of read-committed.
//! * [`DurableSharded`] gives every shard its own [`phstore::Durable`]
//!   write-ahead log in `base/shard-NNN/`, so journaling never
//!   serialises across shards and crash recovery replays all shards in
//!   parallel.
//! * Both layers **split hot shards online**: [`ShardMap`] is a routing
//!   trie that deepens one leaf's Z-prefix into `2^bits` children while
//!   serving continues, and the durable layer makes the migration
//!   crash-safe with a two-phase manifest commit (see
//!   `phshard::durable` module docs). A [`Rebalancer`] watches per-shard
//!   skew and fires splits by [`RebalancePolicy`].
//!
//! ## Consistency model
//!
//! See [`Consistency`]: per-shard linearizable, cross-shard snapshot
//! reads (a consistent cut; see [`Snapshot`]).
//!
//! ## Quick start
//!
//! ```
//! use phshard::ShardedTree;
//!
//! // 4 shards, pool sized to the host (0 extra threads on 1 core).
//! let t: ShardedTree<u32, 3> = ShardedTree::new(4);
//! t.insert([1, 2, 3], 10);
//! t.insert([u64::MAX, 0, 7], 20);
//! assert_eq!(t.get(&[1, 2, 3]), Some(10));
//! // Window query: prunes shards whose prefix region misses the box.
//! assert_eq!(t.query(&[0, 0, 0], &[9, 9, 9]), vec![([1, 2, 3], 10)]);
//! assert_eq!(t.knn(&[1, 2, 2], 1)[0].0, [1, 2, 3]);
//! ```

#![warn(missing_docs)]

mod durable;
mod epoch;
mod error;
mod lockstat;
mod merge;
mod metrics;
mod packed;
mod pool;
mod rebalance;
mod route;
mod sharded;
pub mod snapshot;
mod swap;

pub use durable::{DurableSharded, PendingSplit, DEFAULT_BACKLOG_CAP, MANIFEST_FILE};
pub use epoch::{ShardMap, MAX_DEPTH};
pub use error::ShardError;
#[cfg(debug_assertions)]
pub use lockstat::data_lock_acquisitions;
pub use metrics::PoolMetrics;
pub use packed::{
    write_packed_checkpoint, PackedCheckpoint, PackedShards, PACKED_MANIFEST, PACKED_SHARDS_MAGIC,
};
pub use pool::WorkerPool;
pub use rebalance::{RebalancePolicy, Rebalancer, SkewReport, Splittable};
pub use route::{Router, MAX_SHARDS};
pub use sharded::{ShardStats, ShardedTree, SplitReport};
pub use snapshot::Snapshot;

/// The consistency guarantee of an operation on a sharded tree.
///
/// The sharded layer deliberately trades global write ordering for
/// parallelism, and this enum documents exactly where the line is:
///
/// * Operations touching **one key** (`insert`, `remove`, `get`,
///   `get_with`, `contains`) are [`Consistency::Linearizable`]:
///   writers serialise on the owning shard's writer lock and publish a
///   new tree version before acknowledging; readers load the published
///   version lock-free, so every read sees the latest acknowledged
///   write of its key — without ever blocking on a writer.
/// * Operations spanning **multiple shards** (`query`, `query_count`,
///   `knn`, `len`, `stats`, and everything on a [`Snapshot`]) are
///   [`Consistency::Snapshot`]: they pin one consistent cut of the
///   write history across *all* shards (see [`crate::snapshot`] for
///   the cut protocol) and read it without locks. A scan concurrent
///   with writes reflects exactly the writes that precede its cut —
///   never half of a batch, never one side of a shard split, never a
///   write on shard A together with a miss of an earlier write on
///   shard B. (This upgrades the pre-MVCC model, which was
///   read-committed: per-shard committed states with no global
///   instant.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Single total order; reads see the latest acknowledged write.
    /// Holds for all single-key operations.
    Linearizable,
    /// One consistent cut of the write history across all shards.
    /// Holds for all cross-shard reads (they scan a pinned
    /// [`Snapshot`]).
    Snapshot,
}

/// The guarantee an operation enjoys, by whether it can span shards.
/// (Single-key ops never span shards; everything else may.)
pub const fn consistency(spans_shards: bool) -> Consistency {
    if spans_shards {
        Consistency::Snapshot
    } else {
        Consistency::Linearizable
    }
}

// Compile-time thread-safety guarantees: the whole point of this crate
// is `&self` access from many threads, so a regression here must be a
// compile error.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<ShardedTree<String, 3>>();
    send_sync::<DurableSharded<String, 3>>();
    send_sync::<Snapshot<String, 3>>();
    send_sync::<Router<3>>();
    send_sync::<WorkerPool>();
};
