//! Bounded k-way merge of per-shard nearest-neighbour lists.
//!
//! Each shard's kNN runs independently and returns its `n` nearest
//! entries sorted by distance; the global answer is the `n` smallest of
//! the union. Merging with a heap of list heads costs
//! `O(n log S)` — it stops as soon as `n` results are emitted instead
//! of sorting all `S · n` candidates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order f64 wrapper (NaN-free distances; `total_cmp` for
/// safety).
#[derive(PartialEq, PartialOrd)]
struct D(f64);
impl Eq for D {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for D {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Merges per-shard ascending-by-distance lists into the global `n`
/// nearest, ascending. `dist` extracts the sort key.
pub fn merge_nearest<T>(lists: Vec<Vec<T>>, n: usize, dist: impl Fn(&T) -> f64) -> Vec<T> {
    let mut lists: Vec<std::vec::IntoIter<T>> = lists.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(D, usize)>> = BinaryHeap::with_capacity(lists.len());
    let mut heads: Vec<Option<T>> = Vec::with_capacity(lists.len());
    for (i, it) in lists.iter_mut().enumerate() {
        let head = it.next();
        if let Some(h) = &head {
            heap.push(Reverse((D(dist(h)), i)));
        }
        heads.push(head);
    }
    let mut out = Vec::with_capacity(n.min(64));
    while out.len() < n {
        let Some(Reverse((_, i))) = heap.pop() else {
            break;
        };
        let item = heads[i].take().expect("head tracked by heap");
        out.push(item);
        heads[i] = lists[i].next();
        if let Some(h) = &heads[i] {
            heap.push(Reverse((D(dist(h)), i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_global_top_n() {
        let lists = vec![vec![0.5, 2.0, 9.0], vec![], vec![0.1, 0.2, 0.3], vec![1.0]];
        let got = merge_nearest(lists, 4, |&d| d);
        assert_eq!(got, vec![0.1, 0.2, 0.3, 0.5]);
    }

    #[test]
    fn merge_short_input() {
        let got = merge_nearest(vec![vec![3.0], vec![1.0]], 10, |&d| d);
        assert_eq!(got, vec![1.0, 3.0]);
    }

    #[test]
    fn merge_ties_are_stable_enough() {
        // Equal distances: all of them surface, in some order.
        let mut got = merge_nearest(vec![vec![1.0, 1.0], vec![1.0]], 3, |&d| d);
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![1.0, 1.0, 1.0]);
    }
}
