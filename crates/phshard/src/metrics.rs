//! Instrument wiring for the sharded serving layer.
//!
//! All instruments are issued by a [`phmetrics::Registry`] passed to
//! [`crate::ShardedTree::with_metrics`] / [`crate::WorkerPool::with_metrics`].
//! Trees built without a registry carry no-op handles, so every record
//! call below compiles to a branch on a null `Option` — the layer is
//! instrumented unconditionally and the handles decide.
//!
//! Instrument catalogue (Prometheus names):
//!
//! * `phshard_ops_total{op=...}` — counter per operation type
//!   (`insert`, `remove`, `get`, `query`, `query_count`, `knn`,
//!   `bulk_load`).
//! * `phshard_op_latency_ns{op=...}` — log₂ latency histogram per
//!   operation type, measured at the `ShardedTree` API boundary.
//! * `phshard_shard_ops_total{shard=N}` — keys routed to shard `N`
//!   (single-key ops count 1, `bulk_load` counts its partition size);
//!   the live counterpart of [`crate::ShardStats::skew`].
//! * `phshard_query_fanout` — histogram of surviving shards per window
//!   query after prefix-mask pruning.
//! * `phshard_knn_merge_candidates` — histogram of total per-shard
//!   candidates entering the bounded k-way kNN merge.
//! * `phshard_pool_queue_depth` (+`_peak`) — fan-out pool queue depth.
//! * `phshard_pool_tasks_total` — jobs submitted to the pool.
//! * `phshard_pool_task_panics_total` — jobs that panicked (caught;
//!   the worker survives).
//! * `phshard_pool_busy_ns_total` — cumulative worker busy time.
//!
//! Rebalancing instruments (`phshard_rebalance_*` and friends):
//!
//! * `phshard_rebalance_splits_total` — committed hot-shard splits.
//! * `phshard_rebalance_split_failures_total` — splits that errored
//!   (store failure, depth/count ceiling, lost race).
//! * `phshard_rebalance_shed_total` — writes shed with `Overloaded`
//!   because a migrating slot's backlog was full.
//! * `phshard_rebalance_migrated_entries_total` — entries copied into
//!   child shards by splits.
//! * `phshard_rebalance_backlog_drained_total` — backlogged writes
//!   replayed onto children at commit.
//! * `phshard_routing_epoch` — current routing epoch (gauge; bumps on
//!   every committed split).
//! * `phshard_migration_inflight` — migrations currently in progress
//!   (gauge; 0 or 1 per slot, splits are serialised).

use phmetrics::{Counter, Gauge, Histogram, OpTimer, Registry};
use std::time::Instant;

/// Instruments of the MVCC-lite publication machinery, shared by the
/// in-memory and durable layers:
///
/// * `phshard_root_swaps_total` — published tree versions (one root
///   swap per write/batch/split publication).
/// * `phshard_snapshot_live` — currently live [`crate::Snapshot`]
///   handles (gauge; `high_water` tracks the peak).
/// * `phshard_root_age_ns` — log₂ histogram of the age of the
///   published root at the moment a reader served from it (how stale
///   lock-free reads actually run).
#[derive(Clone)]
pub(crate) struct SwapMetrics {
    pub(crate) root_swaps: Counter,
    pub(crate) snapshot_live: Gauge,
    pub(crate) root_age_ns: Histogram,
}

impl SwapMetrics {
    pub(crate) fn disabled() -> Self {
        SwapMetrics {
            root_swaps: Counter::noop(),
            snapshot_live: Gauge::noop(),
            root_age_ns: Histogram::noop(),
        }
    }

    pub(crate) fn new(reg: &Registry) -> Self {
        SwapMetrics {
            root_swaps: reg.counter("phshard_root_swaps_total"),
            snapshot_live: reg.gauge("phshard_snapshot_live"),
            root_age_ns: reg.histogram("phshard_root_age_ns"),
        }
    }

    /// Records how old the published root a reader just served from
    /// was.
    #[inline]
    pub(crate) fn note_root_age(&self, published_at: &Instant) {
        if self.root_age_ns.is_enabled() {
            self.root_age_ns
                .record(published_at.elapsed().as_nanos() as u64);
        }
    }
}

/// Handles for one operation type: total counter + latency histogram.
#[derive(Clone)]
pub(crate) struct OpInstruments {
    total: Counter,
    latency_ns: Histogram,
}

impl OpInstruments {
    fn noop() -> Self {
        OpInstruments {
            total: Counter::noop(),
            latency_ns: Histogram::noop(),
        }
    }

    fn new(reg: &Registry, op: &str) -> Self {
        OpInstruments {
            total: reg.counter(&format!("phshard_ops_total{{op=\"{op}\"}}")),
            latency_ns: reg.histogram(&format!("phshard_op_latency_ns{{op=\"{op}\"}}")),
        }
    }

    /// Starts the latency clock (no-op handles skip the clock read).
    #[inline]
    pub(crate) fn start(&self) -> OpTimer {
        self.latency_ns.start()
    }

    /// Counts the op and records its latency.
    #[inline]
    pub(crate) fn finish(&self, t: OpTimer) {
        self.total.inc();
        self.latency_ns.finish(t);
    }
}

/// Every instrument recorded by [`crate::ShardedTree`].
#[derive(Clone)]
pub(crate) struct ShardMetrics {
    pub(crate) insert: OpInstruments,
    pub(crate) remove: OpInstruments,
    pub(crate) get: OpInstruments,
    pub(crate) query: OpInstruments,
    pub(crate) query_count: OpInstruments,
    pub(crate) knn: OpInstruments,
    pub(crate) bulk_load: OpInstruments,
    pub(crate) fanout: Histogram,
    pub(crate) merge_candidates: Histogram,
    per_shard_ops: Vec<Counter>,
}

impl ShardMetrics {
    pub(crate) fn disabled() -> Self {
        ShardMetrics {
            insert: OpInstruments::noop(),
            remove: OpInstruments::noop(),
            get: OpInstruments::noop(),
            query: OpInstruments::noop(),
            query_count: OpInstruments::noop(),
            knn: OpInstruments::noop(),
            bulk_load: OpInstruments::noop(),
            fanout: Histogram::noop(),
            merge_candidates: Histogram::noop(),
            per_shard_ops: Vec::new(),
        }
    }

    pub(crate) fn new(reg: &Registry, shards: usize) -> Self {
        ShardMetrics {
            insert: OpInstruments::new(reg, "insert"),
            remove: OpInstruments::new(reg, "remove"),
            get: OpInstruments::new(reg, "get"),
            query: OpInstruments::new(reg, "query"),
            query_count: OpInstruments::new(reg, "query_count"),
            knn: OpInstruments::new(reg, "knn"),
            bulk_load: OpInstruments::new(reg, "bulk_load"),
            fanout: reg.histogram("phshard_query_fanout"),
            merge_candidates: reg.histogram("phshard_knn_merge_candidates"),
            per_shard_ops: (0..shards)
                .map(|s| reg.counter(&format!("phshard_shard_ops_total{{shard=\"{s}\"}}")))
                .collect(),
        }
    }

    /// Counts `n` keys routed to shard `s` (no-op when disabled: the
    /// vector is empty).
    #[inline]
    pub(crate) fn add_shard_ops(&self, s: usize, n: u64) {
        if let Some(c) = self.per_shard_ops.get(s) {
            c.add(n);
        }
    }
}

/// Instruments emitted by the online-rebalancing machinery
/// ([`crate::ShardedTree::split_shard`],
/// [`crate::DurableSharded::split_shard`], and the write-shedding
/// path). Disabled handles are no-ops, so the transitions are
/// instrumented unconditionally.
#[derive(Clone)]
pub(crate) struct RebalanceMetrics {
    pub(crate) splits: Counter,
    pub(crate) split_failures: Counter,
    pub(crate) shed: Counter,
    pub(crate) migrated_entries: Counter,
    pub(crate) backlog_drained: Counter,
    pub(crate) routing_epoch: Gauge,
    pub(crate) migration_inflight: Gauge,
}

impl RebalanceMetrics {
    pub(crate) fn disabled() -> Self {
        RebalanceMetrics {
            splits: Counter::noop(),
            split_failures: Counter::noop(),
            shed: Counter::noop(),
            migrated_entries: Counter::noop(),
            backlog_drained: Counter::noop(),
            routing_epoch: Gauge::noop(),
            migration_inflight: Gauge::noop(),
        }
    }

    pub(crate) fn new(reg: &Registry) -> Self {
        RebalanceMetrics {
            splits: reg.counter("phshard_rebalance_splits_total"),
            split_failures: reg.counter("phshard_rebalance_split_failures_total"),
            shed: reg.counter("phshard_rebalance_shed_total"),
            migrated_entries: reg.counter("phshard_rebalance_migrated_entries_total"),
            backlog_drained: reg.counter("phshard_rebalance_backlog_drained_total"),
            routing_epoch: reg.gauge("phshard_routing_epoch"),
            migration_inflight: reg.gauge("phshard_migration_inflight"),
        }
    }
}

/// Instruments for a [`crate::WorkerPool`] (see the module docs for
/// the catalogue). Built from a registry via
/// [`PoolMetrics::from_registry`]; [`PoolMetrics::disabled`] is the
/// no-op default every plain `WorkerPool::new` ships with.
#[derive(Clone)]
pub struct PoolMetrics {
    pub(crate) queue_depth: Gauge,
    pub(crate) tasks: Counter,
    pub(crate) panics: Counter,
    pub(crate) busy_ns: Counter,
}

impl PoolMetrics {
    /// No-op handles; records nothing.
    pub fn disabled() -> Self {
        PoolMetrics {
            queue_depth: Gauge::noop(),
            tasks: Counter::noop(),
            panics: Counter::noop(),
            busy_ns: Counter::noop(),
        }
    }

    /// Pool instruments registered under `phshard_pool_*`.
    pub fn from_registry(reg: &Registry) -> Self {
        PoolMetrics {
            queue_depth: reg.gauge("phshard_pool_queue_depth"),
            tasks: reg.counter("phshard_pool_tasks_total"),
            panics: reg.counter("phshard_pool_task_panics_total"),
            busy_ns: reg.counter("phshard_pool_busy_ns_total"),
        }
    }
}
