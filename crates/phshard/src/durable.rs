//! Durable sharded mode: one `phstore::Durable` WAL per shard, with
//! crash-safe online shard splitting.
//!
//! Each shard journals to its own subdirectory
//! (`phstore::durable::shard_dir`: `base/shard-NNN/`), so WAL appends
//! on different shards never serialise on one file, and recovery —
//! snapshot load + WAL replay per shard — runs on all cores. A
//! manifest in the base directory records the full routing topology
//! (a [`ShardMap`] trie), the routing epoch, and — while a split is in
//! flight — an in-progress migration record.
//!
//! ## Manifest v2 (`PHSHARD2`)
//!
//! ```text
//! magic      "PHSHARD2"                8 bytes
//! k          dimension count           u32 LE
//! gen        manifest write counter    u64 LE
//! epoch      routing epoch             u64 LE
//! next_slot  slot allocation bound     u32 LE
//! map        length-prefixed ShardMap  u32 LE + preorder bytes
//! migration  0, or 1 + record          u8 [+ src u32, bits u32,
//!                                          n u32, children u32×n]
//! crc        FNV-1a of all above       u64 LE
//! ```
//!
//! Every manifest write is atomic: staging file, fsync, rename over
//! `phshard.meta`, directory fsync — a crash can only ever expose the
//! previous or the next manifest, never a torn one. Legacy `PHSHARD1`
//! manifests (uniform shard count only) are read and upgraded in
//! place.
//!
//! ## Migration protocol (hot-shard split)
//!
//! A split of slot `P` into children `C₀..Cₙ` walks four states; the
//! commit point is a single manifest rename:
//!
//! ```text
//! IDLE ──(1 prepare)──▶ PREPARED ──(2 copy)──▶ COPIED ──(3 commit)──▶ DONE
//!
//! 1 prepare  manifest := {old map, migration record}   (atomic)
//! 2 copy     freeze-point snapshot of P under a brief write lock;
//!            children built via bulk_load + snapshot write;
//!            writes to P keep journaling to P's WAL *and* queue in a
//!            bounded backlog (full backlog ⇒ typed Overloaded shed —
//!            the shed op is neither journaled nor applied);
//!            reads keep serving from P throughout
//! 3 commit   under P's write lock: drain backlog into the children's
//!            WALs, sync, then manifest := {new map, no record}
//!            (atomic rename = commit point); install the new routing
//!            epoch in memory; retire P's cell
//! ```
//!
//! Crash recovery is deterministic at every byte: a manifest *with* a
//! migration record rolls the split back (delete the children's files
//! — their content is a re-derivable copy — then clear the record),
//! landing in the pre-migration state with every acknowledged write
//! intact in `P`'s WAL; a manifest *without* a record is already the
//! pre- or post-migration state. Backlogged writes are journaled to
//! `P` at acknowledgement time, so they survive rollback even though
//! commit re-journals them to the children. The `migration_crash`
//! integration test sweeps a crash through every byte of this write
//! stream and asserts exactly that.

use crate::epoch::ShardMap;
use crate::error::ShardError;
use crate::lockstat::DataMutex;
use crate::metrics::{RebalanceMetrics, SwapMetrics};
use crate::sharded::SplitReport;
use crate::snapshot::{Published, Snapshot, WriteClock, SNAPSHOT_SPIN};
use crate::swap::Swap;
use phmetrics::Registry;
use phstore::durable::shard_dir;
use phstore::vfs::{StdVfs, Vfs};
use phstore::{fnv1a, Corruption, Durable, DurableConfig, RecoveryStats, StoreError, ValueCodec};
use phtree::{Op, PhTree};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Manifest file recording the routing topology of a sharded store
/// directory.
pub const MANIFEST_FILE: &str = "phshard.meta";
const MAGIC_V1: &[u8; 8] = b"PHSHARD1";
const MAGIC_V2: &[u8; 8] = b"PHSHARD2";

/// Default bound on a migrating shard's write backlog before further
/// writes shed with [`ShardError::Overloaded`].
pub const DEFAULT_BACKLOG_CAP: usize = 4096;

/// In-progress migration record, persisted in the manifest between
/// prepare and commit so recovery knows which child directories to
/// roll back.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MigrationRecord {
    src: u32,
    bits: u32,
    children: Vec<u32>,
}

/// The decoded manifest: committed routing map + optional in-flight
/// migration.
#[derive(Debug, Clone, PartialEq)]
struct Manifest<const K: usize> {
    map: ShardMap<K>,
    gen: u64,
    migration: Option<MigrationRecord>,
}

impl<const K: usize> Manifest<K> {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC_V2);
        out.extend_from_slice(&(K as u32).to_le_bytes());
        out.extend_from_slice(&self.gen.to_le_bytes());
        out.extend_from_slice(&self.map.epoch().to_le_bytes());
        out.extend_from_slice(&(self.map.slot_bound() as u32).to_le_bytes());
        let mut map_bytes = Vec::new();
        self.map.encode(&mut map_bytes);
        out.extend_from_slice(&(map_bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&map_bytes);
        match &self.migration {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                out.extend_from_slice(&m.src.to_le_bytes());
                out.extend_from_slice(&m.bits.to_le_bytes());
                out.extend_from_slice(&(m.children.len() as u32).to_le_bytes());
                for c in &m.children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        let crc = fnv1a(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Manifest<K>, StoreError> {
        let bad = |what: &'static str| StoreError::from(Corruption::new(what));
        // Legacy v1: magic + u32 shard count, no checksum.
        if bytes.len() == 12 && &bytes[..8] == MAGIC_V1 {
            let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
            if !count.is_power_of_two() || count > crate::MAX_SHARDS {
                return Err(bad("legacy manifest shard count invalid"));
            }
            return Ok(Manifest {
                map: ShardMap::uniform(count),
                gen: 0,
                migration: None,
            });
        }
        if bytes.len() < 8 || &bytes[..8] != MAGIC_V2 {
            return Err(bad("sharded manifest magic mismatch"));
        }
        if bytes.len() < 8 + 8 {
            return Err(bad("sharded manifest truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let crc = u64::from_le_bytes(crc_bytes.try_into().unwrap());
        if fnv1a(body) != crc {
            return Err(bad("sharded manifest checksum mismatch"));
        }
        let mut pos = 8usize;
        let mut take = |n: usize| -> Result<&[u8], StoreError> {
            let s = body
                .get(pos..pos + n)
                .ok_or_else(|| Corruption::new("sharded manifest truncated"))?;
            pos += n;
            Ok(s)
        };
        let k = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        if k != K {
            return Err(bad("sharded manifest dimension mismatch"));
        }
        let gen = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let epoch = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let next_slot = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let map_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let map_bytes = take(map_len)?;
        let map = ShardMap::decode(map_bytes, epoch, next_slot)
            .ok_or_else(|| bad("sharded manifest routing map malformed"))?;
        let migration = match take(1)?[0] {
            0 => None,
            1 => {
                let src = u32::from_le_bytes(take(4)?.try_into().unwrap());
                let bits = u32::from_le_bytes(take(4)?.try_into().unwrap());
                let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
                if n > crate::MAX_SHARDS {
                    return Err(bad("sharded manifest migration record malformed"));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    children.push(u32::from_le_bytes(take(4)?.try_into().unwrap()));
                }
                Some(MigrationRecord {
                    src,
                    bits,
                    children,
                })
            }
            _ => return Err(bad("sharded manifest migration tag invalid")),
        };
        if pos != body.len() {
            return Err(bad("sharded manifest has trailing bytes"));
        }
        Ok(Manifest {
            map,
            gen,
            migration,
        })
    }
}

/// Atomically writes the manifest: staging file + fsync + rename +
/// directory fsync. A crash anywhere exposes either the previous or
/// the new manifest, never a torn one.
fn write_manifest<const K: usize>(
    vfs: &dyn Vfs,
    dir: &Path,
    m: &Manifest<K>,
) -> Result<(), StoreError> {
    let path = dir.join(MANIFEST_FILE);
    let staging = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let bytes = m.encode();
    let mut f = vfs.create(&staging)?;
    f.write_all_at(&bytes, 0)?;
    f.sync_all()?;
    drop(f);
    vfs.rename(&staging, &path)?;
    vfs.sync_dir(dir)?;
    Ok(())
}

fn read_manifest<const K: usize>(
    vfs: &dyn Vfs,
    dir: &Path,
) -> Result<Option<Manifest<K>>, StoreError> {
    let path = dir.join(MANIFEST_FILE);
    if !vfs.exists(&path) {
        return Ok(None);
    }
    let mut f = vfs.open(&path)?;
    let len = f.len()? as usize;
    let mut bytes = vec![0u8; len];
    f.read_exact_at(&mut bytes, 0)?;
    Manifest::decode(&bytes).map(Some)
}

/// Best-effort removal of one shard directory's files (snapshot, WAL,
/// staging leftovers). Used by migration rollback and post-commit
/// cleanup; failures are ignored — leftover bytes in an unreferenced
/// directory are garbage, not state.
fn scrub_shard_dir(vfs: &dyn Vfs, dir: &Path) {
    for name in [phstore::durable::SNAPSHOT_FILE, phstore::durable::WAL_FILE] {
        let p = dir.join(name);
        let _ = vfs.remove_file(&p);
        let _ = vfs.remove_file(&dir.join(format!("{name}.tmp")));
    }
}

/// Bounded queue of writes accepted while a slot's contents are being
/// copied; drained onto the children at commit.
struct Backlog<V, const K: usize> {
    ops: Vec<Op<V, K>>,
    cap: usize,
}

/// One shard's durable cell: the store plus (while migrating) the
/// write backlog, guarded together so backlog membership is exactly
/// "journaled after the freeze-point snapshot".
struct DurCellState<V: ValueCodec, const K: usize> {
    store: Durable<V, K>,
    backlog: Option<Backlog<V, K>>,
}

/// One shard's durable cell. Writers mutate `state` (journal + apply)
/// under its lock and then publish an O(1) structural clone of the
/// store's tree through `published`; readers only touch `published`
/// (lock-free). `retired` flips inside the commit's write-clock
/// bracket, *before* the successor state installs — see
/// [`crate::sharded`] for why that order makes lock-free reads sound.
struct DurCell<V: ValueCodec, const K: usize> {
    retired: AtomicBool,
    state: DataMutex<DurCellState<V, K>>,
    published: Swap<Published<V, K>>,
}

impl<V: ValueCodec, const K: usize> DurCell<V, K> {
    fn fresh(store: Durable<V, K>) -> Arc<Self> {
        Arc::new(DurCell {
            retired: AtomicBool::new(false),
            published: Swap::new(Published::now(store.tree().clone())),
            state: DataMutex::new(DurCellState {
                store,
                backlog: None,
            }),
        })
    }

    /// Publishes the store's current tree. Must be called under the
    /// cell's state lock and inside a write-clock bracket.
    fn publish(&self, cs: &DurCellState<V, K>, metrics: &SwapMetrics) {
        self.published
            .store(Published::now(cs.store.tree().clone()));
        metrics.root_swaps.inc();
    }
}

/// An immutable routing snapshot: map + slot-indexed cells, swapped
/// wholesale behind `Arc` at each committed split.
struct DurInner<V: ValueCodec, const K: usize> {
    map: Arc<ShardMap<K>>,
    cells: Vec<Option<Arc<DurCell<V, K>>>>,
}

/// A split prepared by [`DurableSharded::begin_split`]: children built
/// and durable, backlog accepting writes, manifest carrying the
/// migration record. Holds the split gate, so exactly one can exist;
/// pass it to [`DurableSharded::commit_split`] to make the new routing
/// epoch the committed state, or [`DurableSharded::abort_split`] to
/// roll back. Dropping it without either leaves the slot backlogging
/// (and eventually shedding) until the next reopen rolls the split
/// back — always safe, never lossy, but don't.
pub struct PendingSplit<'a, V: ValueCodec, const K: usize> {
    _gate: MutexGuard<'a, u64>,
    src: usize,
    map2: ShardMap<K>,
    child_slots: Vec<usize>,
    children: Vec<Durable<V, K>>,
    migrated: usize,
}

impl<V: ValueCodec, const K: usize> PendingSplit<'_, V, K> {
    /// The slot being split.
    pub fn src(&self) -> usize {
        self.src
    }

    /// The child slots the commit will install.
    pub fn children(&self) -> &[usize] {
        &self.child_slots
    }
}

/// A crash-safe [`crate::ShardedTree`]-alike: per-shard
/// [`phstore::Durable`] write-ahead logs, parallel recovery, and
/// online hot-shard splitting (see the module docs for the migration
/// protocol).
///
/// Consistency matches the in-memory layer: single-key operations are
/// linearizable within their shard *and* durable once acknowledged
/// (journal-then-apply under the shard's write lock, published to the
/// lock-free read path before the ack); cross-shard reads are snapshot
/// reads over a consistent cut ([`DurableSharded::snapshot`]).
/// Durability is per shard too — a crash can lose
/// no acknowledged op, but ops acknowledged on different shards have
/// no global order in the logs. During a migration the source shard
/// keeps serving reads and accepting writes; only backlog overflow
/// sheds (typed [`ShardError::Overloaded`], not journaled, safe to
/// retry).
pub struct DurableSharded<V: ValueCodec + Clone + Send + Sync, const K: usize> {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    config: DurableConfig,
    state: Swap<DurInner<V, K>>,
    /// Global write counter pair for the snapshot consistent-cut
    /// protocol (see [`crate::snapshot`]).
    clock: WriteClock,
    /// Serialises splits; the guarded value is the manifest write
    /// counter (`gen`), owned by whoever holds the gate.
    split_gate: Mutex<u64>,
    backlog_cap: AtomicUsize,
    recovery: Vec<RecoveryStats>,
    rolled_back: bool,
    reb_metrics: RebalanceMetrics,
    swap_metrics: SwapMetrics,
}

impl<V: ValueCodec + Clone + Send + Sync, const K: usize> DurableSharded<V, K> {
    /// Opens (or initialises) a sharded durable store under `dir` on
    /// the real filesystem with default tuning.
    pub fn open(dir: &Path, shards: usize) -> Result<Self, StoreError> {
        Self::open_with(Arc::new(StdVfs), dir, shards, DurableConfig::default())
    }

    /// Opens (or initialises) on any [`Vfs`]. Recovers all shards in
    /// parallel (one thread per shard). `shards` is the *initial*
    /// uniform topology: once the store has split (epoch > 0), the
    /// manifest's topology is authoritative and `shards` is ignored;
    /// at epoch 0 a mismatch with the manifest is refused, as before.
    /// A manifest carrying an in-progress migration record (crash
    /// mid-split) is rolled back to the pre-migration state first.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        shards: usize,
        config: DurableConfig,
    ) -> Result<Self, StoreError> {
        Self::open_observed_impl(
            vfs,
            dir,
            shards,
            config,
            RebalanceMetrics::disabled(),
            SwapMetrics::disabled(),
        )
    }

    /// [`DurableSharded::open_with`] wired to record rebalance
    /// transitions into `registry` (`phshard_rebalance_*`,
    /// `phshard_routing_epoch`, `phshard_migration_inflight`).
    pub fn open_observed(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        shards: usize,
        config: DurableConfig,
        registry: &Registry,
    ) -> Result<Self, StoreError> {
        Self::open_observed_impl(
            vfs,
            dir,
            shards,
            config,
            RebalanceMetrics::new(registry),
            SwapMetrics::new(registry),
        )
    }

    fn open_observed_impl(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        shards: usize,
        config: DurableConfig,
        reb_metrics: RebalanceMetrics,
        swap_metrics: SwapMetrics,
    ) -> Result<Self, StoreError> {
        vfs.create_dir_all(dir)?;
        let mut rolled_back = false;
        let manifest: Manifest<K> = match read_manifest(vfs.as_ref(), dir)? {
            None => {
                let m = Manifest {
                    map: ShardMap::uniform(shards),
                    gen: 1,
                    migration: None,
                };
                write_manifest(vfs.as_ref(), dir, &m)?;
                m
            }
            Some(mut m) => {
                if m.map.epoch() == 0 && m.map.shards() != shards {
                    return Err(Corruption::new("shard count differs from manifest").into());
                }
                if let Some(mig) = m.migration.take() {
                    // Crash mid-migration: the children are a
                    // re-derivable copy; every acknowledged write is in
                    // the source's WAL. Scrub the children, then clear
                    // the record — idempotent if we crash again here.
                    for c in &mig.children {
                        scrub_shard_dir(vfs.as_ref(), &shard_dir(dir, *c as usize));
                    }
                    m.gen += 1;
                    write_manifest(vfs.as_ref(), dir, &m)?;
                    rolled_back = true;
                }
                m
            }
        };

        let live = manifest.map.live_slots();
        let mut opened: Vec<Option<Result<Durable<V, K>, StoreError>>> =
            (0..live.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(live.len());
            for &slot in &live {
                let vfs = Arc::clone(&vfs);
                let config = config.clone();
                let d = shard_dir(dir, slot);
                handles.push(scope.spawn(move || Durable::open_with(vfs, &d, config)));
            }
            for (out, h) in opened.iter_mut().zip(handles) {
                *out = Some(h.join().expect("shard recovery thread panicked"));
            }
        });
        let mut cells: Vec<Option<Arc<DurCell<V, K>>>> =
            (0..manifest.map.slot_bound()).map(|_| None).collect();
        let mut recovery = Vec::with_capacity(live.len());
        for (&slot, r) in live.iter().zip(opened.into_iter().flatten()) {
            let d = r?;
            recovery.push(d.recovery_stats());
            cells[slot] = Some(DurCell::fresh(d));
        }
        reb_metrics.routing_epoch.set(manifest.map.epoch() as i64);
        Ok(DurableSharded {
            vfs,
            dir: dir.to_path_buf(),
            config,
            state: Swap::new(Arc::new(DurInner {
                map: Arc::new(manifest.map),
                cells,
            })),
            clock: WriteClock::new(),
            split_gate: Mutex::new(manifest.gen),
            backlog_cap: AtomicUsize::new(DEFAULT_BACKLOG_CAP),
            recovery,
            rolled_back,
            reb_metrics,
            swap_metrics,
        })
    }

    fn load_state(&self) -> Arc<DurInner<V, K>> {
        self.state.load()
    }

    /// Base directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live shards.
    pub fn shards(&self) -> usize {
        self.load_state().map.shards()
    }

    /// The current routing snapshot (slot ids, shard boxes, query
    /// pruning). Splits installed later do not mutate it — re-call to
    /// observe the new epoch.
    pub fn router(&self) -> Arc<ShardMap<K>> {
        Arc::clone(&self.load_state().map)
    }

    /// Current routing epoch (0 until the first committed split).
    pub fn epoch(&self) -> u64 {
        self.load_state().map.epoch()
    }

    /// What recovery found and did, per live shard (in
    /// [`ShardMap::live_slots`] order).
    pub fn recovery_stats(&self) -> &[RecoveryStats] {
        &self.recovery
    }

    /// Whether this open rolled back a crashed in-flight migration.
    pub fn rolled_back_migration(&self) -> bool {
        self.rolled_back
    }

    /// Caps how many writes a migrating shard queues before shedding
    /// with [`ShardError::Overloaded`] (default
    /// [`DEFAULT_BACKLOG_CAP`]). Applies to splits begun after the
    /// call.
    pub fn set_backlog_capacity(&self, cap: usize) {
        self.backlog_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Routes `key` to its live cell and runs `f` under the cell's
    /// state lock, re-routing if a split commit retired the cell while
    /// we waited (the retired-cell retry loop). When `f` succeeds, the
    /// store's new tree version is published (inside a write-clock
    /// bracket) before the lock releases, so lock-free readers see the
    /// write the moment it is acknowledged; a failed write (shed or
    /// store error) publishes nothing.
    fn with_cell_write<R>(
        &self,
        key: &[u64; K],
        f: impl FnOnce(usize, &mut DurCellState<V, K>) -> Result<R, ShardError>,
    ) -> Result<R, ShardError> {
        let mut f = Some(f);
        loop {
            let inner = self.load_state();
            let slot = inner.map.route(key);
            let cell = inner.cells[slot]
                .as_ref()
                .expect("routing map addressed a missing cell");
            let mut guard = cell.state.lock();
            if cell.retired.load(Ordering::SeqCst) {
                continue;
            }
            let out = (f.take().expect("write retried after completion"))(slot, &mut guard);
            if out.is_ok() {
                self.clock
                    .bracket(|| cell.publish(&guard, &self.swap_metrics));
            }
            return out;
        }
    }

    /// Inserts `key` → `value`: journaled on the owning shard's WAL
    /// before being applied, under that shard's write lock. If the
    /// shard is mid-migration the op is also queued on the bounded
    /// backlog for replay onto the children; a full backlog sheds the
    /// write with [`ShardError::Overloaded`] *before* journaling, so a
    /// shed write is neither durable nor applied — safe to retry.
    pub fn insert(&self, key: [u64; K], value: V) -> Result<Option<V>, ShardError> {
        self.with_cell_write(&key, |slot, cs| {
            if let Some(b) = cs.backlog.as_ref() {
                if b.ops.len() >= b.cap {
                    self.reb_metrics.shed.inc();
                    return Err(ShardError::Overloaded {
                        slot,
                        backlog: b.cap,
                    });
                }
            }
            let queued = cs.backlog.is_some().then(|| value.clone());
            let prev = cs.store.insert(key, value)?;
            if let Some(value) = queued {
                cs.backlog
                    .as_mut()
                    .expect("backlog vanished under the cell lock")
                    .ops
                    .push(Op::Insert { key, value });
            }
            Ok(prev)
        })
    }

    /// Removes `key`, journaled (and backlogged / shed) like
    /// [`DurableSharded::insert`].
    pub fn remove(&self, key: &[u64; K]) -> Result<Option<V>, ShardError> {
        self.with_cell_write(key, |slot, cs| {
            if let Some(b) = cs.backlog.as_ref() {
                if b.ops.len() >= b.cap {
                    self.reb_metrics.shed.inc();
                    return Err(ShardError::Overloaded {
                        slot,
                        backlog: b.cap,
                    });
                }
            }
            let prev = cs.store.remove(key)?;
            if let Some(b) = cs.backlog.as_mut() {
                b.ops.push(Op::Remove { key: *key });
            }
            Ok(prev)
        })
    }

    /// Applies `f` to the value at `key` in the current published
    /// version — zero-copy, zero-lock, never blocked by writers.
    /// During a migration this still reads the (fully current) source
    /// shard — reads never degrade.
    pub fn get_with<R>(&self, key: &[u64; K], f: impl FnOnce(&V) -> R) -> Option<R> {
        loop {
            let inner = self.load_state();
            let slot = inner.map.route(key);
            let cell = inner.cells[slot]
                .as_ref()
                .expect("routing map addressed a missing cell");
            let published = cell.published.load();
            if !cell.retired.load(Ordering::SeqCst) {
                self.swap_metrics.note_root_age(&published.stamp);
                return published.tree.get(key).map(f);
            }
            // A split commit retired this cell; its successor state
            // installs within the same clock bracket.
            std::hint::spin_loop();
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// The store's filesystem, for sibling modules writing artifacts
    /// alongside it (packed checkpoints).
    pub(crate) fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Total entries across shards, from one consistent snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pins a consistent point-in-time view across all shards (see
    /// [`Snapshot`] and the [`crate::snapshot`] cut protocol). Cheap:
    /// one pinned `Arc` per shard; versions share structure with the
    /// live stores' trees copy-on-write. The snapshot covers applied
    /// state — exactly the acknowledged writes up to its cut.
    pub fn snapshot(&self) -> Snapshot<V, K> {
        // Optimistic: collect between two quiet observations of the
        // write clock; never blocks writers.
        for _ in 0..SNAPSHOT_SPIN {
            let Some(begun) = self.clock.stable() else {
                std::hint::spin_loop();
                continue;
            };
            let inner = self.load_state();
            let roots: Vec<Option<Arc<Published<V, K>>>> = inner
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.published.load()))
                .collect();
            if self.clock.begun() == begun {
                return Snapshot::new(Arc::clone(&inner.map), roots, self.swap_metrics.clone());
            }
        }
        // Sustained write pressure: freeze the cut under every live
        // cell's state lock (slot order — same order as bulk_load's
        // multi-acquisition, so no deadlock).
        'retry: loop {
            let inner = self.load_state();
            let live = inner.map.live_slots();
            let mut guards = Vec::with_capacity(live.len());
            for &s in &live {
                let cell = inner.cells[s].as_ref().expect("live slot without a cell");
                let guard = cell.state.lock();
                if cell.retired.load(Ordering::SeqCst) {
                    continue 'retry;
                }
                guards.push(guard);
            }
            let roots: Vec<Option<Arc<Published<V, K>>>> = inner
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.published.load()))
                .collect();
            return Snapshot::new(Arc::clone(&inner.map), roots, self.swap_metrics.clone());
        }
    }

    /// Collects all entries in the window `[min, max]`, in global
    /// Z-order, against one consistent [`Snapshot`] — no locks, and a
    /// split or batch mid-scan can never tear the result. Shards
    /// outside the window are pruned by the routing map's mask walk.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)> {
        self.snapshot().query(min, max)
    }

    /// The `n` entries nearest to `center` under integer Euclidean
    /// distance, nearest first, as `(key, value, distance)`: per-shard
    /// kNN over one consistent [`Snapshot`]'s pinned versions, merged
    /// with the same bounded k-way merge the in-memory layer uses.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], V, f64)> {
        self.snapshot().knn(center, n)
    }

    /// Bulk-inserts `items`: the batch admission seam the serving
    /// layer's pipelined ingest rides on. Items are partitioned by the
    /// routing map once, every involved shard is write-locked in
    /// ascending slot order, and admission is checked against each
    /// armed migration backlog **before any item is journaled**: if any
    /// partition would overflow its backlog the whole batch sheds with
    /// [`ShardError::Overloaded`] — nothing journaled, nothing applied,
    /// safe to retry. Once admitted, each item is journaled then
    /// applied exactly like [`DurableSharded::insert`] (one WAL append
    /// per item, one lock acquisition per shard). Returns the number
    /// of *new* keys (duplicates overwrite, last write wins).
    ///
    /// Durability on a store I/O error matches the sequential path: the
    /// failing item and everything after it (in slot order, then batch
    /// order within a slot) are neither journaled nor applied; items
    /// before it are as durable as individually acknowledged inserts.
    ///
    /// Publication is all-at-once: every involved shard's new tree
    /// version is published inside **one** write-clock bracket after
    /// the whole batch applies, so a [`Snapshot`] observes either none
    /// of the batch or all of it — never a torn batch. (A shed batch
    /// publishes nothing; a mid-batch I/O error publishes the applied,
    /// durable prefix before surfacing the error.)
    pub fn bulk_load(&self, items: Vec<([u64; K], V)>) -> Result<usize, ShardError> {
        let mut new_total = 0usize;
        'retry: loop {
            let inner = self.load_state();
            let bound = inner.map.slot_bound();
            let mut parts: Vec<Vec<([u64; K], V)>> = (0..bound).map(|_| Vec::new()).collect();
            for (k, v) in items.iter() {
                parts[inner.map.route(k)].push((*k, v.clone()));
            }
            // Lock every involved cell, ascending slot order (every
            // other lock holder in this crate holds at most one cell
            // lock at a time or locks in the same ascending order, so
            // an ordered multi-acquisition cannot deadlock). A retired
            // cell means a split committed since the state load: drop
            // everything and re-route.
            let involved: Vec<usize> = (0..bound).filter(|&s| !parts[s].is_empty()).collect();
            let cells: Vec<&Arc<DurCell<V, K>>> = involved
                .iter()
                .map(|&s| inner.cells[s].as_ref().expect("live slot without a cell"))
                .collect();
            let mut guards = Vec::with_capacity(involved.len());
            for cell in &cells {
                let guard = cell.state.lock();
                if cell.retired.load(Ordering::SeqCst) {
                    continue 'retry;
                }
                guards.push(guard);
            }
            // Admission: every partition must fit its armed backlog
            // before anything is journaled — all-or-nothing shedding
            // (and nothing published: the trees never changed).
            for (&s, cs) in involved.iter().zip(guards.iter()) {
                if let Some(b) = cs.backlog.as_ref() {
                    if b.ops.len() + parts[s].len() > b.cap {
                        self.reb_metrics.shed.add(items.len() as u64);
                        return Err(ShardError::Overloaded {
                            slot: s,
                            backlog: b.cap,
                        });
                    }
                }
            }
            let mut failure = None;
            'apply: for (&s, cs) in involved.iter().zip(guards.iter_mut()) {
                for (key, value) in parts[s].drain(..) {
                    let queued = cs.backlog.is_some().then(|| value.clone());
                    match cs.store.insert(key, value) {
                        Ok(prev) => {
                            if prev.is_none() {
                                new_total += 1;
                            }
                        }
                        Err(e) => {
                            failure = Some(e);
                            break 'apply;
                        }
                    }
                    if let Some(value) = queued {
                        cs.backlog
                            .as_mut()
                            .expect("backlog vanished under the cell lock")
                            .ops
                            .push(Op::Insert { key, value });
                    }
                }
            }
            // One bracket covering every involved cell: readers and
            // snapshots see the batch land atomically. On failure this
            // publishes the applied (journaled, durable) prefix.
            self.clock.bracket(|| {
                for (cell, cs) in cells.iter().zip(guards.iter()) {
                    cell.publish(cs, &self.swap_metrics);
                }
            });
            return match failure {
                None => Ok(new_total),
                Some(e) => Err(e.into()),
            };
        }
    }

    /// Per-shard statistics (slot ids, entry counts, epoch) shaped
    /// like [`crate::ShardStats`] minus the in-memory-only counters —
    /// this is what the rebalancer's skew watch reads. Served from one
    /// consistent [`Snapshot`], lock-free.
    pub fn stats(&self) -> crate::ShardStats {
        self.snapshot().stats()
    }

    /// Checkpoints every live shard (snapshot + WAL rotation) in
    /// parallel. Returns `(slot, new_generation)` per shard.
    ///
    /// Shards checkpoint independently — each shard's snapshot+WAL
    /// pair stays self-consistent no matter which other shards
    /// advanced — and the routing manifest is **not** touched, so a
    /// failure on one shard can never publish topology past broken
    /// data. On failure, the first failing shard is reported with its
    /// slot ([`ShardError::Checkpoint`]); other shards may or may not
    /// have advanced, which is safe, and a subsequent reopen recovers
    /// every shard from whatever generation it reached.
    pub fn checkpoint_all(&self) -> Result<Vec<(usize, u64)>, ShardError> {
        let inner = self.load_state();
        let live = inner.map.live_slots();
        let mut gens: Vec<Option<Result<u64, StoreError>>> =
            (0..live.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(live.len());
            for &slot in &live {
                let cell = Arc::clone(inner.cells[slot].as_ref().expect("live slot"));
                handles.push(scope.spawn(move || cell.state.lock().store.checkpoint()));
            }
            for (out, h) in gens.iter_mut().zip(handles) {
                *out = Some(h.join().expect("checkpoint thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(live.len());
        for (&slot, r) in live.iter().zip(gens.into_iter().flatten()) {
            match r {
                Ok(g) => out.push((slot, g)),
                Err(source) => return Err(ShardError::Checkpoint { slot, source }),
            }
        }
        Ok(out)
    }

    /// Durability barrier on every live shard's WAL.
    pub fn sync_all(&self) -> Result<(), StoreError> {
        let inner = self.load_state();
        for s in inner.map.live_slots() {
            inner.cells[s]
                .as_ref()
                .expect("live slot without a cell")
                .state
                .lock()
                .store
                .sync()?;
        }
        Ok(())
    }

    /// Splits the live shard `slot` into `2^bits` children — prepare,
    /// copy, and commit in one call (see the module docs for the
    /// protocol and its crash windows). Reads and writes to every
    /// shard, including `slot`, keep flowing throughout; only backlog
    /// overflow on `slot` sheds.
    pub fn split_shard(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError> {
        let pending = self.begin_split(slot, bits)?;
        self.commit_split(pending)
    }

    /// Phases 1–2 of a split: persists the migration record (atomic
    /// manifest write), takes the freeze-point snapshot of `slot`
    /// under a brief write lock, arms the write backlog, and builds
    /// the `2^bits` children as durable generation-0 stores. On return
    /// the split is fully prepared but not committed: recovery at this
    /// point rolls it back.
    pub fn begin_split(
        &self,
        slot: usize,
        bits: u32,
    ) -> Result<PendingSplit<'_, V, K>, ShardError> {
        let mut gate = self.split_gate.lock().unwrap();
        let inner = self.load_state();
        let cell = inner
            .cells
            .get(slot)
            .and_then(|c| c.as_ref())
            .filter(|c| !c.retired.load(Ordering::SeqCst))
            .cloned()
            .ok_or(ShardError::UnknownSlot { slot })
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;
        let (map2, child_slots) = inner
            .map
            .split(slot, bits)
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;

        // Phase 1 — prepare: persist the migration record before any
        // child bytes exist, so every later crash finds the record and
        // knows what to scrub.
        *gate += 1;
        let prepared = Manifest {
            map: (*inner.map).clone(),
            gen: *gate,
            migration: Some(MigrationRecord {
                src: slot as u32,
                bits,
                children: child_slots.iter().map(|&c| c as u32).collect(),
            }),
        };
        if let Err(e) = write_manifest(self.vfs.as_ref(), &self.dir, &prepared) {
            self.reb_metrics.split_failures.inc();
            return Err(e.into());
        }
        self.reb_metrics.migration_inflight.add(1);

        // Freeze point: under the cell's state lock, snapshot the tree
        // and arm the backlog. Every write ordered after this lock
        // release lands in the backlog (or sheds); everything before
        // is in the snapshot. The lock is held only for the O(1)
        // structural clone (versions share nodes copy-on-write), not
        // the rebuild.
        let snap = {
            let mut cs = cell.state.lock();
            debug_assert!(cs.backlog.is_none(), "split gate admitted two migrations");
            cs.backlog = Some(Backlog {
                ops: Vec::new(),
                cap: self.backlog_cap.load(Ordering::Relaxed),
            });
            cs.store.tree().clone()
        };

        // Phase 2 — copy: partition the frozen snapshot by the
        // successor map and build each child as a durable generation-0
        // store (snapshot written atomically, fresh WAL). No locks
        // held: reads and writes keep flowing.
        let migrated = snap.len();
        let base = child_slots[0];
        let mut parts: Vec<Vec<([u64; K], V)>> =
            (0..child_slots.len()).map(|_| Vec::new()).collect();
        for (k, v) in snap.iter() {
            parts[map2.route(&k) - base].push((k, v.clone()));
        }
        drop(snap);
        let mut children = Vec::with_capacity(child_slots.len());
        for (i, part) in parts.into_iter().enumerate() {
            let d = shard_dir(&self.dir, base + i);
            match Durable::create_with_tree(
                Arc::clone(&self.vfs),
                &d,
                PhTree::bulk_load(part),
                self.config.clone(),
            ) {
                Ok(c) => children.push(c),
                Err(e) => {
                    // Build failed: roll back in place (same steps
                    // recovery would take) and disarm the backlog.
                    self.rollback_in_place(&cell, &child_slots, &inner.map, &mut gate);
                    self.reb_metrics.split_failures.inc();
                    return Err(e.into());
                }
            }
        }
        Ok(PendingSplit {
            _gate: gate,
            src: slot,
            map2,
            child_slots,
            children,
            migrated,
        })
    }

    /// Phase 3 of a split: under the source's write lock, drains the
    /// backlog into the children's WALs, syncs them, then atomically
    /// rewrites the manifest with the successor map — the commit point
    /// — and installs the new routing epoch. On any error before the
    /// manifest rename the split rolls back in place (children
    /// scrubbed, backlog disarmed, record cleared); acknowledged
    /// writes are in the source's WAL either way.
    pub fn commit_split(&self, pending: PendingSplit<'_, V, K>) -> Result<SplitReport, ShardError> {
        let PendingSplit {
            mut _gate,
            src,
            map2,
            child_slots,
            mut children,
            migrated,
        } = pending;
        let inner = self.load_state();
        let cell = Arc::clone(inner.cells[src].as_ref().expect("pending split src cell"));
        let mut cs = cell.state.lock();
        let backlog = cs
            .backlog
            .take()
            .expect("pending split lost its backlog")
            .ops;
        let drained = backlog.len();
        let base = child_slots[0];
        let drain = || -> Result<(), StoreError> {
            for op in backlog {
                match op {
                    Op::Insert { key, value } => {
                        children[map2.route(&key) - base].insert(key, value)?;
                    }
                    Op::Remove { key } => {
                        children[map2.route(&key) - base].remove(&key)?;
                    }
                }
            }
            if !self.config.sync_writes {
                for c in children.iter_mut() {
                    c.sync()?;
                }
            }
            Ok(())
        };
        if let Err(e) = drain() {
            drop(cs);
            self.rollback_in_place(&cell, &child_slots, &inner.map, &mut _gate);
            self.reb_metrics.split_failures.inc();
            return Err(e.into());
        }

        // Commit point: one atomic rename flips recovery from
        // "roll back to source" to "serve from children".
        *_gate += 1;
        let committed = Manifest {
            map: map2.clone(),
            gen: *_gate,
            migration: None,
        };
        if let Err(e) = write_manifest(self.vfs.as_ref(), &self.dir, &committed) {
            drop(cs);
            self.rollback_in_place(&cell, &child_slots, &inner.map, &mut _gate);
            self.reb_metrics.split_failures.inc();
            return Err(e.into());
        }

        // Install the new epoch while still holding the source's state
        // lock. The retire flag flips *before* the successor state
        // installs, both inside one write-clock bracket: a lock-free
        // reader that loaded the old state either sees retired=false —
        // in which case the source's published root is still complete
        // for its region — or sees retired=true and re-routes onto the
        // successor; and a snapshot can never cut between the two.
        // Each child's initial publication counts as a root swap.
        let epoch = map2.epoch();
        let mut cells = inner.cells.clone();
        cells.resize(map2.slot_bound(), None);
        cells[src] = None;
        for (i, child) in children.into_iter().enumerate() {
            cells[base + i] = Some(DurCell::fresh(child));
            self.swap_metrics.root_swaps.inc();
        }
        self.clock.bracket(|| {
            cell.retired.store(true, Ordering::SeqCst);
            self.state.store(Arc::new(DurInner {
                map: Arc::new(map2),
                cells,
            }));
        });
        drop(cs);

        // The source directory is now unreferenced; scrub best-effort
        // (a crash here just leaves garbage bytes).
        scrub_shard_dir(self.vfs.as_ref(), &shard_dir(&self.dir, src));

        self.reb_metrics.migration_inflight.add(-1);
        self.reb_metrics.splits.inc();
        self.reb_metrics.migrated_entries.add(migrated as u64);
        self.reb_metrics.backlog_drained.add(drained as u64);
        self.reb_metrics.routing_epoch.set(epoch as i64);
        Ok(SplitReport {
            src,
            children: child_slots,
            migrated,
            backlog_drained: drained,
            epoch,
        })
    }

    /// Abandons a prepared split: scrubs the children, disarms the
    /// backlog, clears the manifest record. The store is back in the
    /// pre-migration state with every acknowledged write intact.
    pub fn abort_split(&self, pending: PendingSplit<'_, V, K>) -> Result<(), ShardError> {
        let PendingSplit {
            mut _gate,
            src,
            child_slots,
            children,
            ..
        } = pending;
        drop(children);
        let inner = self.load_state();
        let cell = Arc::clone(inner.cells[src].as_ref().expect("pending split src cell"));
        self.rollback_in_place(&cell, &child_slots, &inner.map, &mut _gate);
        Ok(())
    }

    /// Shared rollback: scrub child files, clear the migration record
    /// (best-effort — recovery redoes both if the VFS is already
    /// dead), disarm the backlog. Ordering matters: files first, then
    /// the record, so a crash between the two re-runs the scrub.
    fn rollback_in_place(
        &self,
        cell: &Arc<DurCell<V, K>>,
        child_slots: &[usize],
        old_map: &ShardMap<K>,
        gate: &mut u64,
    ) {
        for &c in child_slots {
            scrub_shard_dir(self.vfs.as_ref(), &shard_dir(&self.dir, c));
        }
        *gate += 1;
        let _ = write_manifest(
            self.vfs.as_ref(),
            &self.dir,
            &Manifest {
                map: old_map.clone(),
                gen: *gate,
                migration: None,
            },
        );
        cell.state.lock().backlog = None;
        self.reb_metrics.migration_inflight.add(-1);
    }
}
