//! Durable sharded mode: one `phstore::Durable` WAL per shard.
//!
//! Each shard journals to its own subdirectory
//! (`phstore::durable::shard_dir`: `base/shard-NNN/`), so WAL appends
//! on different shards never serialise on one file, and recovery —
//! snapshot load + WAL replay per shard — runs on all cores. A small
//! manifest in the base directory pins the shard count: reopening with
//! a different count would silently misroute keys, so it is refused.

use crate::route::Router;
use phstore::durable::shard_dir;
use phstore::vfs::{StdVfs, Vfs};
use phstore::{Corruption, Durable, DurableConfig, RecoveryStats, StoreError, ValueCodec};
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

/// Manifest file pinning the shard count of a sharded store directory.
pub const MANIFEST_FILE: &str = "phshard.meta";
const MANIFEST_MAGIC: &[u8; 8] = b"PHSHARD1";

/// A crash-safe [`crate::ShardedTree`]-alike: per-shard
/// [`phstore::Durable`] write-ahead logs, parallel recovery.
///
/// Consistency matches the in-memory layer: single-key operations are
/// linearizable within their shard *and* durable once acknowledged
/// (journal-then-apply under the shard's write lock); cross-shard reads
/// are read-committed. Durability is per shard too — a crash can lose
/// no acknowledged op, but ops acknowledged on different shards have
/// no global order in the logs.
pub struct DurableSharded<V: ValueCodec + Send + Sync, const K: usize> {
    shards: Box<[RwLock<Durable<V, K>>]>,
    router: Router<K>,
    dir: PathBuf,
    recovery: Vec<RecoveryStats>,
}

impl<V: ValueCodec + Send + Sync, const K: usize> DurableSharded<V, K> {
    /// Opens (or initialises) a sharded durable store under `dir` on
    /// the real filesystem with default tuning.
    pub fn open(dir: &Path, shards: usize) -> Result<Self, StoreError> {
        Self::open_with(Arc::new(StdVfs), dir, shards, DurableConfig::default())
    }

    /// Opens (or initialises) on any [`Vfs`]. Recovers all shards in
    /// parallel (one thread per shard). Refuses to open a directory
    /// whose manifest records a different shard count.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        shards: usize,
        config: DurableConfig,
    ) -> Result<Self, StoreError> {
        let router: Router<K> = Router::new(shards);
        vfs.create_dir_all(dir)?;
        check_or_write_manifest(vfs.as_ref(), dir, shards)?;

        let mut opened: Vec<Option<Result<Durable<V, K>, StoreError>>> =
            (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for s in 0..shards {
                let vfs = Arc::clone(&vfs);
                let config = config.clone();
                let d = shard_dir(dir, s);
                handles.push(scope.spawn(move || Durable::open_with(vfs, &d, config)));
            }
            for (slot, h) in opened.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("shard recovery thread panicked"));
            }
        });
        let mut cells = Vec::with_capacity(shards);
        let mut recovery = Vec::with_capacity(shards);
        for r in opened.into_iter().flatten() {
            let d = r?;
            recovery.push(d.recovery_stats());
            cells.push(RwLock::new(d));
        }
        Ok(DurableSharded {
            shards: cells.into_boxed_slice(),
            router,
            dir: dir.to_path_buf(),
            recovery,
        })
    }

    /// Base directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// What recovery found and did, per shard.
    pub fn recovery_stats(&self) -> &[RecoveryStats] {
        &self.recovery
    }

    /// Inserts `key` → `value`: journaled on the owning shard's WAL
    /// before being applied, under that shard's write lock.
    pub fn insert(&self, key: [u64; K], value: V) -> Result<Option<V>, StoreError> {
        let s = self.router.route(&key);
        self.shards[s].write().unwrap().insert(key, value)
    }

    /// Removes `key`, journaled like [`DurableSharded::insert`].
    pub fn remove(&self, key: &[u64; K]) -> Result<Option<V>, StoreError> {
        let s = self.router.route(key);
        self.shards[s].write().unwrap().remove(key)
    }

    /// Applies `f` to the value at `key` under the shard's read lock.
    pub fn get_with<R>(&self, key: &[u64; K], f: impl FnOnce(&V) -> R) -> Option<R> {
        let s = self.router.route(key);
        self.shards[s].read().unwrap().get(key).map(f)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Total entries across shards (read-committed).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects all entries in the window `[min, max]`, in global
    /// Z-order. Shards outside the window are pruned by the router's
    /// mask walk and never locked.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for s in self.router.matching_shards(min, max) {
            let guard = self.shards[s].read().unwrap();
            out.extend(guard.tree().query(min, max).map(|(k, v)| (k, v.clone())));
        }
        out
    }

    /// Checkpoints every shard (snapshot + WAL rotation) in parallel.
    /// Returns per-shard generation numbers.
    pub fn checkpoint_all(&self) -> Result<Vec<u64>, StoreError> {
        let mut gens: Vec<Option<Result<u64, StoreError>>> =
            (0..self.shards.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.shards.len());
            for cell in self.shards.iter() {
                handles.push(scope.spawn(move || cell.write().unwrap().checkpoint()));
            }
            for (slot, h) in gens.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("checkpoint thread panicked"));
            }
        });
        gens.into_iter().flatten().collect()
    }

    /// Durability barrier on every shard's WAL.
    pub fn sync_all(&self) -> Result<(), StoreError> {
        for cell in self.shards.iter() {
            cell.write().unwrap().sync()?;
        }
        Ok(())
    }
}

/// Validates (or, on first open, writes) the shard-count manifest.
fn check_or_write_manifest(vfs: &dyn Vfs, dir: &Path, shards: usize) -> Result<(), StoreError> {
    let path = dir.join(MANIFEST_FILE);
    if vfs.exists(&path) {
        let mut f = vfs.open(&path)?;
        let mut buf = [0u8; 12];
        f.read_exact_at(&mut buf, 0)
            .map_err(|_| StoreError::from(Corruption::new("sharded manifest truncated")))?;
        if &buf[..8] != MANIFEST_MAGIC {
            return Err(Corruption::new("sharded manifest magic mismatch").into());
        }
        let stored = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        if stored != shards {
            return Err(Corruption::new("shard count differs from manifest").into());
        }
        return Ok(());
    }
    let mut f = vfs.create(&path)?;
    let mut buf = [0u8; 12];
    buf[..8].copy_from_slice(MANIFEST_MAGIC);
    buf[8..12].copy_from_slice(&(shards as u32).to_le_bytes());
    f.write_all_at(&buf, 0)?;
    f.sync_all()?;
    vfs.sync_dir(dir)?;
    Ok(())
}
