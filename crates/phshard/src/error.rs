//! Typed errors for the sharded serving layer.
//!
//! The sharded layer adds failure modes the per-shard store cannot
//! express: a write shed because a migration backlog is full, a split
//! addressed at a retired slot, a checkpoint that failed on one shard
//! of many. Each gets its own variant so callers can react per mode —
//! retry a shed write later, refresh a stale routing snapshot, alert
//! on a checkpoint failure — instead of pattern-matching error
//! strings.

use phstore::StoreError;
use std::fmt;

/// Everything that can go wrong in the sharded layer.
#[derive(Debug)]
pub enum ShardError {
    /// The per-shard store failed (I/O, corruption).
    Store(StoreError),
    /// A write was shed: the slot is mid-migration and its bounded
    /// write backlog is full. The write was **not** journaled — it is
    /// neither durable nor applied, so the caller may safely retry
    /// once the split commits (graceful degradation, not data loss).
    Overloaded {
        /// Slot that refused the write.
        slot: usize,
        /// Backlog capacity that was exhausted.
        backlog: usize,
    },
    /// The addressed slot is already being split; one migration per
    /// slot at a time.
    MigrationInProgress {
        /// Slot with the active migration.
        slot: usize,
    },
    /// The slot id is not a live shard (never existed, or retired by a
    /// committed split).
    UnknownSlot {
        /// The stale or invalid slot id.
        slot: usize,
    },
    /// A split would exceed the shard-count ceiling.
    TooManyShards {
        /// Shard count the split would have produced.
        requested: usize,
        /// The ceiling ([`crate::MAX_SHARDS`]).
        max: usize,
    },
    /// A split would push a leaf past the routing-depth ceiling
    /// ([`crate::epoch::MAX_DEPTH`] Z-bits), or asked for zero bits.
    SplitDepth {
        /// Slot addressed by the split.
        slot: usize,
        /// Resulting depth that was rejected.
        depth: u32,
    },
    /// A per-shard checkpoint failed. Shards checkpoint independently,
    /// so other shards may have advanced their generation — that is
    /// safe (each shard's snapshot+WAL pair stays self-consistent) —
    /// but the caller must know *which* shard still carries its old
    /// generation and a long WAL.
    Checkpoint {
        /// Slot whose checkpoint failed.
        slot: usize,
        /// The underlying store error.
        source: StoreError,
    },
    /// The backend serves a packed (read-only) checkpoint: writes are
    /// structurally impossible, not transiently unavailable. Callers
    /// should route writes to a live store, not retry here.
    ReadOnly,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Store(e) => write!(f, "shard store error: {e}"),
            ShardError::Overloaded { slot, backlog } => write!(
                f,
                "write shed: slot {slot} is migrating and its backlog ({backlog} ops) is full"
            ),
            ShardError::MigrationInProgress { slot } => {
                write!(f, "slot {slot} already has a migration in progress")
            }
            ShardError::UnknownSlot { slot } => {
                write!(f, "slot {slot} is not a live shard")
            }
            ShardError::TooManyShards { requested, max } => {
                write!(f, "split would produce {requested} shards (max {max})")
            }
            ShardError::SplitDepth { slot, depth } => {
                write!(f, "split of slot {slot} rejected at depth {depth} Z-bits")
            }
            ShardError::Checkpoint { slot, source } => {
                write!(f, "checkpoint of slot {slot} failed: {source}")
            }
            ShardError::ReadOnly => {
                write!(
                    f,
                    "backend is a packed read-only checkpoint; writes are not accepted"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Store(e) | ShardError::Checkpoint { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> Self {
        ShardError::Store(e)
    }
}
