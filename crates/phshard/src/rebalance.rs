//! Skew-driven rebalancing: watch per-shard load, split the hot shard.
//!
//! The policy layer is pure — [`RebalancePolicy::pick`] maps a
//! [`SkewReport`] to "split this slot" or "do nothing", and is tested
//! without any tree. The mechanism layer ([`Splittable`]) is the split
//! entry point the in-memory and durable stores already expose. The
//! [`Rebalancer`] glues them on a background thread: sample stats,
//! consult the policy, fire `split_hot`, repeat — every transition
//! surfaced through the `phshard_rebalance_*` instruments the split
//! paths record.

use crate::error::ShardError;
use crate::sharded::{ShardStats, SplitReport};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A point-in-time view of per-shard load, as consumed by
/// [`RebalancePolicy::pick`]. Obtainable from
/// [`crate::ShardedTree::stats`] / [`crate::DurableSharded::stats`]
/// via `From<&ShardStats>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewReport {
    /// Routing epoch the sample was taken at.
    pub epoch: u64,
    /// Total entries across shards.
    pub entries: usize,
    /// `(slot, entries)` per live shard.
    pub per_slot: Vec<(usize, usize)>,
}

impl From<&ShardStats> for SkewReport {
    fn from(s: &ShardStats) -> Self {
        SkewReport {
            epoch: s.epoch,
            entries: s.entries,
            per_slot: s
                .live_slots
                .iter()
                .copied()
                .zip(s.per_shard.iter().copied())
                .collect(),
        }
    }
}

impl SkewReport {
    /// Max-to-mean load ratio, the same statistic as
    /// [`ShardStats::skew`]: 1.0 is perfectly even, `shards` is
    /// everything on one shard. An empty tree reports 1.0.
    pub fn skew(&self) -> f64 {
        if self.entries == 0 || self.per_slot.is_empty() {
            return 1.0;
        }
        let max = self.per_slot.iter().map(|&(_, n)| n).max().unwrap_or(0);
        let mean = self.entries as f64 / self.per_slot.len() as f64;
        max as f64 / mean
    }

    /// The most loaded `(slot, entries)`, if any shard is non-empty.
    pub fn hottest(&self) -> Option<(usize, usize)> {
        self.per_slot
            .iter()
            .copied()
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

/// When to split, and how deep. All thresholds are conservative by
/// default: a split copies the shard, so firing on noise is worse than
/// waiting a round.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Minimum [`SkewReport::skew`] before any split fires (default
    /// 2.0: the hot shard carries at least twice the mean).
    pub max_skew: f64,
    /// Minimum entries in the hot shard (default 1024): splitting a
    /// tiny shard buys nothing and burns a migration.
    pub min_entries: usize,
    /// Z-bits to deepen per split: `2^bits` children (default 1).
    /// `bits = K` splits one full hypercube level into `2^K` children.
    pub split_bits: u32,
    /// Stop splitting once the live shard count reaches this (default
    /// [`crate::MAX_SHARDS`]).
    pub max_shards: usize,
    /// How often the [`Rebalancer`] samples stats (default 100 ms).
    pub interval: Duration,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            max_skew: 2.0,
            min_entries: 1024,
            split_bits: 1,
            max_shards: crate::MAX_SHARDS,
            interval: Duration::from_millis(100),
        }
    }
}

impl RebalancePolicy {
    /// Pure decision function: the slot to split, or `None`. Fires only
    /// when the skew threshold, the hot-shard size floor, and the
    /// shard-count ceiling all allow it.
    pub fn pick(&self, report: &SkewReport) -> Option<usize> {
        if report.per_slot.len() + (1usize << self.split_bits) - 1 > self.max_shards {
            return None;
        }
        if report.skew() < self.max_skew {
            return None;
        }
        let (slot, n) = report.hottest()?;
        (n >= self.min_entries).then_some(slot)
    }
}

/// A store the [`Rebalancer`] can watch and split. Implemented by
/// [`crate::ShardedTree`] and [`crate::DurableSharded`].
pub trait Splittable: Send + Sync {
    /// Samples current per-shard load.
    fn skew_report(&self) -> SkewReport;
    /// Splits `slot` into `2^bits` children (online; serving
    /// continues).
    fn split_hot(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError>;
}

impl<V: Clone + Send + Sync + 'static, const K: usize> Splittable for crate::ShardedTree<V, K> {
    fn skew_report(&self) -> SkewReport {
        SkewReport::from(&self.stats())
    }

    fn split_hot(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError> {
        self.split_shard(slot, bits)
    }
}

impl<V, const K: usize> Splittable for crate::DurableSharded<V, K>
where
    V: phstore::ValueCodec + Clone + Send + Sync,
{
    fn skew_report(&self) -> SkewReport {
        SkewReport::from(&self.stats())
    }

    fn split_hot(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError> {
        self.split_shard(slot, bits)
    }
}

struct Shared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Background thread that samples a [`Splittable`]'s load every
/// [`RebalancePolicy::interval`] and splits the hot shard whenever the
/// policy fires. Stop (and join) with [`Rebalancer::stop`]; dropping
/// without stopping also shuts the thread down.
pub struct Rebalancer {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<Vec<SplitReport>>>,
}

impl Rebalancer {
    /// Starts watching `target` under `policy`.
    pub fn spawn<T: Splittable + 'static>(target: Arc<T>, policy: RebalancePolicy) -> Self {
        let shared = Arc::new(Shared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("phshard-rebalancer".into())
            .spawn(move || {
                let mut reports = Vec::new();
                let mut stop = thread_shared.stop.lock().unwrap();
                while !*stop {
                    let (guard, _) = thread_shared
                        .wake
                        .wait_timeout(stop, policy.interval)
                        .unwrap();
                    stop = guard;
                    if *stop {
                        break;
                    }
                    let report = target.skew_report();
                    if let Some(slot) = policy.pick(&report) {
                        // Losing a race (slot retired by a manual
                        // split) or hitting a ceiling is routine —
                        // the next sample re-decides on fresh state.
                        if let Ok(r) = target.split_hot(slot, policy.split_bits) {
                            reports.push(r);
                        }
                    }
                }
                reports
            })
            .expect("spawn rebalancer thread");
        Rebalancer {
            shared,
            handle: Some(handle),
        }
    }

    /// Signals the thread to stop and joins it, returning every split
    /// it committed.
    pub fn stop(mut self) -> Vec<SplitReport> {
        self.signal_stop();
        self.handle
            .take()
            .expect("rebalancer already stopped")
            .join()
            .expect("rebalancer thread panicked")
    }

    fn signal_stop(&self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
    }
}

impl Drop for Rebalancer {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            self.signal_stop();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(per_slot: &[(usize, usize)]) -> SkewReport {
        SkewReport {
            epoch: 0,
            entries: per_slot.iter().map(|&(_, n)| n).sum(),
            per_slot: per_slot.to_vec(),
        }
    }

    #[test]
    fn pick_fires_on_skewed_hot_shard() {
        let p = RebalancePolicy {
            min_entries: 100,
            ..RebalancePolicy::default()
        };
        let r = report(&[(0, 1000), (1, 10), (2, 10), (3, 10)]);
        assert!(r.skew() > 2.0);
        assert_eq!(p.pick(&r), Some(0));
    }

    #[test]
    fn pick_respects_skew_threshold_and_size_floor() {
        let p = RebalancePolicy {
            min_entries: 100,
            ..RebalancePolicy::default()
        };
        // Even load: skew 1.0, no split.
        assert_eq!(p.pick(&report(&[(0, 50), (1, 50), (2, 50), (3, 50)])), None);
        // Skewed but tiny: below the size floor.
        assert_eq!(p.pick(&report(&[(0, 40), (1, 1), (2, 1), (3, 1)])), None);
    }

    #[test]
    fn pick_respects_shard_ceiling() {
        let p = RebalancePolicy {
            min_entries: 1,
            max_shards: 4,
            ..RebalancePolicy::default()
        };
        assert_eq!(p.pick(&report(&[(0, 1000), (1, 1), (2, 1), (3, 1)])), None);
        let roomy = RebalancePolicy { max_shards: 8, ..p };
        assert_eq!(
            roomy.pick(&report(&[(0, 1000), (1, 1), (2, 1), (3, 1)])),
            Some(0)
        );
    }

    #[test]
    fn empty_report_is_unskewed() {
        let r = report(&[]);
        assert_eq!(r.skew(), 1.0);
        assert_eq!(r.hottest(), None);
        assert_eq!(RebalancePolicy::default().pick(&r), None);
    }
}
