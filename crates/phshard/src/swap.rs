//! A std-only atomically swappable `Arc<T>` cell with lock-free reads.
//!
//! This is the publication primitive of the MVCC-lite read path: each
//! shard cell publishes its current tree version through a [`Swap`],
//! readers take [`Swap::load`] (no lock, no blocking on writers), and
//! writers install new versions with [`Swap::store`]. The workspace
//! builds offline, so this is hand-rolled on `std` atomics instead of
//! pulling in `arc-swap`.
//!
//! ## How it works
//!
//! Two slots hold `Arc<T>`s; an atomic index names the current one.
//! Each slot carries a reader count. A reader:
//!
//! 1. loads the current index `i`,
//! 2. increments `readers[i]`,
//! 3. re-checks the index — if it moved, backs off and retries
//!    *without touching the slot*,
//! 4. clones the `Arc` out of slot `i`, then decrements `readers[i]`.
//!
//! A writer (serialised by an internal mutex) targets the *standby*
//! slot: it waits for that slot's reader count to drain to zero,
//! overwrites the slot, and flips the index. The current slot is never
//! written, and the standby slot is never written while a reader holds
//! its count — so the re-check in step 3 is what makes step 4 safe:
//! either the index still names the slot (then every write to it
//! happened-before the index flip that published it, `SeqCst`), or the
//! reader backs off before dereferencing.
//!
//! Readers are lock-free: they never wait on a held lock, only retry
//! when a concurrent flip lands between steps 1 and 3 (at most one
//! in-flight flip can do this per attempt). Writers may briefly spin
//! waiting for stale readers to drain — the cost is deliberately on
//! the write side.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>`: wait-free-in-practice `load`,
/// serialised `store`.
pub(crate) struct Swap<T> {
    slots: [UnsafeCell<Arc<T>>; 2],
    readers: [AtomicUsize; 2],
    current: AtomicUsize,
    /// Serialises writers; readers never touch it.
    write: Mutex<()>,
}

// Safety: the reader/writer protocol above guarantees a slot is never
// written while any thread reads it (see module docs), so sharing
// `&Swap<T>` across threads is sound whenever `Arc<T>` itself is
// sendable and shareable.
unsafe impl<T: Send + Sync> Send for Swap<T> {}
unsafe impl<T: Send + Sync> Sync for Swap<T> {}

impl<T> Swap<T> {
    /// A cell initially publishing `value`.
    pub(crate) fn new(value: Arc<T>) -> Self {
        Swap {
            slots: [UnsafeCell::new(Arc::clone(&value)), UnsafeCell::new(value)],
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            current: AtomicUsize::new(0),
            write: Mutex::new(()),
        }
    }

    /// The currently published value. Lock-free: never blocks on a
    /// writer, retries only while an index flip is in flight.
    pub(crate) fn load(&self) -> Arc<T> {
        loop {
            let i = self.current.load(Ordering::SeqCst);
            self.readers[i].fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == i {
                // The slot is pinned: a writer targets it only when its
                // reader count is zero, and ours is visible (`SeqCst`).
                let out = unsafe { (*self.slots[i].get()).clone() };
                self.readers[i].fetch_sub(1, Ordering::Release);
                return out;
            }
            // A flip landed between the two index loads; the slot may
            // be the writer's target now. Back off without reading it.
            self.readers[i].fetch_sub(1, Ordering::Release);
            std::hint::spin_loop();
        }
    }

    /// Publishes `value`, replacing the current one. Writers are
    /// serialised; the call briefly spins while readers that caught the
    /// *previous* flip mid-load drain off the standby slot.
    pub(crate) fn store(&self, value: Arc<T>) {
        let _w = self.write.lock().unwrap();
        let standby = 1 - self.current.load(Ordering::SeqCst);
        while self.readers[standby].load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // Safety: we hold the writer mutex, the standby slot is not
        // `current` (no new reader pins it: they re-check the index),
        // and its reader count drained — no other thread accesses it.
        unsafe { *self.slots[standby].get() = value };
        self.current.store(standby, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_latest_store() {
        let s = Swap::new(Arc::new(1u64));
        assert_eq!(*s.load(), 1);
        s.store(Arc::new(2));
        assert_eq!(*s.load(), 2);
        s.store(Arc::new(3));
        s.store(Arc::new(4));
        assert_eq!(*s.load(), 4);
    }

    #[test]
    fn concurrent_loads_and_stores_see_whole_values() {
        // Each published value is (n, n): a torn read would pair
        // different halves.
        let s = Arc::new(Swap::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let v = s.load();
                    assert_eq!(v.0, v.1, "torn publication");
                    assert!(v.0 >= last, "went back in time");
                    last = v.0;
                }
            }));
        }
        for n in 1..=10_000u64 {
            s.store(Arc::new((n, n)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*s.load(), (10_000, 10_000));
    }

    #[test]
    fn old_versions_stay_alive_while_held() {
        let s = Swap::new(Arc::new(vec![1, 2, 3]));
        let pinned = s.load();
        s.store(Arc::new(vec![9]));
        s.store(Arc::new(vec![10]));
        // The pinned Arc still reads the version it captured.
        assert_eq!(*pinned, vec![1, 2, 3]);
        assert_eq!(*s.load(), vec![10]);
    }
}
