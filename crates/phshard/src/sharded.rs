//! The concurrent, sharded PH-tree.

use crate::merge::merge_nearest;
use crate::metrics::{PoolMetrics, ShardMetrics};
use crate::pool::WorkerPool;
use crate::route::Router;
use phmetrics::Registry;
use phtree::PhTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A boxed fan-out task as submitted to the worker pool.
type Task<R> = Box<dyn FnOnce() -> R + Send>;
/// A window-query hit: key plus cloned value.
type Entry<V, const K: usize> = ([u64; K], V);
/// A kNN hit: key, cloned value, distance.
type Scored<V, const K: usize> = ([u64; K], V, f64);

/// Per-instance statistics (see [`ShardedTree::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Worker threads in the fan-out pool (0 = inline).
    pub threads: usize,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entry count per shard (routing balance diagnostic).
    pub per_shard: Vec<usize>,
    /// Shards visited by window queries since construction.
    pub shards_scanned: u64,
    /// Shards skipped by prefix-mask pruning since construction.
    pub shards_pruned: u64,
}

impl ShardStats {
    /// Routing skew: the fullest shard's occupancy over the mean
    /// occupancy. `1.0` is perfect balance, `shards as f64` means every
    /// entry landed on one shard (the Z-prefix router's worst case:
    /// keys clustered under one top-bit prefix). `1.0` for an empty
    /// tree.
    pub fn skew(&self) -> f64 {
        if self.entries == 0 || self.per_shard.is_empty() {
            return 1.0;
        }
        let max = self.per_shard.iter().copied().max().unwrap_or(0);
        let mean = self.entries as f64 / self.per_shard.len() as f64;
        max as f64 / mean
    }
}

/// A key-space-partitioned concurrent PH-tree.
///
/// Keys are routed to one of `S` shards by the first `log2 S` bits of
/// their Z-order interleaving ([`Router`]), so each shard owns an
/// axis-aligned hypercube prefix region. Single-key operations lock
/// exactly one shard; window queries prune non-intersecting shards
/// with the paper's `mL`/`mU` masks and fan the survivors out across a
/// std-only worker pool. See [`crate::Consistency`] for the guarantees.
///
/// All methods take `&self`; the structure is `Send + Sync` and meant
/// to be shared (e.g. in an `Arc`) across server threads.
pub struct ShardedTree<V, const K: usize> {
    shards: Arc<[RwLock<PhTree<V, K>>]>,
    router: Router<K>,
    pool: WorkerPool,
    scanned: AtomicU64,
    pruned: AtomicU64,
    metrics: ShardMetrics,
}

impl<V, const K: usize> ShardedTree<V, K> {
    /// A sharded tree with `shards` shards (power of two) and a worker
    /// pool sized to the host: `available_parallelism - 1` threads,
    /// capped at the shard count (0 on single-core hosts — inline
    /// execution, no thread overhead).
    pub fn new(shards: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(shards, (cores - 1).min(shards))
    }

    /// A sharded tree with an explicit fan-out pool size. `threads ==
    /// 0` runs every fan-out inline on the calling thread.
    pub fn with_threads(shards: usize, threads: usize) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::disabled(),
            PoolMetrics::disabled(),
        )
    }

    /// A sharded tree whose operations record into `registry`: per-op
    /// counters and latency histograms, per-shard routing counters,
    /// query fan-out / kNN merge widths, and the fan-out pool's queue
    /// depth, busy time and panic count (see `phshard_*` in the crate's
    /// instrument catalogue). Trees built without a registry carry
    /// no-op handles — recording is then a branch on a null `Option`.
    pub fn with_metrics(shards: usize, threads: usize, registry: &Registry) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::new(registry, shards),
            PoolMetrics::from_registry(registry),
        )
    }

    fn build(
        shards: usize,
        threads: usize,
        metrics: ShardMetrics,
        pool_metrics: PoolMetrics,
    ) -> Self {
        let router = Router::new(shards);
        let shards: Arc<[RwLock<PhTree<V, K>>]> =
            (0..shards).map(|_| RwLock::new(PhTree::new())).collect();
        ShardedTree {
            shards,
            router,
            pool: WorkerPool::with_metrics(threads, pool_metrics),
            scanned: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            metrics,
        }
    }

    /// The routing function (shard id, shard boxes, query pruning).
    pub fn router(&self) -> &Router<K> {
        &self.router
    }

    /// The shard that owns `key`.
    pub fn shard_of(&self, key: &[u64; K]) -> usize {
        self.router.route(key)
    }

    /// Inserts `key` → `value`; returns the previous value, if any.
    /// Locks only the owning shard (linearizable per key).
    pub fn insert(&self, key: [u64; K], value: V) -> Option<V> {
        let t = self.metrics.insert.start();
        let s = self.router.route(&key);
        self.metrics.add_shard_ops(s, 1);
        let out = self.shards[s].write().unwrap().insert(key, value);
        self.metrics.insert.finish(t);
        out
    }

    /// Removes `key`; returns its value, if present.
    pub fn remove(&self, key: &[u64; K]) -> Option<V> {
        let t = self.metrics.remove.start();
        let s = self.router.route(key);
        self.metrics.add_shard_ops(s, 1);
        let out = self.shards[s].write().unwrap().remove(key);
        self.metrics.remove.finish(t);
        out
    }

    /// Applies `f` to the value at `key` under the shard's read lock —
    /// the zero-copy point read.
    pub fn get_with<R>(&self, key: &[u64; K], f: impl FnOnce(&V) -> R) -> Option<R> {
        let t = self.metrics.get.start();
        let s = self.router.route(key);
        self.metrics.add_shard_ops(s, 1);
        let out = self.shards[s].read().unwrap().get(key).map(f);
        self.metrics.get.finish(t);
        out
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Total entries (sums shard lengths; read-committed across
    /// shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts entries in the window `[min, max]` without materialising
    /// them. Prunes shards by prefix mask; survivors are scanned
    /// sequentially (counting is cheap — cloning is what fan-out is
    /// for).
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> usize {
        let t = self.metrics.query_count.start();
        let matching = self.router.matching_shards(min, max);
        self.note_pruning(matching.len());
        self.metrics.fanout.record(matching.len() as u64);
        let out = matching
            .into_iter()
            .map(|s| self.shards[s].read().unwrap().query(min, max).count())
            .sum();
        self.metrics.query_count.finish(t);
        out
    }

    /// Snapshot of shard sizes and pruning counters.
    pub fn stats(&self) -> ShardStats {
        let per_shard: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.read().unwrap().len())
            .collect();
        ShardStats {
            shards: self.shards.len(),
            threads: self.pool.threads(),
            entries: per_shard.iter().sum(),
            per_shard,
            shards_scanned: self.scanned.load(Ordering::Relaxed),
            shards_pruned: self.pruned.load(Ordering::Relaxed),
        }
    }

    fn note_pruning(&self, matched: usize) {
        self.scanned.fetch_add(matched as u64, Ordering::Relaxed);
        self.pruned
            .fetch_add((self.shards.len() - matched) as u64, Ordering::Relaxed);
    }
}

impl<V: Clone + Send + Sync + 'static, const K: usize> ShardedTree<V, K> {
    /// Returns a clone of the value at `key` (the lock is released
    /// before returning, so the value is cloned out; use
    /// [`ShardedTree::get_with`] to borrow instead).
    pub fn get(&self, key: &[u64; K]) -> Option<V> {
        self.get_with(key, V::clone)
    }

    /// Collects all entries in the window `[min, max]` (inclusive
    /// corners), in global Z-order.
    ///
    /// Shards whose prefix region is disjoint from the window are
    /// pruned by the router's mask walk and never locked; the
    /// surviving shards are scanned in parallel on the worker pool.
    /// Because shard ids are Z-order prefixes, concatenating per-shard
    /// results in shard order yields exactly the order a single
    /// unsharded tree's query iterator produces.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)> {
        let t = self.metrics.query.start();
        let matching = self.router.matching_shards(min, max);
        self.note_pruning(matching.len());
        self.metrics.fanout.record(matching.len() as u64);
        let (min, max) = (*min, *max);
        let tasks: Vec<(String, Task<Vec<Entry<V, K>>>)> = matching
            .into_iter()
            .map(|s| {
                let shards = Arc::clone(&self.shards);
                let task = Box::new(move || {
                    let guard = shards[s].read().unwrap();
                    guard
                        .query(&min, &max)
                        .map(|(k, v)| (k, v.clone()))
                        .collect()
                }) as Box<dyn FnOnce() -> Vec<([u64; K], V)> + Send>;
                (format!("query:shard-{s}"), task)
            })
            .collect();
        let mut out = Vec::new();
        for chunk in self.pool.scatter_labeled(tasks) {
            out.extend(chunk);
        }
        self.metrics.query.finish(t);
        out
    }

    /// The `n` entries nearest to `center` under integer Euclidean
    /// distance, nearest first, as `(key, value, distance)`.
    ///
    /// Every non-empty shard answers its local kNN in parallel; the
    /// global result is a bounded k-way heap merge of the per-shard
    /// lists (each already sorted), stopping after `n` results.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], V, f64)> {
        if n == 0 {
            return Vec::new();
        }
        let t = self.metrics.knn.start();
        let center = *center;
        let tasks: Vec<(String, Task<Vec<Scored<V, K>>>)> = (0..self.shards.len())
            .map(|s| {
                let shards = Arc::clone(&self.shards);
                let task = Box::new(move || {
                    let guard = shards[s].read().unwrap();
                    guard
                        .knn(&center, n)
                        .into_iter()
                        .map(|nb| (nb.key, nb.value.clone(), nb.dist))
                        .collect()
                })
                    as Box<dyn FnOnce() -> Vec<([u64; K], V, f64)> + Send>;
                (format!("knn:shard-{s}"), task)
            })
            .collect();
        let lists = self.pool.scatter_labeled(tasks);
        self.metrics
            .merge_candidates
            .record(lists.iter().map(Vec::len).sum::<usize>() as u64);
        let out = merge_nearest(lists, n, |e| e.2);
        self.metrics.knn.finish(t);
        out
    }

    /// Bulk-inserts `items`, partitioning them by shard once and
    /// loading each partition under one write-lock acquisition on the
    /// worker pool. An empty shard gets its partition through
    /// [`PhTree::bulk_load`]'s O(n) bottom-up builder (the ingest fast
    /// path); a non-empty shard falls back to per-key inserts. Returns
    /// the number of *new* keys (duplicates overwrite, like
    /// [`ShardedTree::insert`]).
    pub fn bulk_load(&self, items: Vec<([u64; K], V)>) -> usize {
        let t = self.metrics.bulk_load.start();
        let mut parts: Vec<Vec<([u64; K], V)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        for (key, value) in items {
            parts[self.router.route(&key)].push((key, value));
        }
        let tasks: Vec<(String, Box<dyn FnOnce() -> usize + Send>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(s, part)| {
                self.metrics.add_shard_ops(s, part.len() as u64);
                let shards = Arc::clone(&self.shards);
                let task = Box::new(move || {
                    let mut guard = shards[s].write().unwrap();
                    if guard.is_empty() {
                        // Bottom-up bulk build: every key in the
                        // partition is new (duplicates within the batch
                        // collapse last-write-wins, same as the insert
                        // loop below).
                        *guard = PhTree::bulk_load(part);
                        guard.len()
                    } else {
                        let mut new = 0usize;
                        for (k, v) in part {
                            if guard.insert(k, v).is_none() {
                                new += 1;
                            }
                        }
                        new
                    }
                }) as Box<dyn FnOnce() -> usize + Send>;
                (format!("bulk_load:shard-{s}"), task)
            })
            .collect();
        let out = self.pool.scatter_labeled(tasks).into_iter().sum();
        self.metrics.bulk_load.finish(t);
        out
    }
}

impl<V, const K: usize> Default for ShardedTree<V, K> {
    fn default() -> Self {
        Self::new(1)
    }
}
