//! The concurrent, sharded PH-tree.

use crate::epoch::ShardMap;
use crate::error::ShardError;
use crate::merge::merge_nearest;
use crate::metrics::{PoolMetrics, RebalanceMetrics, ShardMetrics};
use crate::pool::WorkerPool;
use phmetrics::Registry;
use phtree::PhTree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A boxed fan-out task as submitted to the worker pool.
type Task<R> = Box<dyn FnOnce() -> R + Send>;
/// A window-query hit: key plus cloned value.
type Entry<V, const K: usize> = ([u64; K], V);
/// A kNN hit: key, cloned value, distance.
type Scored<V, const K: usize> = ([u64; K], V, f64);
/// Labeled fan-out tasks, one per matching shard; `Err(())` signals a
/// cell retired mid-scan and the whole operation retries.
type ShardScan<T> = Vec<(String, Task<Result<Vec<T>, ()>>)>;

/// Per-instance statistics (see [`ShardedTree::stats`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Worker threads in the fan-out pool (0 = inline).
    pub threads: usize,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entry count per shard, aligned with [`ShardStats::live_slots`]
    /// (routing balance diagnostic).
    pub per_shard: Vec<usize>,
    /// Live slot ids in Z-order of their regions (uniform maps:
    /// `0..shards`).
    pub live_slots: Vec<usize>,
    /// Routing epoch: 0 until the first committed split.
    pub epoch: u64,
    /// Shards visited by window queries since construction.
    pub shards_scanned: u64,
    /// Shards skipped by prefix-mask pruning since construction.
    pub shards_pruned: u64,
}

impl ShardStats {
    /// Routing skew: the fullest shard's occupancy over the mean
    /// occupancy. `1.0` is perfect balance, `shards as f64` means every
    /// entry landed on one shard (the Z-prefix router's worst case:
    /// keys clustered under one top-bit prefix). `1.0` for an empty
    /// tree.
    pub fn skew(&self) -> f64 {
        if self.entries == 0 || self.per_shard.is_empty() {
            return 1.0;
        }
        let max = self.per_shard.iter().copied().max().unwrap_or(0);
        let mean = self.entries as f64 / self.per_shard.len() as f64;
        max as f64 / mean
    }

    /// The live slot with the most entries, `(slot, entries)`. `None`
    /// when empty.
    pub fn hottest(&self) -> Option<(usize, usize)> {
        self.live_slots
            .iter()
            .copied()
            .zip(self.per_shard.iter().copied())
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

/// Outcome of a committed hot-shard split (see
/// [`ShardedTree::split_shard`] / `DurableSharded::split_shard`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// The retired parent slot.
    pub src: usize,
    /// Freshly allocated child slots, in Z-order of their regions.
    pub children: Vec<usize>,
    /// Entries moved from the parent into the children.
    pub migrated: usize,
    /// Backlogged writes replayed onto children at commit (always 0
    /// for the in-memory tree, whose split is atomic under the shard
    /// lock).
    pub backlog_drained: usize,
    /// Routing epoch after the split.
    pub epoch: u64,
}

/// One shard's storage cell. `retired` flips (under the cell's write
/// lock) when a committed split moves the slot's data elsewhere; a
/// thread that locked the cell through a stale routing snapshot must
/// re-route instead of operating on it.
struct MemCell<V, const K: usize> {
    retired: AtomicBool,
    tree: RwLock<PhTree<V, K>>,
}

/// An immutable routing snapshot: the map plus the slot-indexed cell
/// table it addresses. Swapped wholesale (behind `Arc`) on every
/// committed split, so readers see map and cells move together.
struct MemInner<V, const K: usize> {
    map: Arc<ShardMap<K>>,
    cells: Vec<Option<Arc<MemCell<V, K>>>>,
}

/// A key-space-partitioned concurrent PH-tree.
///
/// Keys are routed to shards by a prefix of their Z-order interleaving
/// ([`ShardMap`]), so each shard owns an axis-aligned hypercube prefix
/// region. Single-key operations lock exactly one shard; window
/// queries prune non-intersecting shards with the paper's `mL`/`mU`
/// masks and fan the survivors out across a std-only worker pool. See
/// [`crate::Consistency`] for the guarantees.
///
/// The routing topology is *versioned*: [`ShardedTree::split_shard`]
/// deepens one hot shard's prefix into `2^bits` children without
/// touching any other shard, installing a new routing epoch. Threads
/// holding the previous epoch's snapshot detect the retired cell under
/// its lock and re-route — no operation ever lands on moved data.
///
/// All methods take `&self`; the structure is `Send + Sync` and meant
/// to be shared (e.g. in an `Arc`) across server threads.
pub struct ShardedTree<V, const K: usize> {
    state: RwLock<Arc<MemInner<V, K>>>,
    /// Serialises splits: at most one topology change in flight, so a
    /// split sees a stable map between planning and install.
    split_gate: Mutex<()>,
    pool: WorkerPool,
    scanned: AtomicU64,
    pruned: AtomicU64,
    metrics: ShardMetrics,
    reb_metrics: RebalanceMetrics,
}

impl<V, const K: usize> ShardedTree<V, K> {
    /// A sharded tree with `shards` shards (power of two) and a worker
    /// pool sized to the host: `available_parallelism - 1` threads,
    /// capped at the shard count (0 on single-core hosts — inline
    /// execution, no thread overhead).
    pub fn new(shards: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(shards, (cores - 1).min(shards))
    }

    /// A sharded tree with an explicit fan-out pool size. `threads ==
    /// 0` runs every fan-out inline on the calling thread.
    pub fn with_threads(shards: usize, threads: usize) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::disabled(),
            PoolMetrics::disabled(),
            RebalanceMetrics::disabled(),
        )
    }

    /// A sharded tree whose operations record into `registry`: per-op
    /// counters and latency histograms, per-shard routing counters,
    /// query fan-out / kNN merge widths, rebalance transitions
    /// (`phshard_rebalance_*`, `phshard_routing_epoch`), and the
    /// fan-out pool's queue depth, busy time and panic count (see
    /// `phshard_*` in the crate's instrument catalogue). Trees built
    /// without a registry carry no-op handles — recording is then a
    /// branch on a null `Option`.
    pub fn with_metrics(shards: usize, threads: usize, registry: &Registry) -> Self {
        Self::build(
            shards,
            threads,
            ShardMetrics::new(registry, shards),
            PoolMetrics::from_registry(registry),
            RebalanceMetrics::new(registry),
        )
    }

    fn build(
        shards: usize,
        threads: usize,
        metrics: ShardMetrics,
        pool_metrics: PoolMetrics,
        reb_metrics: RebalanceMetrics,
    ) -> Self {
        let map = ShardMap::uniform(shards);
        let cells = (0..shards)
            .map(|_| {
                Some(Arc::new(MemCell {
                    retired: AtomicBool::new(false),
                    tree: RwLock::new(PhTree::new()),
                }))
            })
            .collect();
        ShardedTree {
            state: RwLock::new(Arc::new(MemInner {
                map: Arc::new(map),
                cells,
            })),
            split_gate: Mutex::new(()),
            pool: WorkerPool::with_metrics(threads, pool_metrics),
            scanned: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            metrics,
            reb_metrics,
        }
    }

    fn snapshot(&self) -> Arc<MemInner<V, K>> {
        Arc::clone(&self.state.read().unwrap())
    }

    /// The current routing snapshot (shard ids, shard boxes, query
    /// pruning). A split installed after this call does not change the
    /// returned map — re-call to observe the new epoch.
    pub fn router(&self) -> Arc<ShardMap<K>> {
        Arc::clone(&self.snapshot().map)
    }

    /// The slot that currently owns `key`.
    pub fn shard_of(&self, key: &[u64; K]) -> usize {
        self.snapshot().map.route(key)
    }

    /// Routes `key` and locks its live cell for writing: the
    /// retired-cell retry loop. Re-snapshots whenever the locked cell
    /// turns out to have been retired by a concurrent split commit.
    fn with_cell_write<R>(
        &self,
        key: &[u64; K],
        mut f: impl FnMut(usize, &mut PhTree<V, K>) -> R,
    ) -> R {
        loop {
            let inner = self.snapshot();
            let slot = inner.map.route(key);
            let cell = inner.cells[slot]
                .as_ref()
                .expect("routing map addressed a missing cell");
            let mut guard = cell.tree.write().unwrap();
            if cell.retired.load(Ordering::Acquire) {
                continue; // split committed while we waited for the lock
            }
            return f(slot, &mut guard);
        }
    }

    /// Read-lock variant of [`ShardedTree::with_cell_write`].
    fn with_cell_read<R>(&self, key: &[u64; K], mut f: impl FnMut(usize, &PhTree<V, K>) -> R) -> R {
        loop {
            let inner = self.snapshot();
            let slot = inner.map.route(key);
            let cell = inner.cells[slot]
                .as_ref()
                .expect("routing map addressed a missing cell");
            let guard = cell.tree.read().unwrap();
            if cell.retired.load(Ordering::Acquire) {
                continue;
            }
            return f(slot, &guard);
        }
    }

    /// Inserts `key` → `value`; returns the previous value, if any.
    /// Locks only the owning shard (linearizable per key).
    pub fn insert(&self, key: [u64; K], value: V) -> Option<V> {
        let t = self.metrics.insert.start();
        let mut value = Some(value);
        let out = self.with_cell_write(&key, |slot, tree| {
            self.metrics.add_shard_ops(slot, 1);
            tree.insert(key, value.take().expect("insert retried after success"))
        });
        self.metrics.insert.finish(t);
        out
    }

    /// Removes `key`; returns its value, if present.
    pub fn remove(&self, key: &[u64; K]) -> Option<V> {
        let t = self.metrics.remove.start();
        let out = self.with_cell_write(key, |slot, tree| {
            self.metrics.add_shard_ops(slot, 1);
            tree.remove(key)
        });
        self.metrics.remove.finish(t);
        out
    }

    /// Applies `f` to the value at `key` under the shard's read lock —
    /// the zero-copy point read.
    pub fn get_with<R>(&self, key: &[u64; K], f: impl FnOnce(&V) -> R) -> Option<R> {
        let t = self.metrics.get.start();
        let mut f = Some(f);
        let out = self.with_cell_read(key, |slot, tree| {
            self.metrics.add_shard_ops(slot, 1);
            tree.get(key)
                .map(|v| (f.take().expect("get retried after success"))(v))
        });
        self.metrics.get.finish(t);
        out
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u64; K]) -> bool {
        self.get_with(key, |_| ()).is_some()
    }

    /// Total entries (sums shard lengths; read-committed across
    /// shards).
    pub fn len(&self) -> usize {
        self.live_cells()
            .into_iter()
            .map(|(_, c)| c.tree.read().unwrap().len())
            .sum()
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live `(slot, cell)` pairs in Z-order of their regions.
    fn live_cells(&self) -> Vec<(usize, Arc<MemCell<V, K>>)> {
        let inner = self.snapshot();
        inner
            .map
            .live_slots()
            .into_iter()
            .map(|s| {
                (
                    s,
                    Arc::clone(inner.cells[s].as_ref().expect("live slot without a cell")),
                )
            })
            .collect()
    }

    /// Counts entries in the window `[min, max]` without materialising
    /// them. Prunes shards by prefix mask; survivors are scanned
    /// sequentially (counting is cheap — cloning is what fan-out is
    /// for).
    pub fn query_count(&self, min: &[u64; K], max: &[u64; K]) -> usize {
        let t = self.metrics.query_count.start();
        let out = 'retry: loop {
            let inner = self.snapshot();
            let matching = inner.map.matching_shards(min, max);
            self.note_pruning(inner.map.shards(), matching.len());
            self.metrics.fanout.record(matching.len() as u64);
            let mut sum = 0usize;
            for s in matching {
                let cell = inner.cells[s].as_ref().expect("live slot without a cell");
                let guard = cell.tree.read().unwrap();
                if cell.retired.load(Ordering::Acquire) {
                    continue 'retry;
                }
                sum += guard.query(min, max).count();
            }
            break sum;
        };
        self.metrics.query_count.finish(t);
        out
    }

    /// Snapshot of shard sizes, routing epoch and pruning counters.
    pub fn stats(&self) -> ShardStats {
        let inner = self.snapshot();
        let live_slots = inner.map.live_slots();
        let per_shard: Vec<usize> = live_slots
            .iter()
            .map(|&s| {
                inner.cells[s]
                    .as_ref()
                    .expect("live slot without a cell")
                    .tree
                    .read()
                    .unwrap()
                    .len()
            })
            .collect();
        ShardStats {
            shards: inner.map.shards(),
            threads: self.pool.threads(),
            entries: per_shard.iter().sum(),
            per_shard,
            live_slots,
            epoch: inner.map.epoch(),
            shards_scanned: self.scanned.load(Ordering::Relaxed),
            shards_pruned: self.pruned.load(Ordering::Relaxed),
        }
    }

    fn note_pruning(&self, shards: usize, matched: usize) {
        self.scanned.fetch_add(matched as u64, Ordering::Relaxed);
        self.pruned
            .fetch_add((shards - matched) as u64, Ordering::Relaxed);
    }
}

impl<V: Clone + Send + Sync + 'static, const K: usize> ShardedTree<V, K> {
    /// Returns a clone of the value at `key` (the lock is released
    /// before returning, so the value is cloned out; use
    /// [`ShardedTree::get_with`] to borrow instead).
    pub fn get(&self, key: &[u64; K]) -> Option<V> {
        self.get_with(key, V::clone)
    }

    /// Collects all entries in the window `[min, max]` (inclusive
    /// corners), in global Z-order.
    ///
    /// Shards whose prefix region is disjoint from the window are
    /// pruned by the routing map's mask walk and never locked; the
    /// surviving shards are scanned in parallel on the worker pool.
    /// Because shard regions are Z-order prefixes and
    /// [`ShardMap::matching_shards`] yields them in Z-order,
    /// concatenating per-shard results yields exactly the order a
    /// single unsharded tree's query iterator produces. A split
    /// committing mid-scan retires a cell; the query detects it and
    /// re-runs against the new epoch, so results are never torn.
    pub fn query(&self, min: &[u64; K], max: &[u64; K]) -> Vec<([u64; K], V)> {
        let t = self.metrics.query.start();
        let out = loop {
            let inner = self.snapshot();
            let matching = inner.map.matching_shards(min, max);
            self.note_pruning(inner.map.shards(), matching.len());
            self.metrics.fanout.record(matching.len() as u64);
            let (min, max) = (*min, *max);
            let tasks: ShardScan<Entry<V, K>> = matching
                .into_iter()
                .map(|s| {
                    let cell =
                        Arc::clone(inner.cells[s].as_ref().expect("live slot without a cell"));
                    let task = Box::new(move || {
                        let guard = cell.tree.read().unwrap();
                        if cell.retired.load(Ordering::Acquire) {
                            return Err(());
                        }
                        Ok(guard
                            .query(&min, &max)
                            .map(|(k, v)| (k, v.clone()))
                            .collect())
                    }) as Task<Result<Vec<Entry<V, K>>, ()>>;
                    (format!("query:shard-{s}"), task)
                })
                .collect();
            let chunks = self.pool.scatter_labeled(tasks);
            if chunks.iter().any(Result::is_err) {
                continue; // a split landed mid-scan: retry on the new epoch
            }
            let mut out = Vec::new();
            for chunk in chunks {
                out.extend(chunk.expect("checked above"));
            }
            break out;
        };
        self.metrics.query.finish(t);
        out
    }

    /// The `n` entries nearest to `center` under integer Euclidean
    /// distance, nearest first, as `(key, value, distance)`.
    ///
    /// Every live shard answers its local kNN in parallel; the global
    /// result is a bounded k-way heap merge of the per-shard lists
    /// (each already sorted), stopping after `n` results.
    pub fn knn(&self, center: &[u64; K], n: usize) -> Vec<([u64; K], V, f64)> {
        if n == 0 {
            return Vec::new();
        }
        let t = self.metrics.knn.start();
        let out = loop {
            let center = *center;
            let tasks: ShardScan<Scored<V, K>> = self
                .live_cells()
                .into_iter()
                .map(|(s, cell)| {
                    let task = Box::new(move || {
                        let guard = cell.tree.read().unwrap();
                        if cell.retired.load(Ordering::Acquire) {
                            return Err(());
                        }
                        Ok(guard
                            .knn(&center, n)
                            .into_iter()
                            .map(|nb| (nb.key, nb.value.clone(), nb.dist))
                            .collect())
                    }) as Task<Result<Vec<Scored<V, K>>, ()>>;
                    (format!("knn:shard-{s}"), task)
                })
                .collect();
            let lists = self.pool.scatter_labeled(tasks);
            if lists.iter().any(Result::is_err) {
                continue;
            }
            let lists: Vec<Vec<Scored<V, K>>> = lists
                .into_iter()
                .map(|l| l.expect("checked above"))
                .collect();
            self.metrics
                .merge_candidates
                .record(lists.iter().map(Vec::len).sum::<usize>() as u64);
            break merge_nearest(lists, n, |e| e.2);
        };
        self.metrics.knn.finish(t);
        out
    }

    /// Bulk-inserts `items`, partitioning them by shard once and
    /// loading each partition under one write-lock acquisition on the
    /// worker pool. An empty shard gets its partition through
    /// [`PhTree::bulk_load`]'s O(n) bottom-up builder (the ingest fast
    /// path); a non-empty shard falls back to per-key inserts. Returns
    /// the number of *new* keys (duplicates overwrite, like
    /// [`ShardedTree::insert`]). Partitions whose cell retires
    /// mid-load come back untouched and are re-routed through the new
    /// epoch.
    pub fn bulk_load(&self, items: Vec<([u64; K], V)>) -> usize {
        let t = self.metrics.bulk_load.start();
        let mut pending = items;
        let mut new_total = 0usize;
        while !pending.is_empty() {
            let inner = self.snapshot();
            let bound = inner.map.slot_bound();
            let mut parts: Vec<Vec<([u64; K], V)>> = (0..bound).map(|_| Vec::new()).collect();
            for (key, value) in pending.drain(..) {
                parts[inner.map.route(&key)].push((key, value));
            }
            type LoadOut<V, const K: usize> = Result<usize, Vec<([u64; K], V)>>;
            let tasks: Vec<(String, Task<LoadOut<V, K>>)> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, p)| !p.is_empty())
                .map(|(s, part)| {
                    self.metrics.add_shard_ops(s, part.len() as u64);
                    let cell =
                        Arc::clone(inner.cells[s].as_ref().expect("live slot without a cell"));
                    let task = Box::new(move || {
                        let mut guard = cell.tree.write().unwrap();
                        if cell.retired.load(Ordering::Acquire) {
                            return Err(part); // re-route under the new epoch
                        }
                        if guard.is_empty() {
                            // Bottom-up bulk build: every key in the
                            // partition is new (duplicates within the
                            // batch collapse last-write-wins, same as
                            // the insert loop below).
                            *guard = PhTree::bulk_load(part);
                            Ok(guard.len())
                        } else {
                            let mut new = 0usize;
                            for (k, v) in part {
                                if guard.insert(k, v).is_none() {
                                    new += 1;
                                }
                            }
                            Ok(new)
                        }
                    }) as Task<LoadOut<V, K>>;
                    (format!("bulk_load:shard-{s}"), task)
                })
                .collect();
            for r in self.pool.scatter_labeled(tasks) {
                match r {
                    Ok(n) => new_total += n,
                    Err(part) => pending.extend(part),
                }
            }
        }
        self.metrics.bulk_load.finish(t);
        new_total
    }

    /// Splits the live shard `slot` into `2^bits` children, deepening
    /// its Z-prefix — the in-memory half of online rebalancing.
    ///
    /// The parent's entries are partitioned by the successor routing
    /// map and rebuilt into the children via [`PhTree::bulk_load`]
    /// under the parent's write lock, so the split is atomic: every
    /// other shard stays fully available throughout, and operations
    /// already waiting on the parent re-route to the children the
    /// moment the lock releases (the retired-cell retry). Splits are
    /// serialised with each other; the routing epoch increments by
    /// one.
    pub fn split_shard(&self, slot: usize, bits: u32) -> Result<SplitReport, ShardError> {
        let _gate = self.split_gate.lock().unwrap();
        let inner = self.snapshot();
        let cell = inner
            .cells
            .get(slot)
            .and_then(|c| c.as_ref())
            .filter(|c| !c.retired.load(Ordering::Acquire))
            .ok_or(ShardError::UnknownSlot { slot })
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;
        // The gate guarantees no other split runs, so the map we
        // derive from is the one we install over.
        let (map2, children) = inner
            .map
            .split(slot, bits)
            .inspect_err(|_| self.reb_metrics.split_failures.inc())?;
        self.reb_metrics.migration_inflight.add(1);

        let mut guard = cell.tree.write().unwrap();
        let tree = std::mem::replace(&mut *guard, PhTree::new());
        let migrated = tree.len();
        let base = children[0];
        let mut parts: Vec<Vec<([u64; K], V)>> = (0..children.len()).map(|_| Vec::new()).collect();
        for (k, v) in tree.iter() {
            parts[map2.route(&k) - base].push((k, v.clone()));
        }
        let mut cells = inner.cells.clone();
        cells.resize(map2.slot_bound(), None);
        cells[slot] = None;
        for (i, part) in parts.into_iter().enumerate() {
            cells[base + i] = Some(Arc::new(MemCell {
                retired: AtomicBool::new(false),
                tree: RwLock::new(PhTree::bulk_load(part)),
            }));
        }
        let epoch = map2.epoch();
        *self.state.write().unwrap() = Arc::new(MemInner {
            map: Arc::new(map2),
            cells,
        });
        // Retire *after* the successor state is visible, still under
        // the parent's write lock: a waiter waking on the lock sees
        // retired=true and its retry finds the new epoch.
        cell.retired.store(true, Ordering::Release);
        drop(guard);

        self.reb_metrics.migration_inflight.add(-1);
        self.reb_metrics.splits.inc();
        self.reb_metrics.migrated_entries.add(migrated as u64);
        self.reb_metrics.routing_epoch.set(epoch as i64);
        Ok(SplitReport {
            src: slot,
            children,
            migrated,
            backlog_drained: 0,
            epoch,
        })
    }
}

impl<V, const K: usize> Default for ShardedTree<V, K> {
    fn default() -> Self {
        Self::new(1)
    }
}
